//! Walks through the worked examples of the paper (Fig. 1 and Examples 1-3):
//! the full adder model, the fanout-rewritten ripple-carry adder, and the
//! vanishing monomials of a parallel-prefix adder.
//!
//! Run with `cargo run --release --example paper_walkthrough`.

use gbmv::core::{
    reduction::GbReduction,
    rewrite::{fanout_rewriting, xor_rewriting, RewriteConfig},
    AlgebraicModel,
};
use gbmv::genmul::{build_adder, AdderKind};
use gbmv::netlist::Netlist;
use gbmv::poly::spec::{adder_spec, full_adder_spec};
use gbmv::poly::Var;

fn main() {
    example1_full_adder();
    example2_ripple_carry_fanout_rewriting();
    example3_parallel_prefix_vanishing_monomials();
}

/// Example 1: the full adder of Fig. 1 — model extraction and GB reduction of
/// the specification `-2c - s + a + b + cin` down to remainder 0.
fn example1_full_adder() {
    println!("=== Example 1: full adder (Fig. 1) ===");
    let mut nl = Netlist::new("full_adder");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let cin = nl.add_input("cin");
    let x1 = nl.xor2(a, b, "x1");
    let s = nl.xor2(x1, cin, "s");
    let x3 = nl.and2(a, b, "x3");
    let x4 = nl.and2(x1, cin, "x4");
    let c = nl.or2(x3, x4, "c");
    nl.add_output("s", s);
    nl.add_output("c", c);

    let model = AlgebraicModel::from_netlist(&nl).expect("acyclic");
    println!("gate polynomials (g := -leading + tail):");
    for v in model.substitution_order() {
        println!(
            "  -{} + {}",
            model.name(v),
            model.render(model.tail(v).expect("gate polynomial"))
        );
    }
    let spec = full_adder_spec(Var(a.0), Var(b.0), Var(cin.0), Var(s.0), Var(c.0));
    println!("specification: {}", model.render(&spec));
    let (r, outcome, stats) = GbReduction::default().reduce(&model, &spec);
    println!(
        "reduction: {:?} after {} substitutions, remainder = {}",
        outcome,
        stats.substitutions,
        model.render(&r)
    );
    assert!(r.is_zero());
    println!();
}

/// Example 2: the 3-bit ripple carry adder — after fanout rewriting the model
/// depends only on carries, inputs and outputs, and the carry terms cancel
/// during the reduction.
fn example2_ripple_carry_fanout_rewriting() {
    println!("=== Example 2: 3-bit ripple carry adder, fanout rewriting ===");
    let nl = build_adder(3, AdderKind::RippleCarry, false);
    let mut model = AlgebraicModel::from_netlist(&nl).expect("acyclic");
    let before = model.num_polynomials();
    let stats = fanout_rewriting(&mut model, &RewriteConfig::default());
    println!(
        "fanout rewriting: {} -> {} polynomials ({} substitutions)",
        before,
        model.num_polynomials(),
        stats.substitutions
    );
    for v in model.substitution_order() {
        println!(
            "  -{} + {}",
            model.name(v),
            model.render(model.tail(v).expect("kept polynomial"))
        );
    }
    let a: Vec<Var> = (0..3)
        .map(|i| Var(nl.find_net(&format!("a{i}")).expect("input").0))
        .collect();
    let b: Vec<Var> = (0..3)
        .map(|i| Var(nl.find_net(&format!("b{i}")).expect("input").0))
        .collect();
    let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
    let spec = adder_spec(&a, &b, &s, None);
    let (r, outcome, rstats) = GbReduction::default().reduce(&model, &spec);
    println!(
        "reduction: {:?}, peak intermediate terms = {}, remainder = {}",
        outcome,
        rstats.peak_terms,
        model.render(&r)
    );
    assert!(r.is_zero());
    println!();
}

/// Example 3 / Section IV: a parallel-prefix adder accumulates vanishing
/// monomials; XOR rewriting with the XOR-AND rule removes them before they
/// can blow up.
fn example3_parallel_prefix_vanishing_monomials() {
    println!("=== Example 3: Kogge-Stone adder, XOR rewriting + vanishing rule ===");
    for width in [4, 8, 16] {
        let nl = build_adder(width, AdderKind::KoggeStone, false);
        let mut model = AlgebraicModel::from_netlist(&nl).expect("acyclic");
        let stats = xor_rewriting(&mut model, &RewriteConfig::default());
        let a: Vec<Var> = (0..width)
            .map(|i| Var(nl.find_net(&format!("a{i}")).expect("input").0))
            .collect();
        let b: Vec<Var> = (0..width)
            .map(|i| Var(nl.find_net(&format!("b{i}")).expect("input").0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, rstats) = GbReduction::default().reduce(&model, &spec);
        println!(
            "  width {width:>2}: cancelled vanishing monomials = {:>5}, peak terms = {:>6}, {:?}, remainder zero = {}",
            stats.cancelled_vanishing,
            rstats.peak_terms,
            outcome,
            r.is_zero()
        );
        assert!(r.is_zero());
    }
    println!();
}
