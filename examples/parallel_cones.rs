//! The parallel output-cone engine end to end: inspect a circuit's cone
//! decomposition, then race the single-threaded MT-LR reduction against
//! MT-LR-PAR under the same budget.
//!
//! ```sh
//! cargo run --release --example parallel_cones              # SP-CT-BK, width 6
//! cargo run --release --example parallel_cones SP-DT-HC 8   # the heavy one
//! GBMV_THREADS=4 cargo run --release --example parallel_cones
//! ```

use std::time::{Duration, Instant};

use gbmv::genmul::MultiplierSpec;
use gbmv::netlist::cone::{decompose_output_cones, DEFAULT_MERGE_OVERLAP};
use gbmv::{Budget, Method, Session, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = std::env::args().nth(1).unwrap_or_else(|| "SP-CT-BK".into());
    let width: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(6);
    let netlist = MultiplierSpec::parse(&arch, width)
        .ok_or("unknown architecture")?
        .build();

    // Step 0: what does the cone structure look like? Carry-propagate
    // arithmetic overlaps almost completely, so the shared-prefix analysis
    // merges the per-output cones into one group — the parallel engine then
    // shards the giant cone's substitution steps over term ranges instead of
    // reducing the outputs independently (which would forfeit the word-level
    // cancellation between adjacent columns and blow up).
    let merged = decompose_output_cones(&netlist, DEFAULT_MERGE_OVERLAP)
        .map_err(|stuck| format!("combinational cycle through {} nets", stuck.len()))?;
    let split = decompose_output_cones(&netlist, 1.1).expect("already checked");
    println!(
        "{arch}-{width}: {} outputs, {} per-output cones sharing {} nets -> {} merged group(s)",
        netlist.outputs().len(),
        split.cones.len(),
        split.shared.len(),
        merged.cones.len(),
    );

    let budget = Budget {
        max_terms: 10_000_000,
        deadline: Some(Duration::from_secs(300)),
        threads: 0, // auto: GBMV_THREADS, else available parallelism
    };
    println!(
        "verifying with {} worker thread(s) for MT-LR-PAR",
        budget.effective_threads()
    );
    for method in [Method::MtLr, Method::MtLrPar] {
        let start = Instant::now();
        let report = Session::extract(&netlist)?
            .spec(Spec::multiplier(width))
            .strategy(method)
            .budget(budget)
            .run()?;
        println!(
            "  {method:<10} {:>10.3?}  outcome={:?}  peak_terms={}",
            start.elapsed(),
            report.outcome,
            report.stats.peak_terms()
        );
    }
    Ok(())
}
