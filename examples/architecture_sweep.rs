//! Sweeps every multiplier architecture family (2 partial-product generators
//! x 5 accumulators x 5 final adders = 50 architectures) at a small width and
//! verifies each with MT-LR, printing a compact matrix — the full architecture
//! space the paper's benchmark set is drawn from.
//!
//! Run with `cargo run --release --example architecture_sweep`.

use std::time::Instant;

use gbmv::core::{verify_multiplier, Method, VerifyConfig};
use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};

fn main() {
    let width = 6;
    let config = VerifyConfig {
        extract_counterexample: false,
        ..VerifyConfig::default()
    };
    println!("MT-LR verification of all architectures at width {width} (time in ms):");
    println!(
        "{:<6} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "PP", "Acc", "RC", "CL", "BK", "KS", "HC"
    );
    let mut verified = 0;
    let mut total = 0;
    for pp in PartialProduct::all() {
        for acc in Accumulator::all() {
            let mut row = format!("{:<6} {:<6}", pp.abbrev(), acc.abbrev());
            for fsa in FinalAdder::all() {
                let spec = MultiplierSpec::new(width, pp, acc, fsa);
                let netlist = spec.build();
                let start = Instant::now();
                let report = verify_multiplier(&netlist, width, Method::MtLr, &config);
                let ms = start.elapsed().as_millis();
                total += 1;
                if report.outcome.is_verified() {
                    verified += 1;
                    row.push_str(&format!(" {ms:>10}"));
                } else {
                    row.push_str(&format!(" {:>10}", "FAIL"));
                }
            }
            println!("{row}");
        }
    }
    println!("verified {verified}/{total} architectures");
    assert_eq!(verified, total);
}
