//! Sweeps every multiplier architecture family (2 partial-product generators
//! x 5 accumulators x 5 final adders = 50 architectures) at a small width and
//! verifies each with MT-LR-IDX (indexed rewriting + indexed reduction)
//! through the `Session` API, printing a compact matrix — the full
//! architecture space the paper's benchmark set is drawn from.
//!
//! Each instance runs under a tight term-only [`Budget`] — no wall clock, so
//! the sweep's verdict column is deterministic on any machine and at one
//! thread. Architectures whose reduction still blows up at this width (e.g.
//! the array accumulator feeding a Kogge-Stone final adder) report `TO`,
//! mirroring the paper's tables. A mismatch, by contrast, would be a real
//! bug — the sweep asserts none occur.
//!
//! Run with `cargo run --release --example architecture_sweep`.

use std::time::Instant;

use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
use gbmv::{Budget, Method, Session, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 6;
    let budget = Budget {
        max_terms: 1_000_000,
        deadline: None,
        threads: 1,
    };
    println!("MT-LR-IDX verification of all architectures at width {width} (time in ms):");
    println!(
        "{:<6} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "PP", "Acc", "RC", "CL", "BK", "KS", "HC"
    );
    let mut verified = 0;
    let mut mismatches = 0;
    let mut total = 0;
    for pp in PartialProduct::all() {
        for acc in Accumulator::all() {
            let mut row = format!("{:<6} {:<6}", pp.abbrev(), acc.abbrev());
            for fsa in FinalAdder::all() {
                let spec = MultiplierSpec::new(width, pp, acc, fsa);
                let netlist = spec.build();
                let start = Instant::now();
                let report = Session::extract(&netlist)?
                    .spec(Spec::multiplier(width))
                    .strategy(Method::MtLrIdx)
                    .budget(budget)
                    .counterexamples(false)
                    .run()?;
                let ms = start.elapsed().as_millis();
                total += 1;
                if report.outcome.is_verified() {
                    verified += 1;
                    row.push_str(&format!(" {ms:>10}"));
                } else if report.outcome.is_mismatch() {
                    mismatches += 1;
                    row.push_str(&format!(" {:>10}", "FAIL"));
                } else {
                    row.push_str(&format!(" {:>10}", "TO"));
                }
            }
            println!("{row}");
        }
    }
    println!("verified {verified}/{total} architectures within the budget");
    assert_eq!(mismatches, 0, "a mismatch on a correct circuit is a bug");
    Ok(())
}
