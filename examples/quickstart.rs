//! Quickstart: generate a multiplier, verify it with MT-LR, inspect the
//! statistics, and cross-check with the SAT-based equivalence checker.
//!
//! Run with `cargo run --release --example quickstart`.

use gbmv::core::{verify_multiplier, Method, VerifyConfig};
use gbmv::genmul::MultiplierSpec;
use gbmv::sat::check_against_product;

fn main() {
    // An 8x8 Booth-encoded Wallace-tree multiplier with a carry-lookahead
    // final adder: one of the "complex parallel" architectures that only
    // MT-LR handles in the paper.
    let width = 8;
    let spec = MultiplierSpec::parse("BP-WT-CL", width).expect("known architecture");
    let netlist = spec.build();
    println!("circuit: {}", netlist.summary());

    // Algebraic verification with logic reduction rewriting (MT-LR).
    let report = verify_multiplier(&netlist, width, Method::MtLr, &VerifyConfig::default());
    println!("MT-LR outcome: {:?}", report.outcome);
    println!(
        "  cancelled vanishing monomials (#CVM): {}",
        report.stats.rewrite.cancelled_vanishing
    );
    println!(
        "  rewritten model: #P={} #M={} #MP={} #VM={}",
        report.stats.model_polynomials,
        report.stats.model_monomials,
        report.stats.max_polynomial_terms,
        report.stats.max_monomial_vars
    );
    println!(
        "  rewriting: {:?}, GB reduction: {:?}, total: {:?}",
        report.stats.rewrite.elapsed, report.stats.reduction.elapsed, report.stats.total_time
    );
    assert!(report.outcome.is_verified());

    // The SAT miter baseline agrees (and is the slower path as width grows).
    let cec = check_against_product(&netlist, width, Some(1_000_000));
    println!("SAT miter baseline: {cec:?}");
}
