//! Quickstart: generate a multiplier, verify it through the `Session` API
//! with a progress observer, inspect the statistics, then race MT-LR against
//! the SAT miter baseline with a `Portfolio`.
//!
//! Run with `cargo run --release --example quickstart`.

use gbmv::core::Progress;
use gbmv::genmul::MultiplierSpec;
use gbmv::{Budget, Method, Portfolio, Session, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 Booth-encoded Wallace-tree multiplier with a carry-lookahead
    // final adder: one of the "complex parallel" architectures that only
    // MT-LR handles in the paper.
    let width = 8;
    let spec = MultiplierSpec::parse("BP-WT-CL", width).expect("known architecture");
    let netlist = spec.build();
    println!("circuit: {}", netlist.summary());

    // Algebraic verification with logic reduction rewriting (MT-LR). The
    // observer replaces the old GBMV_TIMING env var: phase timings arrive as
    // structured events.
    let report = Session::extract(&netlist)?
        .spec(Spec::multiplier(width))
        .strategy(Method::MtLr)
        .observer(|progress| {
            if let Progress::PhaseFinished { phase, elapsed } = progress {
                println!("  [observer] {phase} finished in {elapsed:?}");
            }
        })
        .run()?;
    println!("MT-LR outcome: {:?}", report.outcome);
    println!(
        "  cancelled vanishing monomials (#CVM): {}",
        report.stats.cancelled_vanishing()
    );
    println!(
        "  rewritten model: #P={} #M={} #MP={} #VM={}",
        report.stats.model_polynomials,
        report.stats.model_monomials,
        report.stats.max_polynomial_terms,
        report.stats.max_monomial_vars
    );
    println!(
        "  rewriting: {:?}, GB reduction: {:?}, total: {:?}",
        report.stats.rewrite.elapsed, report.stats.reduction.elapsed, report.stats.total_time
    );
    assert!(report.outcome.is_verified());

    // Portfolio race: MT-LR and the SAT miter baseline share one extracted
    // model and one deadline; the first definitive verdict cancels the other.
    let race = Portfolio::extract(&netlist)?
        .spec(Spec::multiplier(width))
        .budget(Budget::default())
        .method(Method::MtLr)
        .sat_baseline(Some(1_000_000))
        .race()?;
    let winner = race.winner().expect("one strategy finishes");
    println!(
        "portfolio race winner: {} in {:?} ({:?})",
        winner.strategy, winner.elapsed, winner.outcome
    );
    for run in &race.runs {
        println!(
            "  {}: {:?} after {:?}",
            run.strategy, run.outcome, run.elapsed
        );
    }
    assert!(race.verdict().expect("definitive verdict").is_verified());
    Ok(())
}
