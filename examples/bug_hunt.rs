//! Negative verification: inject random gate-level faults into a correct
//! multiplier and show that (a) MT-LR reports a mismatch with a concrete
//! counterexample, and (b) the SAT miter baseline finds a distinguishing
//! input — then cross-check both against simulation.
//!
//! Run with `cargo run --release --example bug_hunt`.

use gbmv::core::{verify_multiplier, Method, Outcome, VerifyConfig};
use gbmv::genmul::MultiplierSpec;
use gbmv::netlist::fault::distinguishable_mutant;
use gbmv::sat::{check_against_product, EquivalenceResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let width = 4;
    let golden = MultiplierSpec::parse("SP-WT-BK", width)
        .expect("architecture")
        .build();
    let mut rng = StdRng::seed_from_u64(2024);
    let mut caught_algebraic = 0;
    let mut caught_sat = 0;
    let trials = 5;
    for trial in 0..trials {
        let (fault, mutant) =
            distinguishable_mutant(&golden, 200, &mut rng).expect("a detectable fault exists");
        println!("trial {trial}: injected {fault:?}");

        // Algebraic verification must reject the mutant.
        let report = verify_multiplier(&mutant, width, Method::MtLr, &VerifyConfig::default());
        match &report.outcome {
            Outcome::Mismatch {
                remainder_terms,
                counterexample,
            } => {
                caught_algebraic += 1;
                println!("  MT-LR: mismatch, remainder has {remainder_terms} terms");
                if let Some(cex) = counterexample {
                    let (mut a, mut b) = (0u128, 0u128);
                    for i in 0..width {
                        if cex[&format!("a{i}")] {
                            a |= 1 << i;
                        }
                        if cex[&format!("b{i}")] {
                            b |= 1 << i;
                        }
                    }
                    let product = mutant.evaluate_words(&[a, b], &[width, width]);
                    println!(
                        "  counterexample: a={a} b={b} -> circuit says {product}, expected {}",
                        a * b
                    );
                    assert_ne!(product, a * b);
                }
            }
            other => println!("  MT-LR: unexpected outcome {other:?}"),
        }

        // SAT miter must find a distinguishing input as well.
        match check_against_product(&mutant, width, Some(1_000_000)) {
            EquivalenceResult::NotEquivalent(pattern) => {
                caught_sat += 1;
                println!("  SAT miter: counterexample pattern {pattern:?}");
            }
            other => println!("  SAT miter: unexpected outcome {other:?}"),
        }
    }
    println!("caught by MT-LR: {caught_algebraic}/{trials}, by SAT miter: {caught_sat}/{trials}");
    assert_eq!(caught_algebraic, trials);
    assert_eq!(caught_sat, trials);
}
