//! Negative verification: inject random gate-level faults into a correct
//! multiplier and show that (a) MT-LR reports a mismatch with a concrete,
//! typed counterexample, and (b) the SAT miter baseline finds a
//! distinguishing input — then cross-check both against simulation.
//!
//! Run with `cargo run --release --example bug_hunt`.

use gbmv::netlist::fault::distinguishable_mutant;
use gbmv::sat::{check_against_product, EquivalenceResult};
use gbmv::{Method, Outcome, Session, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 4;
    let golden = gbmv::genmul::MultiplierSpec::parse("SP-WT-BK", width)
        .expect("architecture")
        .build();
    let mut rng = StdRng::seed_from_u64(2024);
    let mut caught_algebraic = 0;
    let mut caught_sat = 0;
    let trials = 5;
    for trial in 0..trials {
        let (fault, mutant) =
            distinguishable_mutant(&golden, 200, &mut rng).expect("a detectable fault exists");
        println!("trial {trial}: injected {fault:?}");

        // Algebraic verification must reject the mutant; the counterexample
        // is a typed struct carrying the operand words and both output words.
        let report = Session::extract(&mutant)?
            .spec(Spec::multiplier(width))
            .strategy(Method::MtLr)
            .run()?;
        match &report.outcome {
            Outcome::Mismatch {
                remainder_terms,
                counterexample,
            } => {
                caught_algebraic += 1;
                println!("  MT-LR: mismatch, remainder has {remainder_terms} terms");
                if let Some(cex) = counterexample {
                    println!("  counterexample: {cex}");
                    let (a, b) = (cex.operand("a").unwrap(), cex.operand("b").unwrap());
                    // Cross-check against netlist simulation.
                    let product = mutant.evaluate_words(&[a, b], &[width, width]);
                    assert_eq!(Some(product), cex.circuit_word);
                    assert_ne!(product, a * b);
                }
            }
            other => println!("  MT-LR: unexpected outcome {other:?}"),
        }

        // SAT miter must find a distinguishing input as well.
        match check_against_product(&mutant, width, Some(1_000_000)) {
            EquivalenceResult::NotEquivalent(pattern) => {
                caught_sat += 1;
                println!("  SAT miter: counterexample pattern {pattern:?}");
            }
            other => println!("  SAT miter: unexpected outcome {other:?}"),
        }
    }
    println!("caught by MT-LR: {caught_algebraic}/{trials}, by SAT miter: {caught_sat}/{trials}");
    assert_eq!(caught_algebraic, trials);
    assert_eq!(caught_sat, trials);
    Ok(())
}
