//! Differential harness for the indexed rewriting engine: the Step-2
//! rewrite on the incrementally indexed term store
//! (`indexed_logic_reduction_rewriting`, the rewriter behind `MT-LR-IDX`
//! and `MT-LR-PAR`) must produce **term-for-term identical post-rewrite
//! models** to the scan-based `logic_reduction_rewriting` oracle, and the
//! full pipelines must agree on verdicts and counterexamples — across every
//! genmul architecture at width 4, the paper's ten architectures at widths
//! 5–6, and fault-injected mutants.
//!
//! The byte-identity comparison runs the indexed engine in its **tracker
//! mode** (`VanishingRules { closure: false, .. }`): the same static
//! per-monomial pattern test as the oracle's tracker, judged at insertion
//! instead of by post-step sweeps. The comparison canonicalizes both sides'
//! coefficients modulo `2^(2n)` before the sorted term dump compare: the
//! indexed engine *stores* the canonical representative in `[0, 2^(2n))`
//! (coefficients cancel at insertion time), while the oracle keeps exact
//! integers — the two only ever differ by multiples of `2^(2n)`, which the
//! zero test quotients out. Everything else — which polynomials survive
//! `UpdateModel`, which monomials each tail contains, every canonical
//! coefficient — must be bit-identical.
//!
//! The presets themselves default to the *closure* mode (the
//! unit-propagation closure applied during each substitution), which
//! cancels strictly more monomials and therefore cannot be byte-identical
//! to the scan oracle — but every extra cancellation is a member of the
//! circuit ideal, so completed verdicts and counterexamples are exactly
//! preserved. The verdict tests here run the presets in their default
//! closure mode and pin precisely that.

use std::time::Duration;

use gbmv::core::rewrite::{
    indexed_logic_reduction_rewriting, logic_reduction_rewriting, RewriteConfig,
};
use gbmv::core::{AlgebraicModel, Phase, Progress, VanishingRules};
use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
use gbmv::netlist::fault::distinguishable_mutant;
use gbmv::netlist::Netlist;
use gbmv::poly::{Int, Monomial, Polynomial};
use gbmv::{Budget, DeadlineToken, Method, Outcome, Report, Session, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_architectures() -> Vec<String> {
    let mut archs = Vec::new();
    for pp in PartialProduct::all() {
        for acc in Accumulator::all() {
            for fsa in FinalAdder::all() {
                archs.push(format!("{}-{}-{}", pp.abbrev(), acc.abbrev(), fsa.abbrev()));
            }
        }
    }
    archs
}

fn sorted_terms(p: &Polynomial) -> Vec<(Monomial, Int)> {
    let mut terms: Vec<(Monomial, Int)> = p.iter().map(|(m, c)| (m.clone(), c.clone())).collect();
    terms.sort_by(|a, b| a.0.cmp(&b.0));
    terms
}

/// Rewrites one copy of the model with the scan-based oracle and one with
/// the indexed engine, then asserts bit-identical post-rewrite models: the
/// same surviving polynomial set and, per polynomial, the same sorted term
/// dump after canonicalizing both sides modulo `2^(2n)`.
fn assert_rewrite_equivalent(netlist: &Netlist, width: usize) {
    let base = AlgebraicModel::from_netlist(netlist).expect("acyclic");
    let k = 2 * width as u32;
    // Tracker mode: the byte-identical differential contract. (The oracle
    // ignores the `closure` flag; only the indexed engine switches on it.)
    let config = RewriteConfig {
        rules: VanishingRules {
            closure: false,
            ..VanishingRules::default()
        },
        ..RewriteConfig::default()
    };
    let mut oracle = base.clone();
    let o_stats = logic_reduction_rewriting(&mut oracle, &config);
    let mut indexed = base.clone();
    let i_stats = indexed_logic_reduction_rewriting(&mut indexed, &config, Some(k));
    assert!(
        !o_stats.limit_exceeded && !i_stats.limit_exceeded,
        "{} width {width}: both rewrites must complete",
        netlist.name()
    );
    let o_polys = oracle.polynomial_order();
    let i_polys = indexed.polynomial_order();
    assert_eq!(
        o_polys,
        i_polys,
        "{} width {width}: UpdateModel must keep the same polynomial set",
        netlist.name()
    );
    for v in o_polys {
        let want = sorted_terms(&oracle.tail(v).expect("oracle tail").mod_coeffs_pow2(k));
        let got = sorted_terms(&indexed.tail(v).expect("indexed tail").mod_coeffs_pow2(k));
        assert_eq!(
            want,
            got,
            "{} width {width}: post-rewrite tail of {} diverges from the scan oracle",
            netlist.name(),
            oracle.name(v)
        );
    }
}

fn run(netlist: &Netlist, width: usize, method: Method, budget: Budget) -> Report {
    Session::extract(netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .budget(budget)
        .run()
        .expect("interface")
}

/// Same verdict contract as the PR-4 parallel-equivalence harness: exact
/// verdicts, canonical remainder term counts, and bit-identical grounded
/// counterexamples; a resource-limited reference may be beaten (the indexed
/// engines prune vanishing terms before they materialize) but never
/// contradicted.
fn assert_outcome_matches(netlist: &Netlist, reference: &Report, candidate: &Report, label: &str) {
    match (&reference.outcome, &candidate.outcome) {
        (Outcome::Verified, Outcome::Verified) => {}
        (
            Outcome::Mismatch {
                remainder_terms: a,
                counterexample: ca,
            },
            Outcome::Mismatch {
                remainder_terms: b,
                counterexample: cb,
            },
        ) => {
            assert_eq!(
                a,
                b,
                "{}: canonical remainders must agree ({label})",
                netlist.name()
            );
            assert_eq!(
                ca,
                cb,
                "{}: counterexamples must be bit-identical ({label})",
                netlist.name()
            );
        }
        (Outcome::ResourceLimit { .. }, got) => {
            assert!(
                matches!(got, Outcome::ResourceLimit { .. } | Outcome::Verified),
                "{}: {label} contradicts the resource-limited run: {got:?}",
                netlist.name()
            );
        }
        (expected, got) => panic!(
            "{}: outcomes diverge ({label}): MT-LR {expected:?}, got {got:?}",
            netlist.name()
        ),
    }
}

/// Runs the indexed-rewrite presets against the MT-LR reference: `MT-LR-IDX`
/// and `MT-LR-PAR` both rewrite through the indexed engine, so both pin the
/// rewriter's verdict behaviour.
fn assert_verdicts_match(netlist: &Netlist, width: usize, budget: Budget) -> Report {
    let reference = run(netlist, width, Method::MtLr, budget);
    let idx = run(netlist, width, Method::MtLrIdx, budget);
    assert_outcome_matches(netlist, &reference, &idx, "MT-LR-IDX");
    let par = run(netlist, width, Method::MtLrPar, budget.with_threads(1));
    assert_outcome_matches(netlist, &reference, &par, "MT-LR-PAR");
    reference
}

/// Every genmul architecture at width 4: bit-identical post-rewrite models
/// and identical verdicts.
#[test]
fn every_architecture_width_4_rewrites_identically() {
    let budget = Budget::default();
    for arch in all_architectures() {
        let netlist = MultiplierSpec::parse(&arch, 4)
            .expect("architecture")
            .build();
        assert_rewrite_equivalent(&netlist, 4);
        let reference = assert_verdicts_match(&netlist, 4, budget);
        assert!(
            reference.outcome.is_verified(),
            "{arch}: MT-LR must verify at width 4, got {:?}",
            reference.outcome
        );
    }
}

/// The paper's ten Table I/II architectures at widths 5 and 6, under a
/// deterministic term budget (no wall clock, so any blow-up surfaces as the
/// same `ResourceLimit` on every machine).
#[test]
fn paper_architectures_widths_5_6_rewrite_identically() {
    let budget = Budget {
        max_terms: 2_000_000,
        deadline: None,
        threads: 0,
    };
    let archs = [
        "SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC", "BP-AR-RC", "BP-WT-CL",
        "BP-RT-KS", "BP-CT-BK", "BP-DT-HC",
    ];
    for width in [5usize, 6] {
        for arch in archs {
            let netlist = MultiplierSpec::parse(arch, width)
                .expect("architecture")
                .build();
            assert_rewrite_equivalent(&netlist, width);
            assert_verdicts_match(&netlist, width, budget);
        }
    }
}

/// Fault-injected mutants: the rewrite stays bit-identical on buggy
/// circuits too, and the mismatch verdict grounds the same counterexample
/// (operand words, circuit word, expected word) on both engines.
#[test]
fn fault_injected_mutants_rewrite_identically() {
    let width = 4;
    let budget = Budget::default();
    for (arch, seed) in [
        ("SP-WT-CL", 3u64),
        ("BP-CT-BK", 17),
        ("SP-DT-HC", 29),
        ("SP-RT-KS", 41),
    ] {
        let golden = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let (_fault, mutant) = distinguishable_mutant(&golden, 200, &mut rng).expect("mutant");
        assert_rewrite_equivalent(&mutant, width);
        let reference = assert_verdicts_match(&mutant, width, budget);
        let Outcome::Mismatch { counterexample, .. } = &reference.outcome else {
            panic!(
                "{arch}: mutant must be rejected, got {:?}",
                reference.outcome
            );
        };
        let cex = counterexample.as_ref().expect("counterexample");
        assert!(cex.operand("a").is_some() && cex.operand("b").is_some());
    }
}

/// A `DeadlineToken::cancel()` fired from an observer as Step 2 starts
/// surfaces as `Outcome::Cancelled` — not `ResourceLimit { Rewrite }` — on
/// the indexed rewriter. The existing mid-reduction test only covered a
/// cancel landing in Step 3.
#[test]
fn mid_rewrite_cancel_returns_cancelled_not_resource_limit() {
    let netlist = MultiplierSpec::parse("SP-RT-KS", 8)
        .expect("architecture")
        .build();
    let token = DeadlineToken::new();
    let observer_token = token.clone();
    let report = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(8))
        .strategy(Method::MtLrIdx)
        .budget(Budget::default())
        .cancel_token(token)
        .observer(move |p| {
            if matches!(
                p,
                Progress::PhaseStarted {
                    phase: Phase::Rewrite
                }
            ) {
                observer_token.cancel();
            }
        })
        .run()
        .expect("interface");
    assert_eq!(
        report.outcome,
        Outcome::Cancelled,
        "a token cancel during rewriting must surface as Cancelled"
    );
    assert!(report.stats.rewrite.limit_exceeded);
    assert_eq!(
        report.stats.rewrite.substitutions, 0,
        "the engine polls the token before the first substitution"
    );
    assert!(
        report.stats.total_time < Duration::from_secs(20),
        "cancellation took {:?}",
        report.stats.total_time
    );
}

/// The same mid-rewrite cancel on the parallel preset: the run returns (no
/// dangling workers — the reduction pool is never spawned when Step 2 is
/// cancelled) with `Outcome::Cancelled`.
#[test]
fn mid_rewrite_cancel_on_parallel_preset_joins_cleanly() {
    let netlist = MultiplierSpec::parse("SP-DT-HC", 8)
        .expect("architecture")
        .build();
    let token = DeadlineToken::new();
    let observer_token = token.clone();
    let report = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(8))
        .strategy(Method::MtLrPar)
        .budget(Budget::default().with_threads(4))
        .cancel_token(token)
        .observer(move |p| {
            if matches!(
                p,
                Progress::PhaseStarted {
                    phase: Phase::Rewrite
                }
            ) {
                observer_token.cancel();
            }
        })
        .run()
        .expect("interface");
    assert_eq!(report.outcome, Outcome::Cancelled);
    assert_eq!(report.stats.reduction.substitutions, 0);
    assert!(
        report.stats.total_time < Duration::from_secs(20),
        "cancellation took {:?}",
        report.stats.total_time
    );
}
