//! Integration tests of the redesigned verification API: custom strategies
//! plugged in from outside `gbmv_core`, portfolio parity with the
//! pre-redesign entry points, and fallible extraction.

use gbmv::core::{PhaseContext, ReductionOutcome, ReductionStats, ReductionStrategy, SessionError};
use gbmv::genmul::MultiplierSpec;
use gbmv::netlist::{GateKind, Netlist};
use gbmv::poly::Polynomial;
use gbmv::sat::check_against_product;
use gbmv::{Budget, Method, Outcome, Portfolio, Session, Spec};

/// A user-defined reduction strategy implemented entirely against the public
/// API: plain reverse-topological substitution (the paper's Algorithm 1
/// without the greedy reordering), with budget and cancellation handling.
struct TopoReduction;

impl ReductionStrategy for TopoReduction {
    fn name(&self) -> &str {
        "topo"
    }

    fn reduce(
        &self,
        model: &gbmv::core::AlgebraicModel,
        spec: &Polynomial,
        modulus_bits: Option<u32>,
        ctx: &PhaseContext,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let mut stats = ReductionStats::default();
        let mut r = spec.clone();
        let mut scratch = Polynomial::zero();
        stats.peak_terms = r.num_terms();
        for v in model.substitution_order() {
            if ctx.token.expired() {
                return (r, ReductionOutcome::Cancelled, stats);
            }
            if !r.contains_var(v) {
                continue;
            }
            let tail = match model.tail(v) {
                Some(tail) => tail,
                None => continue,
            };
            r.substitute_into(v, tail, &mut scratch);
            std::mem::swap(&mut r, &mut scratch);
            stats.substitutions += 1;
            if let Some(k) = modulus_bits {
                r.retain_non_multiples_of_pow2(k);
            }
            stats.peak_terms = stats.peak_terms.max(r.num_terms());
            if r.num_terms() > ctx.budget.max_terms {
                let terms = r.num_terms();
                return (r, ReductionOutcome::LimitExceeded { terms }, stats);
            }
        }
        stats.final_terms = r.num_terms();
        (r, ReductionOutcome::Completed, stats)
    }
}

/// A custom `ReductionStrategy` implemented outside `gbmv_core` runs
/// end-to-end through `Session::run` and reaches the same verdict as the
/// built-in greedy engine.
#[test]
fn custom_reduction_strategy_runs_through_session() {
    let netlist = MultiplierSpec::parse("SP-WT-CL", 4)
        .expect("architecture")
        .build();
    let mut session = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(4))
        .strategy(Method::MtLr)
        .reduction_strategy(TopoReduction);
    let report = session.run().expect("interface");
    assert!(
        report.outcome.is_verified(),
        "custom reduction must verify: {:?}",
        report.outcome
    );
    assert_eq!(report.strategy, "logic-reduction+topo");
    assert!(report.stats.reduction.substitutions > 0);
}

/// The custom strategy honours the session budget like the built-in one.
#[test]
fn custom_reduction_strategy_honours_budget() {
    let netlist = MultiplierSpec::parse("SP-WT-KS", 6)
        .expect("architecture")
        .build();
    let mut session = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(6))
        .strategy(Method::MtNaive)
        .reduction_strategy(TopoReduction)
        .budget(Budget::default().with_max_terms(50));
    let report = session.run().expect("interface");
    assert!(report.outcome.is_resource_limit(), "{:?}", report.outcome);
}

/// The portfolio reproduces Table I's MT-LR-vs-SAT comparison at width 4 in
/// one call per architecture, with verdicts identical to standalone `Session`
/// runs and the standalone SAT check. (This test previously compared against
/// the deprecated `verify_multiplier` shim, which has since been removed.)
#[test]
fn portfolio_reproduces_table1_mtlr_vs_sat_at_width_4() {
    let width = 4;
    for arch in ["SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC"] {
        let netlist = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        let report = Portfolio::extract(&netlist)
            .expect("acyclic")
            .spec(Spec::multiplier(width))
            .method(Method::MtLr)
            .method(Method::MtLrPar)
            .sat_baseline(None)
            .run_all()
            .expect("interface");

        // Standalone verdicts through the session API and the SAT miter.
        let standalone = Session::extract(&netlist)
            .expect("acyclic")
            .spec(Spec::multiplier(width))
            .strategy(Method::MtLr)
            .run()
            .expect("interface");
        let standalone_sat = check_against_product(&netlist, width, None);

        let mtlr = report.get("MT-LR").expect("MT-LR run");
        let mtlr_par = report.get("MT-LR-PAR").expect("MT-LR-PAR run");
        let cec = report.get("CEC").expect("CEC run");
        assert_eq!(
            mtlr.outcome.is_verified(),
            standalone.outcome.is_verified(),
            "{arch}: portfolio MT-LR verdict must match the standalone session"
        );
        assert_eq!(
            mtlr.outcome, mtlr_par.outcome,
            "{arch}: the parallel engine must agree with MT-LR"
        );
        assert_eq!(
            cec.outcome.is_verified(),
            standalone_sat.is_equivalent(),
            "{arch}: portfolio CEC verdict must match check_against_product"
        );
        assert!(mtlr.outcome.is_verified(), "{arch}: {:?}", mtlr.outcome);
        assert!(report.verdict().expect("winner").is_verified());
    }
}

/// A portfolio race returns a definitive winner and cooperatively cancels
/// (or lets finish) the losers.
#[test]
fn portfolio_race_produces_a_winner() {
    let netlist = MultiplierSpec::parse("SP-WT-CL", 4)
        .expect("architecture")
        .build();
    let report = Portfolio::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(4))
        .method(Method::MtLr)
        .method(Method::MtFo)
        .sat_baseline(Some(1_000_000))
        .race()
        .expect("interface");
    assert_eq!(report.runs.len(), 3);
    let winner = report.winner().expect("some strategy finishes");
    assert!(winner.outcome.is_verified(), "{:?}", winner.outcome);
    // Losers either finished with the same verdict or were cancelled/limited;
    // nobody may contradict the winner.
    for run in &report.runs {
        assert!(
            !matches!(run.outcome, Outcome::Mismatch { .. }),
            "{}: contradicts the verified verdict",
            run.strategy
        );
    }
}

/// Portfolio misconfiguration is reported as typed errors.
#[test]
fn portfolio_configuration_errors() {
    let netlist = MultiplierSpec::parse("SP-AR-RC", 4)
        .expect("architecture")
        .build();
    let err = Portfolio::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(4))
        .run_all()
        .unwrap_err();
    assert_eq!(err, SessionError::NoStrategies);

    let err = Portfolio::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::signed_multiplier(4))
        .sat_baseline(None)
        .run_all()
        .unwrap_err();
    assert!(matches!(err, SessionError::SatBaselineUnsupported { .. }));
}

/// Regression: a netlist with a combinational cycle is an `ExtractError`
/// from `Session::extract` (the seed API panicked here).
#[test]
fn cyclic_netlist_is_an_extract_error() {
    let mut nl = Netlist::new("cyclic");
    let a = nl.add_input("a");
    let x = nl.add_net("x");
    let y = nl.add_net("y");
    nl.add_gate_driving(GateKind::And, x, &[a, y]).unwrap();
    nl.add_gate_driving(GateKind::Or, y, &[a, x]).unwrap();
    nl.add_output("y", y);
    let err = Session::extract(&nl).unwrap_err();
    let gbmv::core::ExtractError::CombinationalCycle { nets } = err;
    assert!(nets.contains(&"x".to_string()));
    assert!(nets.contains(&"y".to_string()));
    // The portfolio driver surfaces the same error.
    assert!(Portfolio::extract(&nl).is_err());
}
