//! Differential property tests of the indexed reduction engines: for every
//! genmul architecture at widths 4–6 and for fault-injected variants, the
//! `Outcome` (verdict and counterexample operand words) of the incremental
//! indexed engine (`MT-LR-IDX`) and of the parallel output-cone engine
//! (`MT-LR-PAR`, for threads ∈ {1, 2, 8}) must be identical to the
//! scan-based reference MT-LR.
//!
//! The comparison is exact: `run_pipeline` canonicalizes remainders modulo
//! `2^(2n)`, and the fully reduced remainder is the unique multilinear normal
//! form of the specification over the primary inputs, so all engines ground
//! the *same* counterexample bit for bit — regardless of substitution order
//! or term-storage layout.

use std::time::Duration;

use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
use gbmv::netlist::fault::distinguishable_mutant;
use gbmv::netlist::Netlist;
use gbmv::{Budget, DeadlineToken, Method, Outcome, Report, Session, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn all_architectures() -> Vec<String> {
    let mut archs = Vec::new();
    for pp in PartialProduct::all() {
        for acc in Accumulator::all() {
            for fsa in FinalAdder::all() {
                archs.push(format!("{}-{}-{}", pp.abbrev(), acc.abbrev(), fsa.abbrev()));
            }
        }
    }
    archs
}

fn run(netlist: &Netlist, width: usize, method: Method, budget: Budget) -> Report {
    Session::extract(netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .budget(budget)
        .run()
        .expect("interface")
}

/// Asserts that a candidate engine's outcome reproduces the reference
/// exactly: same verdict, same canonical remainder term count, and a
/// bit-identical grounded counterexample.
fn assert_outcome_matches(netlist: &Netlist, reference: &Report, candidate: &Report, label: &str) {
    match (&reference.outcome, &candidate.outcome) {
        (Outcome::Verified, Outcome::Verified) => {}
        (
            Outcome::Mismatch {
                remainder_terms: a,
                counterexample: ca,
            },
            Outcome::Mismatch {
                remainder_terms: b,
                counterexample: cb,
            },
        ) => {
            assert_eq!(
                a,
                b,
                "{}: canonical remainders must agree ({label})",
                netlist.name()
            );
            assert_eq!(
                ca,
                cb,
                "{}: counterexamples must be bit-identical ({label})",
                netlist.name()
            );
        }
        // A deterministic term-limit stop: the indexed engines may prune
        // more aggressively (vanishing checks fire before terms are ever
        // materialized) or substitute in a cheaper order, so they are
        // allowed to finish where MT-LR hit the budget — but they must
        // never contradict a definitive verdict.
        (Outcome::ResourceLimit { .. }, got) => {
            assert!(
                matches!(got, Outcome::ResourceLimit { .. } | Outcome::Verified),
                "{}: {label} contradicts the resource-limited run: {got:?}",
                netlist.name()
            );
        }
        (expected, got) => panic!(
            "{}: outcomes diverge ({label}): MT-LR {expected:?}, got {got:?}",
            netlist.name()
        ),
    }
}

/// Asserts that the incremental indexed engine (once — it is single-threaded)
/// and the parallel engine (for every thread count in the sweep) reproduce
/// the reference outcome exactly.
fn assert_parallel_matches(netlist: &Netlist, width: usize, reference: &Report, budget: Budget) {
    let idx = run(netlist, width, Method::MtLrIdx, budget);
    assert_outcome_matches(netlist, reference, &idx, "MT-LR-IDX");
    for threads in THREAD_SWEEP {
        let par = run(
            netlist,
            width,
            Method::MtLrPar,
            budget.with_threads(threads),
        );
        assert_outcome_matches(
            netlist,
            reference,
            &par,
            &format!("MT-LR-PAR, {threads} threads"),
        );
    }
}

/// Every genmul architecture at width 4: identical verdicts across the
/// thread sweep.
#[test]
fn every_architecture_width_4_matches_mt_lr() {
    let budget = Budget::default();
    for arch in all_architectures() {
        let netlist = MultiplierSpec::parse(&arch, 4)
            .expect("architecture")
            .build();
        let reference = run(&netlist, 4, Method::MtLr, budget);
        assert!(
            reference.outcome.is_verified(),
            "{arch}: MT-LR must verify at width 4, got {:?}",
            reference.outcome
        );
        assert_parallel_matches(&netlist, 4, &reference, budget);
    }
}

/// The paper's ten Table I/II architectures at widths 5 and 6, under a
/// deterministic term budget (no wall clock, so a blow-up surfaces as the
/// same `ResourceLimit` on every machine).
#[test]
fn paper_architectures_widths_5_6_match_mt_lr() {
    let budget = Budget {
        max_terms: 2_000_000,
        deadline: None,
        threads: 0,
    };
    let archs = [
        "SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC", "BP-AR-RC", "BP-WT-CL",
        "BP-RT-KS", "BP-CT-BK", "BP-DT-HC",
    ];
    for width in [5usize, 6] {
        for arch in archs {
            let netlist = MultiplierSpec::parse(arch, width)
                .expect("architecture")
                .build();
            let reference = run(&netlist, width, Method::MtLr, budget);
            assert_parallel_matches(&netlist, width, &reference, budget);
        }
    }
}

/// Fault-injected variants: the mismatch verdict and the grounded
/// counterexample (operand words, circuit word, expected word) are identical
/// between MT-LR and the parallel engine at every thread count.
#[test]
fn fault_injected_variants_produce_identical_counterexamples() {
    let width = 4;
    let budget = Budget::default();
    for (arch, seed) in [
        ("SP-WT-CL", 3u64),
        ("BP-CT-BK", 17),
        ("SP-DT-HC", 29),
        ("SP-RT-KS", 41),
    ] {
        let golden = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let (_fault, mutant) = distinguishable_mutant(&golden, 200, &mut rng).expect("mutant");
        let reference = run(&mutant, width, Method::MtLr, budget);
        let Outcome::Mismatch { counterexample, .. } = &reference.outcome else {
            panic!(
                "{arch}: mutant must be rejected, got {:?}",
                reference.outcome
            );
        };
        let cex = counterexample.as_ref().expect("counterexample");
        assert!(cex.operand("a").is_some() && cex.operand("b").is_some());
        assert_parallel_matches(&mutant, width, &reference, budget);
    }
}

/// A mid-reduction cancel through the shared `DeadlineToken` yields
/// `Outcome::Cancelled` — not `ResourceLimit` — and the engine joins all its
/// workers (the scoped pool cannot return otherwise).
#[test]
fn mid_reduction_cancel_returns_cancelled_and_joins_workers() {
    // SP-DT-HC at width 8 reduces for tens of seconds, so a cancel shortly
    // after the start lands mid-reduction with certainty.
    let netlist = MultiplierSpec::parse("SP-DT-HC", 8)
        .expect("architecture")
        .build();
    let token = DeadlineToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            token.cancel();
        })
    };
    let report = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(8))
        .strategy(Method::MtLrPar)
        .budget(Budget::default().with_threads(4))
        .cancel_token(token)
        .run()
        .expect("interface");
    canceller.join().expect("canceller thread");
    assert_eq!(
        report.outcome,
        Outcome::Cancelled,
        "a token cancel must surface as Cancelled, not ResourceLimit"
    );
    // The run reacted to the cancel instead of completing the ~half-minute
    // reduction (generous bound: cancellation is polled every few thousand
    // products, orders of magnitude below this).
    assert!(
        report.stats.total_time < Duration::from_secs(20),
        "cancellation took {:?}",
        report.stats.total_time
    );
}

/// A cyclic netlist still surfaces `ExtractError` on the parallel path:
/// extraction fails before any cone decomposition runs, exactly as for the
/// single-threaded strategies (and `gbmv::netlist::cone::decompose_output_cones`
/// reports the stuck nets when called directly).
#[test]
fn cyclic_netlist_surfaces_extract_error_on_parallel_path() {
    use gbmv::netlist::GateKind;
    let mut nl = Netlist::new("cyc");
    let a = nl.add_input("a");
    let x = nl.add_net("x");
    let y = nl.add_net("y");
    nl.add_gate_driving(GateKind::And, x, &[a, y]).unwrap();
    nl.add_gate_driving(GateKind::Or, y, &[a, x]).unwrap();
    nl.add_output("y", y);
    let gbmv::core::ExtractError::CombinationalCycle { nets } = Session::extract(&nl).unwrap_err();
    assert!(nets.contains(&"x".to_string()) && nets.contains(&"y".to_string()));
    let stuck = gbmv::netlist::cone::decompose_output_cones(&nl, 0.5).unwrap_err();
    assert!(!stuck.is_empty());
}

/// Genuinely disjoint output cones are verified as independent parallel jobs
/// (two side-by-side units under one custom specification), with identical
/// results at every thread count.
#[test]
fn disjoint_cones_verify_in_parallel_jobs() {
    use gbmv::poly::{Int, Monomial, Polynomial, Var};
    // Two independent blocks: x = a ^ b (tail a + b - 2ab), y = c & d.
    let mut nl = Netlist::new("two_units");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let x = nl.xor2(a, b, "x");
    let y = nl.and2(c, d, "y");
    nl.add_output("x", x);
    nl.add_output("y", y);
    let (a, b, c, d, x, y) = (Var(a.0), Var(b.0), Var(c.0), Var(d.0), Var(x.0), Var(y.0));
    let spec = Polynomial::from_terms(vec![
        (Monomial::var(x), Int::from(-1)),
        (Monomial::var(a), Int::one()),
        (Monomial::var(b), Int::one()),
        (Monomial::from_vars(vec![a, b]), Int::from(-2)),
        (Monomial::var(y), Int::from(-1)),
        (Monomial::from_vars(vec![c, d]), Int::one()),
    ]);
    for threads in THREAD_SWEEP {
        let report = Session::extract(&nl)
            .expect("acyclic")
            .spec(Spec::polynomial("two-units", spec.clone()))
            .strategy(Method::MtLrPar)
            .budget(Budget::default().with_threads(threads))
            .run()
            .expect("interface");
        assert!(
            report.outcome.is_verified(),
            "{threads} threads: {:?}",
            report.outcome
        );
    }
}
