//! Cross-crate property-based tests: for randomly drawn architectures and
//! widths, the generated circuit simulates correctly, the algebraic verifier
//! (through the `Session` API) accepts it, and the netlist text format
//! round-trips.

use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
use gbmv::netlist::{parse_netlist, write_netlist};
use gbmv::{Method, Session, Spec};
use proptest::prelude::*;

fn arb_spec(max_width: usize) -> impl Strategy<Value = MultiplierSpec> {
    let pp = prop_oneof![Just(PartialProduct::Simple), Just(PartialProduct::Booth)];
    let acc = prop_oneof![
        Just(Accumulator::Array),
        Just(Accumulator::Wallace),
        Just(Accumulator::Dadda),
        Just(Accumulator::Compressor42),
        Just(Accumulator::RedundantBinary),
    ];
    let fsa = prop_oneof![
        Just(FinalAdder::RippleCarry),
        Just(FinalAdder::CarryLookAhead),
        Just(FinalAdder::BrentKung),
        Just(FinalAdder::KoggeStone),
        Just(FinalAdder::HanCarlson),
    ];
    (2..=max_width, pp, acc, fsa).prop_map(|(w, pp, acc, fsa)| MultiplierSpec::new(w, pp, acc, fsa))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated multiplier computes `a*b mod 2^(2n)` on random inputs.
    #[test]
    fn generated_multipliers_simulate_correctly(spec in arb_spec(6), a in 0u64..64, b in 0u64..64) {
        let netlist = spec.build();
        let n = spec.width;
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        let modulus = 1u128 << (2 * n);
        let got = netlist.evaluate_words(&[a as u128, b as u128], &[n, n]);
        prop_assert_eq!(got, (a as u128 * b as u128) % modulus, "{}", spec.name());
    }

    /// Any generated multiplier is accepted by MT-LR through the `Session`
    /// API, including the redundant-binary accumulator (which the seed engine
    /// blew up on; the intermediate mod-2^(2n) dropping and level-greedy
    /// substitution order handle it at this width).
    #[test]
    fn generated_multipliers_verify_with_mt_lr(spec in arb_spec(4)) {
        let netlist = spec.build();
        let report = Session::extract(&netlist)
            .expect("generated netlists are acyclic")
            .spec(Spec::multiplier(spec.width))
            .strategy(Method::MtLr)
            .counterexamples(false)
            .run()
            .expect("multiplier interface");
        prop_assert!(report.outcome.is_verified(), "{}: {:?}", spec.name(), report.outcome);
    }

    /// The netlist exchange format round-trips generated circuits.
    #[test]
    fn netlist_format_round_trips(spec in arb_spec(5), a in 0u64..32, b in 0u64..32) {
        let netlist = spec.build();
        let n = spec.width;
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        let parsed = parse_netlist(&write_netlist(&netlist)).expect("round trip");
        prop_assert_eq!(
            netlist.evaluate_words(&[a as u128, b as u128], &[n, n]),
            parsed.evaluate_words(&[a as u128, b as u128], &[n, n])
        );
    }
}
