//! Cross-crate integration tests: generator -> algebraic verifier -> SAT
//! baseline -> simulation all agree, driven through the `Session` API.

use gbmv::genmul::{build_adder, AdderKind, MultiplierSpec};
use gbmv::netlist::fault::distinguishable_mutant;
use gbmv::netlist::sim::random_equivalence_check;
use gbmv::netlist::Netlist;
use gbmv::sat::{check_against_product, check_equivalence};
use gbmv::{Budget, Method, Outcome, Report, Session, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn verify_mul(netlist: &Netlist, width: usize, method: Method) -> Report {
    Session::extract(netlist)
        .expect("generated netlists are acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .run()
        .expect("multiplier interface")
}

/// Every Table I / Table II architecture family verifies with MT-LR at a
/// small width and agrees with the SAT baseline.
#[test]
fn all_paper_architectures_verify_with_mt_lr() {
    let width = 4;
    // Includes the redundant-binary trees: with intermediate mod-2^(2n)
    // dropping and the level-greedy substitution order in the reduction
    // engine they verify at this width (the seed engine blew up on them).
    let architectures = [
        "SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC", "BP-AR-RC", "BP-WT-CL",
        "BP-RT-KS", "BP-CT-BK", "BP-DT-HC",
    ];
    for arch in architectures {
        let netlist = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        let report = verify_mul(&netlist, width, Method::MtLr);
        assert!(
            report.outcome.is_verified(),
            "{arch} must verify with MT-LR, got {:?}",
            report.outcome
        );
        assert!(
            check_against_product(&netlist, width, None).is_equivalent(),
            "{arch} must also pass the SAT miter baseline"
        );
    }
}

/// MT-FO (the baseline) hits the resource limit on a parallel-prefix Booth
/// multiplier where MT-LR succeeds under the same budget — the headline
/// comparison of the paper. (MT-FO succeeding on the simple array multiplier
/// is covered by `gbmv-core`'s unit tests at a smaller width.)
#[test]
fn mt_fo_blows_up_where_mt_lr_succeeds() {
    let width = 6;
    // With intermediate mod-2^(2n) coefficient dropping in the reduction
    // engine both methods got dramatically cheaper; at this width MT-FO peaks
    // above 10k terms while MT-LR stays near 100, so a 2k budget separates
    // them with ample margin on both sides. No deadline: the verdict depends
    // only on the term budget, so the contrast is deterministic on any
    // machine and at one thread.
    let tight = Budget {
        max_terms: 2_000,
        deadline: None,
        threads: 0,
    };
    let complex = MultiplierSpec::parse("BP-WT-CL", width)
        .expect("architecture")
        .build();
    let mut session = Session::extract(&complex)
        .expect("acyclic")
        .spec(Spec::multiplier(width))
        .budget(tight)
        .counterexamples(false);
    session = session.strategy(Method::MtFo);
    let fo_complex = session.run().expect("interface");
    assert!(
        fo_complex.outcome.is_resource_limit(),
        "MT-FO must blow up on BP-WT-CL under the term budget, got {:?}",
        fo_complex.outcome
    );
    session = session.strategy(Method::MtLr);
    let lr_complex = session.run().expect("interface");
    assert!(
        lr_complex.outcome.is_verified(),
        "MT-LR must verify BP-WT-CL under the same budget, got {:?}",
        lr_complex.outcome
    );
    assert!(lr_complex.stats.cancelled_vanishing() > 0);
    // The indexed rewriter stays within the same tight budget: in its
    // default closure mode it cancels at least as much as the scan engine's
    // tracker (byte-identity in tracker mode is pinned by
    // `tests/rewrite_equivalence.rs`), so the rewrite peak cannot regress
    // past the oracle's.
    session = session.strategy(Method::MtLrIdx);
    let idx_complex = session.run().expect("interface");
    assert!(
        idx_complex.outcome.is_verified(),
        "MT-LR-IDX must verify BP-WT-CL under the same budget, got {:?}",
        idx_complex.outcome
    );
    assert!(idx_complex.stats.rewrite.index_hits > 0);
    assert!(idx_complex.stats.rewrite.columns_retired > 0);
    assert!(idx_complex.stats.rewrite.peak_terms <= tight.max_terms);
}

/// Single-gate faults injected into three different architectures are
/// rejected with `Outcome::Mismatch`, and the typed counterexample is
/// validated against netlist simulation: the circuit word differs from the
/// specification word exactly as the counterexample claims.
#[test]
fn faults_across_architectures_yield_validated_counterexamples() {
    let width = 4;
    for (arch, seed) in [("BP-CT-BK", 7u64), ("SP-WT-CL", 11), ("SP-AR-RC", 23)] {
        let golden = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let (fault, mutant) = distinguishable_mutant(&golden, 200, &mut rng).expect("mutant");
        // Simulation sees the difference.
        assert!(random_equivalence_check(&golden, &mutant, 8, &mut rng).is_some());
        // The algebraic verifier rejects it with a grounded counterexample.
        let report = verify_mul(&mutant, width, Method::MtLr);
        match &report.outcome {
            Outcome::Mismatch {
                remainder_terms,
                counterexample,
            } => {
                assert!(*remainder_terms > 0, "{arch}: empty remainder");
                let cex = counterexample
                    .as_ref()
                    .unwrap_or_else(|| panic!("{arch}: no counterexample for {fault:?}"));
                let a = cex.operand("a").expect("operand a");
                let b = cex.operand("b").expect("operand b");
                let simulated = mutant.evaluate_words(&[a, b], &[width, width]);
                assert_eq!(
                    Some(simulated),
                    cex.circuit_word,
                    "{arch}: counterexample circuit word must match simulation"
                );
                assert_eq!(
                    Some((a * b) % (1 << (2 * width))),
                    cex.expected_word,
                    "{arch}: expected word must be the true product"
                );
                assert_ne!(
                    cex.circuit_word, cex.expected_word,
                    "{arch}: counterexample must expose the fault"
                );
            }
            other => panic!("{arch}: expected mismatch, got {other:?}"),
        }
        // The SAT miter rejects it too.
        assert!(!check_equivalence(&golden, &mutant, None).is_equivalent());
    }
}

/// Standalone final-stage adders of every family verify (including with a
/// carry-in) and equivalent pairs are proved equivalent by SAT.
#[test]
fn adder_families_verify_and_are_equivalent() {
    let width = 8;
    let reference = build_adder(width, AdderKind::RippleCarry, false);
    for kind in AdderKind::all() {
        let adder = build_adder(width, kind, false);
        let report = Session::extract(&adder)
            .expect("acyclic")
            .spec(Spec::adder(width))
            .strategy(Method::MtLr)
            .run()
            .expect("adder interface");
        assert!(
            report.outcome.is_verified(),
            "{kind:?} adder failed: {:?}",
            report.outcome
        );
        assert!(check_equivalence(&reference, &adder, None).is_equivalent());
    }
}

/// The netlist text format round-trips a generated multiplier and the
/// re-parsed circuit still verifies.
#[test]
fn netlist_format_round_trip_preserves_verifiability() {
    let width = 4;
    let netlist = MultiplierSpec::parse("SP-DT-HC", width)
        .expect("architecture")
        .build();
    let text = gbmv::netlist::write_netlist(&netlist);
    let parsed = gbmv::netlist::parse_netlist(&text).expect("parse back");
    assert_eq!(parsed.inputs().len(), netlist.inputs().len());
    let report = verify_mul(&parsed, width, Method::MtLr);
    assert!(report.outcome.is_verified());
}

/// Statistics behave as the paper describes: architectures with
/// carry-lookahead / Kogge-Stone final adders produce more vanishing
/// monomials than ripple-carry ones.
#[test]
fn vanishing_monomial_counts_follow_architecture_complexity() {
    let width = 4;
    // Same partial products and accumulator; only the final adder differs, so
    // the difference in #CVM is attributable to the parallel-prefix carry
    // logic.
    let rc = MultiplierSpec::parse("SP-AR-RC", width)
        .expect("architecture")
        .build();
    let ks = MultiplierSpec::parse("SP-AR-KS", width)
        .expect("architecture")
        .build();
    let rc_report = verify_mul(&rc, width, Method::MtLr);
    let ks_report = verify_mul(&ks, width, Method::MtLr);
    assert!(rc_report.outcome.is_verified());
    assert!(ks_report.outcome.is_verified());
    assert!(
        ks_report.stats.cancelled_vanishing() > rc_report.stats.cancelled_vanishing(),
        "KS: {}, RC: {}",
        ks_report.stats.cancelled_vanishing(),
        rc_report.stats.cancelled_vanishing()
    );
}
