//! # gbmv — Gröbner Basis Multiplier Verification
//!
//! A reproduction of *"Formal Verification of Integer Multipliers by Combining
//! Gröbner Basis with Logic Reduction"* (Sayed-Ahmed et al., DATE 2016).
//!
//! This facade crate re-exports the workspace crates under a single name:
//!
//! * [`netlist`] — gate-level circuit representation, simulation, analysis.
//! * [`genmul`] — generators for adders and multipliers in the architecture
//!   families evaluated by the paper (simple/Booth partial products, array /
//!   Wallace / Dadda / (4,2)-compressor / redundant-binary accumulation,
//!   ripple-carry / carry-lookahead / Brent-Kung / Kogge-Stone / Han-Carlson
//!   final adders).
//! * [`poly`] — multivariate polynomials over the Boolean domain with
//!   arbitrary-precision integer coefficients.
//! * [`sat`] — a CDCL SAT solver and miter-based combinational equivalence
//!   checking (the baseline the paper compares against).
//! * [`core`] — the membership-testing verifier: the [`core::Session`] API
//!   with typed [`core::Spec`]s, pluggable rewrite/reduction strategies
//!   ([`core::Method`] presets MT, MT-FO, MT-XOR, MT-LR, and the parallel
//!   output-cone engine MT-LR-PAR), budgets with cooperative cancellation
//!   and a worker-thread knob, and the [`core::Portfolio`] driver that races
//!   several strategies (including the SAT baseline) against one extracted
//!   model. [`netlist::cone`] holds the output-cone decomposition the
//!   parallel engine schedules by.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
//! use gbmv::{Method, Session, Spec};
//!
//! // Generate a 4x4 Booth-encoded Wallace-tree multiplier with a
//! // carry-lookahead final adder and verify it with MT-LR.
//! let spec = MultiplierSpec::new(4, PartialProduct::Booth, Accumulator::Wallace,
//!                                FinalAdder::CarryLookAhead);
//! let netlist = spec.build();
//! let report = Session::extract(&netlist)?
//!     .spec(Spec::multiplier(4))
//!     .strategy(Method::MtLr)
//!     .run()?;
//! assert!(report.outcome.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Racing MT-LR against the SAT miter baseline, first winner takes all:
//!
//! ```
//! use gbmv::genmul::MultiplierSpec;
//! use gbmv::{Method, Portfolio, Spec};
//!
//! let netlist = MultiplierSpec::parse("SP-AR-RC", 4).unwrap().build();
//! let report = Portfolio::extract(&netlist)?
//!     .spec(Spec::multiplier(4))
//!     .method(Method::MtLr)
//!     .sat_baseline(Some(200_000))
//!     .race()?;
//! assert!(report.verdict().unwrap().is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use gbmv_core as core;
pub use gbmv_genmul as genmul;
pub use gbmv_netlist as netlist;
pub use gbmv_poly as poly;
pub use gbmv_sat as sat;

pub use gbmv_core::{
    Budget, Counterexample, DeadlineToken, Method, Outcome, ParallelReduction, Portfolio, Report,
    Session, Spec,
};
