//! # gbmv — Gröbner Basis Multiplier Verification
//!
//! A reproduction of *"Formal Verification of Integer Multipliers by Combining
//! Gröbner Basis with Logic Reduction"* (Sayed-Ahmed et al., DATE 2016).
//!
//! This facade crate re-exports the workspace crates under a single name:
//!
//! * [`netlist`] — gate-level circuit representation, simulation, analysis.
//! * [`genmul`] — generators for adders and multipliers in the architecture
//!   families evaluated by the paper (simple/Booth partial products, array /
//!   Wallace / Dadda / (4,2)-compressor / redundant-binary accumulation,
//!   ripple-carry / carry-lookahead / Brent-Kung / Kogge-Stone / Han-Carlson
//!   final adders).
//! * [`poly`] — multivariate polynomials over the Boolean domain with
//!   arbitrary-precision integer coefficients.
//! * [`sat`] — a CDCL SAT solver and miter-based combinational equivalence
//!   checking (the baseline the paper compares against).
//! * [`core`] — the membership-testing verifier with fanout rewriting (MT-FO)
//!   and logic-reduction rewriting (MT-LR), the paper's contribution.
//!
//! # Quickstart
//!
//! ```
//! use gbmv::genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
//! use gbmv::core::{Method, VerifyConfig, verify_multiplier};
//!
//! // Generate a 4x4 Booth-encoded Wallace-tree multiplier with a
//! // carry-lookahead final adder and verify it.
//! let spec = MultiplierSpec::new(4, PartialProduct::Booth, Accumulator::Wallace,
//!                                FinalAdder::CarryLookAhead);
//! let netlist = spec.build();
//! let report = verify_multiplier(&netlist, 4, Method::MtLr, &VerifyConfig::default());
//! assert!(report.outcome.is_verified());
//! ```

pub use gbmv_core as core;
pub use gbmv_genmul as genmul;
pub use gbmv_netlist as netlist;
pub use gbmv_poly as poly;
pub use gbmv_sat as sat;
