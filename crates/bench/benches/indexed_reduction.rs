//! Criterion bench of the incremental indexed engine (`MT-LR-IDX`) at widths
//! 4–6 on the redundant-binary Kogge-Stone architecture whose term growth
//! the index was built to contain, plus the scan-based MT-LR reference at
//! width 4 for scale (at width 6 the reference runs for seconds, so only the
//! indexed engine sweeps the full width range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbmv_bench::session_verify;
use gbmv_core::Method;
use gbmv_genmul::MultiplierSpec;

fn bench_indexed_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_reduction");
    group.sample_size(10);
    for width in [4usize, 5, 6] {
        let netlist = MultiplierSpec::parse("SP-RT-KS", width)
            .expect("architecture")
            .build();
        group.bench_with_input(
            BenchmarkId::new("MT-LR-IDX/SP-RT-KS", width),
            &netlist,
            |b, nl| {
                b.iter(|| session_verify(nl, width, Method::MtLrIdx));
            },
        );
    }
    let netlist = MultiplierSpec::parse("SP-RT-KS", 4)
        .expect("architecture")
        .build();
    group.bench_with_input(
        BenchmarkId::new("MT-LR/SP-RT-KS", 4usize),
        &netlist,
        |b, nl| {
            b.iter(|| session_verify(nl, 4, Method::MtLr));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_indexed_reduction);
criterion_main!(benches);
