//! Criterion bench corresponding to Table I (simple partial products):
//! MT-LR and MT-FO on representative SP architectures at width 8, through
//! the `Session` API (extraction included, as in the paper's timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbmv_bench::session_verify;
use gbmv_core::Method;
use gbmv_genmul::MultiplierSpec;

fn bench_table1(c: &mut Criterion) {
    let width = 8;
    let mut group = c.benchmark_group("table1_simple_pp");
    group.sample_size(10);
    for arch in ["SP-AR-RC", "SP-WT-CL", "SP-CT-BK", "SP-DT-HC"] {
        let netlist = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        group.bench_with_input(BenchmarkId::new("MT-LR", arch), &netlist, |b, nl| {
            b.iter(|| session_verify(nl, width, Method::MtLr));
        });
        group.bench_with_input(BenchmarkId::new("MT-LR-PAR", arch), &netlist, |b, nl| {
            b.iter(|| session_verify(nl, width, Method::MtLrPar));
        });
    }
    // MT-FO only on the architecture it can handle (the paper's point: it
    // succeeds on SP-AR-RC and blows up on the parallel ones).
    let netlist = MultiplierSpec::parse("SP-AR-RC", width)
        .expect("architecture")
        .build();
    group.bench_with_input(BenchmarkId::new("MT-FO", "SP-AR-RC"), &netlist, |b, nl| {
        b.iter(|| session_verify(nl, width, Method::MtFo));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
