//! Ablation bench: the cost of the individual rewriting schemes (fanout, XOR,
//! XOR+common) on the same circuit, plus MT-LR with the vanishing rules
//! disabled. Complements the `ablation` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbmv_core::{
    rewrite::{fanout_rewriting, logic_reduction_rewriting, xor_rewriting, RewriteConfig},
    AlgebraicModel, VanishingRules,
};
use gbmv_genmul::MultiplierSpec;

fn bench_rewriting_schemes(c: &mut Criterion) {
    let width = 8;
    let netlist = MultiplierSpec::parse("SP-CT-BK", width)
        .expect("architecture")
        .build();
    let base_model = AlgebraicModel::from_netlist(&netlist).unwrap();
    let mut group = c.benchmark_group("ablation_rewriting");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("scheme", "fanout"), &base_model, |b, m| {
        b.iter(|| {
            let mut model = m.clone();
            fanout_rewriting(&mut model, &RewriteConfig::default());
            model.num_polynomials()
        });
    });
    group.bench_with_input(BenchmarkId::new("scheme", "xor"), &base_model, |b, m| {
        b.iter(|| {
            let mut model = m.clone();
            xor_rewriting(&mut model, &RewriteConfig::default());
            model.num_polynomials()
        });
    });
    group.bench_with_input(
        BenchmarkId::new("scheme", "logic_reduction"),
        &base_model,
        |b, m| {
            b.iter(|| {
                let mut model = m.clone();
                logic_reduction_rewriting(&mut model, &RewriteConfig::default());
                model.num_polynomials()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("scheme", "logic_reduction_no_rules"),
        &base_model,
        |b, m| {
            b.iter(|| {
                let mut model = m.clone();
                let config = RewriteConfig {
                    rules: VanishingRules::none(),
                    ..RewriteConfig::default()
                };
                logic_reduction_rewriting(&mut model, &config);
                model.num_polynomials()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_rewriting_schemes);
criterion_main!(benches);
