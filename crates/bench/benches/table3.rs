//! Criterion bench corresponding to Table III: isolates the Gröbner basis
//! reduction time after logic reduction rewriting (the paper reports that
//! reduction is only a fraction of the MT-LR total).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbmv_core::{
    reduction::GbReduction,
    rewrite::{logic_reduction_rewriting, RewriteConfig},
    AlgebraicModel, Spec,
};
use gbmv_genmul::MultiplierSpec;

fn bench_table3(c: &mut Criterion) {
    let width = 8;
    let mut group = c.benchmark_group("table3_gb_reduction");
    group.sample_size(10);
    for arch in ["BP-WT-CL", "SP-CT-BK", "SP-DT-HC"] {
        let netlist = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        // Prepare the rewritten model once; the bench measures the reduction.
        let pristine = AlgebraicModel::from_netlist(&netlist).expect("acyclic");
        let (spec, _modulus) = Spec::multiplier(width)
            .instantiate(&pristine)
            .expect("interface");
        let mut model = pristine.clone();
        logic_reduction_rewriting(&mut model, &RewriteConfig::default());
        group.bench_with_input(
            BenchmarkId::new("gb_reduction_after_mtlr", arch),
            &(model, spec),
            |b, (model, spec)| {
                b.iter(|| {
                    let (r, outcome, _) = GbReduction::default().reduce(model, spec);
                    assert!(outcome.is_completed());
                    assert!(r.drop_multiples_of_pow2(2 * width as u32).is_zero());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
