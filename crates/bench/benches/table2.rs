//! Criterion bench corresponding to Table II (Booth partial products):
//! MT-LR on representative BP architectures at width 8, through the
//! `Session` API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbmv_bench::session_verify;
use gbmv_core::Method;
use gbmv_genmul::MultiplierSpec;

fn bench_table2(c: &mut Criterion) {
    let width = 8;
    let mut group = c.benchmark_group("table2_booth_pp");
    group.sample_size(10);
    for arch in ["BP-AR-RC", "BP-WT-CL", "BP-CT-BK", "BP-DT-HC"] {
        let netlist = MultiplierSpec::parse(arch, width)
            .expect("architecture")
            .build();
        group.bench_with_input(BenchmarkId::new("MT-LR", arch), &netlist, |b, nl| {
            b.iter(|| session_verify(nl, width, Method::MtLr));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
