//! Regenerates Table III of the paper: statistics of the MT-LR algorithm —
//! cancelled vanishing monomials (#CVM), Gröbner-basis reduction time, and
//! the size of the rewritten model (#P, #M, #MP, #VM).
//!
//! Configure with the `GBMV_*` environment variables (see `gbmv-bench`).

use gbmv_bench::{format_duration, run_algebraic, table3_architectures, HarnessConfig};
use gbmv_core::Method;

fn main() {
    let config = HarnessConfig::from_env();
    println!("Table III: statistics for verification of multipliers by MT-LR");
    println!(
        "{:<12} {:>7} {:>9} {:>14} {:>8} {:>9} {:>6} {:>5}  status",
        "Benchmark", "I/O", "#CVM", "GB reduction", "#P", "#M", "#MP", "#VM"
    );
    for &width in &config.widths {
        for arch in table3_architectures() {
            if !config.selects(arch) {
                continue;
            }
            let (cell, report) = run_algebraic(arch, width, Method::MtLr, &config);
            let stats = &report.stats;
            println!(
                "{:<12} {:>3}/{:<3} {:>9} {:>14} {:>8} {:>9} {:>6} {:>5}  {}",
                arch,
                width,
                2 * width,
                stats.cancelled_vanishing(),
                format_duration(stats.reduction.elapsed),
                stats.model_polynomials,
                stats.model_monomials,
                stats.max_polynomial_terms,
                stats.max_monomial_vars,
                cell.display()
            );
        }
    }
}
