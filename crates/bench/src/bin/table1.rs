//! Regenerates Table I of the paper: verification run-times for multipliers
//! with **simple partial products** across the SAT-miter baseline (the
//! commercial-CEC substitute), MT-FO and MT-LR.
//!
//! Configure with `GBMV_WIDTHS`, `GBMV_TIMEOUT_SECS`, `GBMV_MAX_TERMS`,
//! `GBMV_CEC_CONFLICTS` (see the crate docs of `gbmv-bench`). Set
//! `GBMV_BENCH_JSON` to additionally write the machine-readable
//! `BENCH_table1.json` used to track the repo's perf trajectory.

use gbmv_bench::{
    bench_json_path, print_comparison_header, print_comparison_row, run_algebraic, run_cec,
    table1_architectures, write_bench_json, BenchRecord, HarnessConfig,
};
use gbmv_core::Method;

fn main() {
    let config = HarnessConfig::from_env();
    let mut records = Vec::new();
    print_comparison_header("Table I: verification results for simple partial product multipliers");
    for &width in &config.widths {
        for arch in table1_architectures() {
            let cec = run_cec(arch, width, &config);
            let (fo, fo_report) = run_algebraic(arch, width, Method::MtFo, &config);
            let (lr, lr_report) = run_algebraic(arch, width, Method::MtLr, &config);
            print_comparison_row(arch, width, &cec, &fo, &lr);
            records.push(BenchRecord::from_cec(arch, width, &cec));
            records.push(BenchRecord::from_algebraic(
                arch,
                width,
                Method::MtFo,
                &fo,
                &fo_report,
            ));
            records.push(BenchRecord::from_algebraic(
                arch,
                width,
                Method::MtLr,
                &lr,
                &lr_report,
            ));
        }
    }
    if let Some(path) = bench_json_path("table1") {
        write_bench_json(&path, &records).expect("write bench json");
        println!("wrote {}", path.display());
    }
}
