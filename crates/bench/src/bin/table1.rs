//! Regenerates Table I of the paper: verification run-times for multipliers
//! with **simple partial products** across the SAT-miter baseline (the
//! commercial-CEC substitute), MT-FO and MT-LR — one `Portfolio` per
//! instance, so all three strategies share one extracted model.
//!
//! Configure with `GBMV_WIDTHS`, `GBMV_TIMEOUT_SECS`, `GBMV_MAX_TERMS`,
//! `GBMV_CEC_CONFLICTS` (see the crate docs of `gbmv-bench`). Set
//! `GBMV_BENCH_JSON` to additionally write the machine-readable
//! `BENCH_table1.json` used to track the repo's perf trajectory.

use gbmv_bench::{
    bench_json_path, emit_comparison_row, print_comparison_header, table1_architectures,
    write_bench_json, HarnessConfig,
};

fn main() {
    let config = HarnessConfig::from_env();
    let mut records = Vec::new();
    print_comparison_header("Table I: verification results for simple partial product multipliers");
    for &width in &config.widths {
        for arch in table1_architectures() {
            if !config.selects(arch) {
                continue;
            }
            emit_comparison_row(arch, width, &config, &mut records);
        }
    }
    if let Some(path) = bench_json_path("table1") {
        write_bench_json(&path, &records).expect("write bench json");
        println!("wrote {}", path.display());
    }
}
