//! Regenerates Table I of the paper: verification run-times for multipliers
//! with **simple partial products** across the SAT-miter baseline (the
//! commercial-CEC substitute), MT-FO and MT-LR.
//!
//! Configure with `GBMV_WIDTHS`, `GBMV_TIMEOUT_SECS`, `GBMV_MAX_TERMS`,
//! `GBMV_CEC_CONFLICTS` (see the crate docs of `gbmv-bench`).

use gbmv_bench::{
    print_comparison_header, print_comparison_row, run_algebraic, run_cec, table1_architectures,
    HarnessConfig,
};
use gbmv_core::Method;

fn main() {
    let config = HarnessConfig::from_env();
    print_comparison_header(
        "Table I: verification results for simple partial product multipliers",
    );
    for &width in &config.widths {
        for arch in table1_architectures() {
            let cec = run_cec(arch, width, &config);
            let (fo, _) = run_algebraic(arch, width, Method::MtFo, &config);
            let (lr, _) = run_algebraic(arch, width, Method::MtLr, &config);
            print_comparison_row(arch, width, &cec, &fo, &lr);
        }
    }
}
