//! Regenerates Table II of the paper: verification run-times for multipliers
//! with **Booth partial products**. The CPP column of the paper is not
//! applicable to Booth multipliers (marked "-" there) and is not reproduced.
//!
//! Configure with the `GBMV_*` environment variables (see `gbmv-bench`). Set
//! `GBMV_BENCH_JSON` to additionally write the machine-readable
//! `BENCH_table2.json` used to track the repo's perf trajectory.

use gbmv_bench::{
    bench_json_path, print_comparison_header, print_comparison_row, run_algebraic, run_cec,
    table2_architectures, write_bench_json, BenchRecord, HarnessConfig,
};
use gbmv_core::Method;

fn main() {
    let config = HarnessConfig::from_env();
    let mut records = Vec::new();
    print_comparison_header("Table II: verification results for Booth partial product multipliers");
    for &width in &config.widths {
        for arch in table2_architectures() {
            let cec = run_cec(arch, width, &config);
            let (fo, fo_report) = run_algebraic(arch, width, Method::MtFo, &config);
            let (lr, lr_report) = run_algebraic(arch, width, Method::MtLr, &config);
            print_comparison_row(arch, width, &cec, &fo, &lr);
            records.push(BenchRecord::from_cec(arch, width, &cec));
            records.push(BenchRecord::from_algebraic(
                arch,
                width,
                Method::MtFo,
                &fo,
                &fo_report,
            ));
            records.push(BenchRecord::from_algebraic(
                arch,
                width,
                Method::MtLr,
                &lr,
                &lr_report,
            ));
        }
    }
    if let Some(path) = bench_json_path("table2") {
        write_bench_json(&path, &records).expect("write bench json");
        println!("wrote {}", path.display());
    }
}
