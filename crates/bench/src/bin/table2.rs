//! Regenerates Table II of the paper: verification run-times for multipliers
//! with **Booth partial products**. The CPP column of the paper is not
//! applicable to Booth multipliers (marked "-" there) and is not reproduced.
//!
//! Configure with the `GBMV_*` environment variables (see `gbmv-bench`).

use gbmv_bench::{
    print_comparison_header, print_comparison_row, run_algebraic, run_cec, table2_architectures,
    HarnessConfig,
};
use gbmv_core::Method;

fn main() {
    let config = HarnessConfig::from_env();
    print_comparison_header(
        "Table II: verification results for Booth partial product multipliers",
    );
    for &width in &config.widths {
        for arch in table2_architectures() {
            let cec = run_cec(arch, width, &config);
            let (fo, _) = run_algebraic(arch, width, Method::MtFo, &config);
            let (lr, _) = run_algebraic(arch, width, Method::MtLr, &config);
            print_comparison_row(arch, width, &cec, &fo, &lr);
        }
    }
}
