//! Regenerates Table II of the paper: verification run-times for multipliers
//! with **Booth partial products**. The CPP column of the paper is not
//! applicable to Booth multipliers (marked "-" there) and is not reproduced.
//! Each row is one `Portfolio` run sharing a single extracted model.
//!
//! Configure with the `GBMV_*` environment variables (see `gbmv-bench`). Set
//! `GBMV_BENCH_JSON` to additionally write the machine-readable
//! `BENCH_table2.json` used to track the repo's perf trajectory.

use gbmv_bench::{
    bench_json_path, emit_comparison_row, print_comparison_header, table2_architectures,
    write_bench_json, HarnessConfig,
};

fn main() {
    let config = HarnessConfig::from_env();
    let mut records = Vec::new();
    print_comparison_header("Table II: verification results for Booth partial product multipliers");
    for &width in &config.widths {
        for arch in table2_architectures() {
            if !config.selects(arch) {
                continue;
            }
            emit_comparison_row(arch, width, &config, &mut records);
        }
    }
    if let Some(path) = bench_json_path("table2") {
        write_bench_json(&path, &records).expect("write bench json");
        println!("wrote {}", path.display());
    }
}
