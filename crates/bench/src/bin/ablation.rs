//! Ablation study beyond the paper's tables: isolates the effect of the two
//! halves of logic reduction rewriting.
//!
//! For each architecture the run time of four configurations is reported:
//! MT-FO (baseline), MT-XOR (XOR rewriting only, which the paper argues is
//! inefficient on its own), MT-LR without the vanishing rules, and the full
//! MT-LR — each a `Session` run with the strategy (or rule set) swapped.

use gbmv_bench::{build_architecture, format_duration, HarnessConfig};
use gbmv_core::{Method, Outcome, Session, Spec, VanishingRules};

fn run(
    arch: &str,
    width: usize,
    method: Method,
    rules: VanishingRules,
    config: &HarnessConfig,
) -> String {
    let netlist = build_architecture(arch, width);
    let report = Session::extract(&netlist)
        .expect("generated netlists are acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .rules(rules)
        .budget(config.budget())
        .counterexamples(false)
        .run()
        .expect("generated netlists match the multiplier interface");
    match report.outcome {
        Outcome::Verified => format_duration(report.stats.total_time),
        Outcome::ResourceLimit { .. } | Outcome::Cancelled => "TO".to_string(),
        Outcome::Mismatch { .. } => "FAIL".to_string(),
    }
}

fn main() {
    let config = HarnessConfig::from_env();
    let rules = VanishingRules::default();
    let no_rules = VanishingRules::none();
    println!("Ablation: rewriting schemes and vanishing rules");
    println!(
        "{:<12} {:>5} {:>14} {:>14} {:>16} {:>14}",
        "Benchmark", "width", "MT-FO", "MT-XOR", "MT-LR(no rule)", "MT-LR"
    );
    for &width in &config.widths {
        for arch in ["SP-CT-BK", "BP-WT-CL", "SP-AR-RC"] {
            let fo = run(arch, width, Method::MtFo, rules, &config);
            let xor_only = run(arch, width, Method::MtXorOnly, rules, &config);
            let lr_no_rule = run(arch, width, Method::MtLr, no_rules, &config);
            let lr = run(arch, width, Method::MtLr, rules, &config);
            println!(
                "{:<12} {:>5} {:>14} {:>14} {:>16} {:>14}",
                arch, width, fo, xor_only, lr_no_rule, lr
            );
        }
    }
}
