//! Ablation study beyond the paper's tables: isolates the effect of the two
//! halves of logic reduction rewriting.
//!
//! For each architecture the run time of four configurations is reported:
//! MT-FO (baseline), MT-XOR (XOR rewriting only, which the paper argues is
//! inefficient on its own), MT-LR without the vanishing rules, and the full
//! MT-LR.

use std::time::Instant;

use gbmv_bench::{format_duration, HarnessConfig};
use gbmv_core::{verify_multiplier, Method, Outcome, VanishingRules, VerifyConfig};
use gbmv_genmul::MultiplierSpec;

fn run(arch: &str, width: usize, method: Method, config: &VerifyConfig) -> String {
    let netlist = MultiplierSpec::parse(arch, width)
        .expect("architecture")
        .build();
    let start = Instant::now();
    let report = verify_multiplier(&netlist, width, method, config);
    let elapsed = start.elapsed();
    match report.outcome {
        Outcome::Verified => format_duration(elapsed),
        Outcome::ResourceLimit { .. } => "TO".to_string(),
        Outcome::Mismatch { .. } => "FAIL".to_string(),
    }
}

fn main() {
    let harness = HarnessConfig::from_env();
    let base = harness.verify_config();
    let no_rules = VerifyConfig {
        rules: VanishingRules::none(),
        ..base.clone()
    };
    println!("Ablation: rewriting schemes and vanishing rules");
    println!(
        "{:<12} {:>5} {:>14} {:>14} {:>16} {:>14}",
        "Benchmark", "width", "MT-FO", "MT-XOR", "MT-LR(no rule)", "MT-LR"
    );
    for &width in &harness.widths {
        for arch in ["SP-CT-BK", "BP-WT-CL", "SP-AR-RC"] {
            let fo = run(arch, width, Method::MtFo, &base);
            let xor_only = run(arch, width, Method::MtXorOnly, &base);
            let lr_no_rule = run(arch, width, Method::MtLr, &no_rules);
            let lr = run(arch, width, Method::MtLr, &base);
            println!(
                "{:<12} {:>5} {:>14} {:>14} {:>16} {:>14}",
                arch, width, fo, xor_only, lr_no_rule, lr
            );
        }
    }
}
