//! Shared harness for regenerating the paper's tables.
//!
//! The binaries `table1`, `table2`, `table3` and `ablation` print the rows of
//! the corresponding tables of the paper; the Criterion benches measure the
//! same workloads at small widths so `cargo bench` finishes in minutes. The
//! table binaries drive one [`Portfolio`] per benchmark instance: the SAT
//! miter baseline and the algebraic methods run against a single extracted
//! model.
//!
//! Run-time configuration is taken from environment variables so the same
//! binaries scale from a smoke test to the full experiment:
//!
//! * `GBMV_WIDTHS` — comma-separated operand widths (default `8,16`).
//! * `GBMV_TIMEOUT_SECS` — per-instance budget in seconds (default `60`).
//! * `GBMV_MAX_TERMS` — polynomial term limit (default `10000000`).
//! * `GBMV_CEC_CONFLICTS` — conflict budget of the SAT miter baseline
//!   (default `200000`).
//! * `GBMV_ARCHS` — comma-separated architecture names; when set, a table
//!   binary only runs the listed architectures (default: all of its table).

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use gbmv_core::{
    Budget, Method, Outcome, Portfolio, PortfolioReport, Report, Session, Spec, StrategyRun,
};
use gbmv_genmul::MultiplierSpec;

/// Run-time configuration of the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Operand widths to sweep.
    pub widths: Vec<usize>,
    /// Per-instance wall-clock budget.
    pub timeout: Duration,
    /// Polynomial term limit for the algebraic methods.
    pub max_terms: usize,
    /// Conflict budget of the SAT miter baseline.
    pub cec_conflicts: u64,
    /// Restrict the table binaries to these architectures (`None` = all).
    pub archs: Option<Vec<String>>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            widths: vec![8, 16],
            timeout: Duration::from_secs(60),
            max_terms: 10_000_000,
            cec_conflicts: 200_000,
            archs: None,
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the `GBMV_*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let mut config = HarnessConfig::default();
        if let Ok(widths) = std::env::var("GBMV_WIDTHS") {
            let parsed: Vec<usize> = widths
                .split(',')
                .filter_map(|w| w.trim().parse().ok())
                .collect();
            if !parsed.is_empty() {
                config.widths = parsed;
            }
        }
        if let Ok(secs) = std::env::var("GBMV_TIMEOUT_SECS") {
            if let Ok(secs) = secs.trim().parse::<u64>() {
                config.timeout = Duration::from_secs(secs);
            }
        }
        if let Ok(terms) = std::env::var("GBMV_MAX_TERMS") {
            if let Ok(terms) = terms.trim().parse::<usize>() {
                config.max_terms = terms;
            }
        }
        if let Ok(conflicts) = std::env::var("GBMV_CEC_CONFLICTS") {
            if let Ok(conflicts) = conflicts.trim().parse::<u64>() {
                config.cec_conflicts = conflicts;
            }
        }
        if let Ok(archs) = std::env::var("GBMV_ARCHS") {
            let parsed: Vec<String> = archs
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if !parsed.is_empty() {
                config.archs = Some(parsed);
            }
        }
        config
    }

    /// Whether this configuration selects `arch` (true unless `GBMV_ARCHS`
    /// names a different subset).
    pub fn selects(&self, arch: &str) -> bool {
        self.archs
            .as_ref()
            .is_none_or(|a| a.iter().any(|x| x == arch))
    }

    /// The per-run resource budget this configuration stands for.
    pub fn budget(&self) -> Budget {
        Budget {
            max_terms: self.max_terms,
            deadline: Some(self.timeout),
            threads: 0,
        }
    }
}

/// Builds the netlist of a named architecture at a given width.
///
/// # Panics
///
/// Panics on unknown architecture names.
pub fn build_architecture(arch: &str, width: usize) -> gbmv_netlist::Netlist {
    MultiplierSpec::parse(arch, width)
        .unwrap_or_else(|| panic!("unknown architecture {arch}"))
        .build()
}

/// One measured cell of a table: the wall-clock time and how the run ended.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// `"ok"`, `"TO"` (resource limit / cancelled) or `"FAIL"` (unexpected
    /// mismatch).
    pub status: &'static str,
}

impl Cell {
    /// Builds a cell from one portfolio strategy run.
    pub fn from_run(run: &StrategyRun) -> Cell {
        Cell {
            elapsed: run.elapsed,
            status: status_of(&run.outcome),
        }
    }

    /// Formats the cell like the paper's `h:mm:ss` column, or `TO`.
    pub fn display(&self) -> String {
        match self.status {
            "ok" => format_duration(self.elapsed),
            other => other.to_string(),
        }
    }
}

fn status_of(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Verified => "ok",
        Outcome::ResourceLimit { .. } | Outcome::Cancelled => "TO",
        Outcome::Mismatch { .. } => "FAIL",
    }
}

/// Formats a duration as `h:mm:ss.milli`.
pub fn format_duration(d: Duration) -> String {
    let total = d.as_secs();
    let hours = total / 3600;
    let minutes = (total % 3600) / 60;
    let seconds = total % 60;
    let millis = d.subsec_millis();
    format!("{hours}:{minutes:02}:{seconds:02}.{millis:03}")
}

/// Verifies `netlist` as a `width`-bit multiplier with `method` under the
/// default budget, panicking on anything but [`Outcome::Verified`] — the
/// shared measurement kernel of the Criterion benches.
pub fn session_verify(netlist: &gbmv_netlist::Netlist, width: usize, method: Method) {
    let report = Session::extract(netlist)
        .expect("generated netlists are acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .counterexamples(false)
        .run()
        .expect("generated netlists match the multiplier interface");
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
}

/// Runs one algebraic verification instance through a [`Session`] and
/// reports the cell plus the full report (for Table III statistics).
pub fn run_algebraic(
    arch: &str,
    width: usize,
    method: Method,
    config: &HarnessConfig,
) -> (Cell, Report) {
    let netlist = build_architecture(arch, width);
    // Time the whole pipeline including Step-1 model extraction, matching
    // the paper's timings and the pre-redesign measurement window.
    let start = std::time::Instant::now();
    let report = Session::extract(&netlist)
        .expect("generated netlists are acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .budget(config.budget())
        .counterexamples(false)
        .run()
        .expect("generated netlists match the multiplier interface");
    let cell = Cell {
        elapsed: start.elapsed(),
        status: status_of(&report.outcome),
    };
    (cell, report)
}

/// Runs the comparison portfolio of the paper's Table I/II rows — the SAT
/// miter baseline (`CEC`), MT-FO, MT-LR, plus this repo's incremental
/// indexed engine (`MT-LR-IDX`) and parallel output-cone engine
/// (`MT-LR-PAR`) — against one extracted model.
///
/// Per-strategy elapsed times exclude the (shared, amortized) Step-1 model
/// extraction; counterexample search is disabled so a `FAIL` cell stays
/// cheap. The parallel engine's worker count follows `GBMV_THREADS` (else
/// the machine's parallelism) via [`Budget::effective_threads`].
pub fn table_portfolio(arch: &str, width: usize, config: &HarnessConfig) -> PortfolioReport {
    let netlist = build_architecture(arch, width);
    Portfolio::extract(&netlist)
        .expect("generated netlists are acyclic")
        .spec(Spec::multiplier(width))
        .budget(config.budget())
        .counterexamples(false)
        .sat_baseline(Some(config.cec_conflicts))
        .method(Method::MtFo)
        .method(Method::MtLr)
        .method(Method::MtLrIdx)
        .method(Method::MtLrPar)
        .run_all()
        .expect("generated netlists match the multiplier interface")
}

/// One machine-readable benchmark measurement, serialized into the
/// `BENCH_table{1,2}.json` files that track the repo's perf trajectory.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Architecture name (e.g. `SP-CT-BK`).
    pub arch: String,
    /// Operand width in bits.
    pub width: usize,
    /// Strategy name (`MT-FO`, `MT-LR`, `CEC`).
    pub strategy: String,
    /// Wall-clock time in milliseconds.
    pub elapsed_ms: u128,
    /// Peak intermediate polynomial size over rewriting and reduction;
    /// `None` (serialized as `null`) for strategies that do not track terms,
    /// such as the SAT baseline — a `0` would read as a measurement.
    pub peak_terms: Option<usize>,
    /// Number of substitution steps of the reduction phase; `None` for the
    /// SAT baseline.
    pub substitution_steps: Option<usize>,
    /// Number of terms retrieved through the inverted var→term index;
    /// `None` for the SAT baseline, `0` for the scan-based algebraic
    /// engines.
    pub index_hits: Option<u64>,
    /// Number of variable substitutions of the rewrite phase (Step 2);
    /// `None` for the SAT baseline.
    pub rewrite_steps: Option<usize>,
    /// Number of terms the rewrite phase retrieved through the inverted
    /// index; `None` for the SAT baseline, `0` for the scan-based rewriter.
    pub rewrite_index_hits: Option<u64>,
    /// Peak tail size during the rewrite phase; `None` for the SAT baseline.
    pub rewrite_peak_terms: Option<usize>,
    /// Wall-clock time of the rewrite phase in milliseconds; `None` for the
    /// SAT baseline.
    pub rewrite_ms: Option<u128>,
    /// The term budget the run was given.
    pub max_terms: usize,
    /// The wall-clock budget the run was given, in milliseconds.
    pub timeout_ms: u128,
    /// Worker threads the strategy ran with (1 for the single-threaded
    /// strategies; the resolved [`Budget::effective_threads`] for the
    /// parallel engine).
    pub threads: usize,
    /// `"ok"`, `"TO"` or `"FAIL"`.
    pub status: String,
}

impl BenchRecord {
    /// Builds a record from one portfolio strategy run.
    pub fn from_run(arch: &str, width: usize, run: &StrategyRun, config: &HarnessConfig) -> Self {
        // Only the parallel engine fans out; every other strategy runs its
        // phases on one thread.
        let threads = if run.strategy == Method::MtLrPar.name() {
            config.budget().effective_threads()
        } else {
            1
        };
        BenchRecord {
            arch: arch.to_string(),
            width,
            strategy: run.strategy.clone(),
            elapsed_ms: run.elapsed.as_millis(),
            peak_terms: run.stats.as_ref().map(|s| s.peak_terms()),
            substitution_steps: run.stats.as_ref().map(|s| s.reduction.substitutions),
            index_hits: run.stats.as_ref().map(|s| s.reduction.index_hits),
            rewrite_steps: run.stats.as_ref().map(|s| s.rewrite.substitutions),
            rewrite_index_hits: run.stats.as_ref().map(|s| s.rewrite.index_hits),
            rewrite_peak_terms: run.stats.as_ref().map(|s| s.rewrite.peak_terms),
            rewrite_ms: run.stats.as_ref().map(|s| s.rewrite.elapsed.as_millis()),
            max_terms: config.max_terms,
            timeout_ms: config.timeout.as_millis(),
            threads,
            status: status_of(&run.outcome).to_string(),
        }
    }

    fn to_json(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or_else(|| "null".to_string(), T::to_string)
        }
        format!(
            "{{\"arch\": \"{}\", \"width\": {}, \"strategy\": \"{}\", \"elapsed_ms\": {}, \"peak_terms\": {}, \"substitution_steps\": {}, \"index_hits\": {}, \"rewrite_steps\": {}, \"rewrite_index_hits\": {}, \"rewrite_peak_terms\": {}, \"rewrite_ms\": {}, \"max_terms\": {}, \"timeout_ms\": {}, \"threads\": {}, \"status\": \"{}\"}}",
            self.arch,
            self.width,
            self.strategy,
            self.elapsed_ms,
            opt(&self.peak_terms),
            opt(&self.substitution_steps),
            opt(&self.index_hits),
            opt(&self.rewrite_steps),
            opt(&self.rewrite_index_hits),
            opt(&self.rewrite_peak_terms),
            opt(&self.rewrite_ms),
            self.max_terms,
            self.timeout_ms,
            self.threads,
            self.status
        )
    }
}

/// The output path for a table's JSON records when `GBMV_BENCH_JSON` is set
/// to a truthy value (`BENCH_<table>.json` in the current directory), `None`
/// when unset, empty or `0`.
pub fn bench_json_path(table: &str) -> Option<PathBuf> {
    match std::env::var("GBMV_BENCH_JSON") {
        Ok(value) if !value.is_empty() && value != "0" => {
            Some(PathBuf::from(format!("BENCH_{table}.json")))
        }
        _ => None,
    }
}

/// Writes benchmark records as a JSON array (one record per line for easy
/// diffing). All record fields are plain identifiers/numbers, so no string
/// escaping is required.
pub fn write_bench_json(path: &PathBuf, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "[")?;
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(file, "  {}{}", record.to_json(), comma)?;
    }
    writeln!(file, "]")?;
    Ok(())
}

/// The simple-partial-product architectures of Table I.
pub fn table1_architectures() -> Vec<&'static str> {
    vec!["SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC"]
}

/// The Booth-partial-product architectures of Table II.
pub fn table2_architectures() -> Vec<&'static str> {
    vec!["BP-AR-RC", "BP-WT-CL", "BP-RT-KS", "BP-CT-BK", "BP-DT-HC"]
}

/// The architectures whose MT-LR statistics Table III reports.
pub fn table3_architectures() -> Vec<&'static str> {
    vec!["BP-WT-CL", "BP-RT-KS", "SP-DT-HC", "SP-CT-BK"]
}

/// Prints a table header for the per-method comparison tables.
pub fn print_comparison_header(title: &str) {
    println!("{title}");
    println!(
        "{:<12} {:>7} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "Benchmark", "I/O", "CEC(SAT)", "MT-FO", "MT-LR", "MT-LR-IDX", "MT-LR-PAR"
    );
}

/// Prints one row of a comparison table.
#[allow(clippy::too_many_arguments)]
pub fn print_comparison_row(
    arch: &str,
    width: usize,
    cec: &Cell,
    fo: &Cell,
    lr: &Cell,
    lr_idx: &Cell,
    lr_par: &Cell,
) {
    println!(
        "{:<12} {:>3}/{:<3} {:>14} {:>14} {:>14} {:>14} {:>14}",
        arch,
        width,
        2 * width,
        cec.display(),
        fo.display(),
        lr.display(),
        lr_idx.display(),
        lr_par.display()
    );
}

/// Runs one comparison-table row through [`table_portfolio`], prints it, and
/// appends the strategy records to `records`.
pub fn emit_comparison_row(
    arch: &str,
    width: usize,
    config: &HarnessConfig,
    records: &mut Vec<BenchRecord>,
) {
    let report = table_portfolio(arch, width, config);
    let cell = |name: &str| Cell::from_run(report.get(name).expect("portfolio strategy"));
    print_comparison_row(
        arch,
        width,
        &cell("CEC"),
        &cell("MT-FO"),
        &cell("MT-LR"),
        &cell("MT-LR-IDX"),
        &cell("MT-LR-PAR"),
    );
    for run in &report.runs {
        records.push(BenchRecord::from_run(arch, width, run, config));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(1500)), "0:00:01.500");
        assert_eq!(format_duration(Duration::from_secs(3661)), "1:01:01.000");
    }

    #[test]
    fn architectures_listed() {
        assert_eq!(table1_architectures().len(), 5);
        assert_eq!(table2_architectures().len(), 5);
        assert!(table1_architectures().iter().all(|a| a.starts_with("SP")));
        assert!(table2_architectures().iter().all(|a| a.starts_with("BP")));
    }

    #[test]
    fn small_instance_runs_end_to_end() {
        let config = HarnessConfig {
            widths: vec![4],
            timeout: Duration::from_secs(30),
            max_terms: 500_000,
            cec_conflicts: 100_000,
            archs: None,
        };
        let (cell, report) = run_algebraic("SP-AR-RC", 4, Method::MtLr, &config);
        assert_eq!(cell.status, "ok");
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn table_portfolio_agrees_across_strategies() {
        let config = HarnessConfig {
            widths: vec![4],
            timeout: Duration::from_secs(30),
            max_terms: 500_000,
            cec_conflicts: 100_000,
            archs: None,
        };
        let report = table_portfolio("SP-AR-RC", 4, &config);
        assert_eq!(report.runs.len(), 5);
        for run in &report.runs {
            assert!(
                run.outcome.is_verified(),
                "{} should verify: {:?}",
                run.strategy,
                run.outcome
            );
        }
        assert!(report.get("CEC").is_some());
        assert!(report.verdict().unwrap().is_verified());
    }

    #[test]
    fn bench_records_serialize_to_json() {
        let config = HarnessConfig {
            widths: vec![8],
            timeout: Duration::from_secs(60),
            max_terms: 1_000_000,
            cec_conflicts: 1,
            archs: None,
        };
        let run = StrategyRun {
            strategy: "CEC".to_string(),
            outcome: Outcome::Verified,
            stats: None,
            elapsed: Duration::from_millis(42),
        };
        let record = BenchRecord::from_run("SP-AR-RC", 8, &run, &config);
        // The SAT baseline does not track terms: the term/step counters must
        // serialize as `null`, not as a zero that reads like a measurement.
        assert_eq!(
            record.to_json(),
            "{\"arch\": \"SP-AR-RC\", \"width\": 8, \"strategy\": \"CEC\", \"elapsed_ms\": 42, \"peak_terms\": null, \"substitution_steps\": null, \"index_hits\": null, \"rewrite_steps\": null, \"rewrite_index_hits\": null, \"rewrite_peak_terms\": null, \"rewrite_ms\": null, \"max_terms\": 1000000, \"timeout_ms\": 60000, \"threads\": 1, \"status\": \"ok\"}"
        );
        let mut stats = gbmv_core::RunStats::default();
        stats.reduction.peak_terms = 7;
        stats.reduction.substitutions = 3;
        stats.reduction.index_hits = 11;
        stats.rewrite.substitutions = 5;
        stats.rewrite.index_hits = 13;
        stats.rewrite.peak_terms = 9;
        stats.rewrite.elapsed = Duration::from_millis(6);
        let run = StrategyRun {
            strategy: "MT-LR-IDX".to_string(),
            outcome: Outcome::Verified,
            stats: Some(stats),
            elapsed: Duration::from_millis(42),
        };
        let record = BenchRecord::from_run("SP-AR-RC", 8, &run, &config);
        assert_eq!(
            record.to_json(),
            "{\"arch\": \"SP-AR-RC\", \"width\": 8, \"strategy\": \"MT-LR-IDX\", \"elapsed_ms\": 42, \"peak_terms\": 9, \"substitution_steps\": 3, \"index_hits\": 11, \"rewrite_steps\": 5, \"rewrite_index_hits\": 13, \"rewrite_peak_terms\": 9, \"rewrite_ms\": 6, \"max_terms\": 1000000, \"timeout_ms\": 60000, \"threads\": 1, \"status\": \"ok\"}"
        );
        let dir = std::env::temp_dir().join("gbmv_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        write_bench_json(&path, &[record.clone(), record]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"));
        assert_eq!(text.matches("SP-AR-RC").count(), 2);
        assert!(text.trim_end().ends_with(']'));
    }

    #[test]
    fn env_config_defaults() {
        let config = HarnessConfig::default();
        assert_eq!(config.widths, vec![8, 16]);
        assert!(config.timeout >= Duration::from_secs(1));
        assert_eq!(config.budget().max_terms, config.max_terms);
    }
}
