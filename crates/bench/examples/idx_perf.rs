//! Quick perf probe for one (architecture, width, method) instance:
//! `cargo run --release -p gbmv-bench --example idx_perf -- SP-RT-KS 8 idx`.
//! Methods: `lr` (MT-LR), `idx` (MT-LR-IDX, default), `par` (MT-LR-PAR).
//! Budget comes from the `GBMV_*` environment variables.

use gbmv_bench::{build_architecture, HarnessConfig};
use gbmv_core::{Budget, Method, Outcome, Session, Spec};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arch = args.get(1).map(String::as_str).unwrap_or("SP-RT-KS");
    let width: usize = args.get(2).and_then(|w| w.parse().ok()).unwrap_or(8);
    let method = match args.get(3).map(String::as_str).unwrap_or("idx") {
        "lr" => Method::MtLr,
        "par" => Method::MtLrPar,
        _ => Method::MtLrIdx,
    };
    let config = HarnessConfig::from_env();
    let netlist = build_architecture(arch, width);
    let start = Instant::now();
    let report = Session::extract(&netlist)
        .expect("acyclic")
        .spec(Spec::multiplier(width))
        .strategy(method)
        .budget(Budget {
            max_terms: config.max_terms,
            deadline: Some(config.timeout),
            threads: 0,
        })
        .counterexamples(false)
        .run()
        .expect("interface");
    let elapsed = start.elapsed();
    let s = &report.stats;
    println!(
        "{arch} w{width} {}: {} in {:.1?} (rw {:.1?} red {:.1?}) | peak {} subs {} idx_hits {} cols_retired {} cvm {}",
        report.strategy,
        match report.outcome {
            Outcome::Verified => "ok".to_string(),
            ref o => format!("{o:?}"),
        },
        elapsed,
        s.rewrite.elapsed,
        s.reduction.elapsed,
        s.peak_terms(),
        s.reduction.substitutions,
        s.reduction.index_hits,
        s.reduction.columns_retired,
        s.cancelled_vanishing(),
    );
}
