//! Pluggable phase strategies.
//!
//! The MT algorithm is a pipeline: model extraction, Gröbner basis rewriting
//! (Step 2) and Gröbner basis reduction (Steps 3/4). The rewriting and
//! reduction phases are open for extension through the [`RewriteStrategy`]
//! and [`ReductionStrategy`] traits; the schemes evaluated by the paper
//! (MT, MT-FO, MT-XOR, MT-LR) are provided implementations, and [`Method`]
//! is a thin preset constructor over them. New engines — column-wise spec
//! reduction, alternative substitution orders, parallel output cones — plug
//! in as further implementations without touching the session driver.

use std::time::Duration;

use gbmv_poly::Polynomial;

use crate::budget::{Budget, DeadlineToken};
use crate::model::AlgebraicModel;
use crate::reduction::{GbReduction, ReductionOutcome, ReductionStats};
use crate::rewrite::{
    fanout_rewriting, indexed_logic_reduction_rewriting, logic_reduction_rewriting, xor_rewriting,
    RewriteConfig, RewriteStats,
};
use crate::vanishing::{VanishingRules, VanishingTracker};

/// Everything a phase strategy needs to know about the run it executes in:
/// the resource budget, the shared cancellation token, and the structural
/// vanishing rules in force.
#[derive(Debug, Clone)]
pub struct PhaseContext {
    /// The resource budget of the run.
    pub budget: Budget,
    /// Shared cancellation token; strategies must poll it in their inner
    /// loops (the provided implementations do).
    pub token: DeadlineToken,
    /// The structural vanishing rules of the run.
    pub rules: VanishingRules,
    /// The modulus (in bits) of the run's zero test, when it has one (for a
    /// multiplier, `Some(2 * width)`). Strategies that store canonical
    /// mod-`2^k` coefficients — the indexed rewriter — read it from here;
    /// the session pipeline installs it from the instantiated spec, so
    /// callers constructing a context by hand can leave it `None`.
    pub modulus_bits: Option<u32>,
}

impl Default for PhaseContext {
    fn default() -> Self {
        let budget = Budget::default();
        PhaseContext {
            budget,
            token: budget.token(),
            rules: VanishingRules::default(),
            modulus_bits: None,
        }
    }
}

impl PhaseContext {
    /// The rewrite configuration corresponding to this context (deadline
    /// enforcement delegated to the token).
    pub fn rewrite_config(&self) -> RewriteConfig {
        RewriteConfig {
            rules: self.rules,
            max_terms: self.budget.max_terms,
            timeout: Duration::MAX,
            cancel: self.token.clone(),
        }
    }

    /// A reduction engine honouring this context (deadline enforcement
    /// delegated to the token); `modulus_bits` enables intermediate
    /// `mod 2^k` coefficient dropping.
    pub fn reduction_engine(&self, modulus_bits: Option<u32>) -> GbReduction {
        let mut engine =
            GbReduction::new(self.budget.max_terms, Duration::MAX).with_token(self.token.clone());
        if let Some(k) = modulus_bits {
            engine = engine.with_modulus(k);
        }
        engine
    }
}

/// A Step-2 strategy: rewrites the model in place before the reduction.
///
/// Implementations must poll `ctx.token` in long-running loops and set
/// [`RewriteStats::limit_exceeded`] when they stop early.
pub trait RewriteStrategy: Send + Sync {
    /// Short display name (used in reports and bench records).
    fn name(&self) -> &str;

    /// Rewrites the model in place, returning the pass statistics.
    fn rewrite(&self, model: &mut AlgebraicModel, ctx: &PhaseContext) -> RewriteStats;
}

/// A Step-3/4 strategy: reduces the specification polynomial against the
/// (rewritten) model and returns the remainder.
///
/// Implementations must poll `ctx.token` in their inner loops.
pub trait ReductionStrategy: Send + Sync {
    /// Short display name (used in reports and bench records).
    fn name(&self) -> &str;

    /// Reduces `spec` against `model`, returning the remainder, why the
    /// reduction ended, and its statistics. `modulus_bits` is the modulus of
    /// the zero test (for intermediate coefficient dropping).
    fn reduce(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        modulus_bits: Option<u32>,
        ctx: &PhaseContext,
    ) -> (Polynomial, ReductionOutcome, ReductionStats);
}

/// No rewriting at all (the plain MT baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRewrite;

impl RewriteStrategy for NoRewrite {
    fn name(&self) -> &str {
        "none"
    }

    fn rewrite(&self, _model: &mut AlgebraicModel, _ctx: &PhaseContext) -> RewriteStats {
        RewriteStats::default()
    }
}

/// Fanout rewriting — the MT-FO baseline of Farahmandi & Alizadeh.
#[derive(Debug, Clone, Copy, Default)]
pub struct FanoutRewrite;

impl RewriteStrategy for FanoutRewrite {
    fn name(&self) -> &str {
        "fanout"
    }

    fn rewrite(&self, model: &mut AlgebraicModel, ctx: &PhaseContext) -> RewriteStats {
        fanout_rewriting(model, &ctx.rewrite_config())
    }
}

/// XOR rewriting with the vanishing rules (the first half of MT-LR; the
/// paper's ablation shows it is inefficient on its own).
#[derive(Debug, Clone, Copy, Default)]
pub struct XorRewrite;

impl RewriteStrategy for XorRewrite {
    fn name(&self) -> &str {
        "xor"
    }

    fn rewrite(&self, model: &mut AlgebraicModel, ctx: &PhaseContext) -> RewriteStats {
        xor_rewriting(model, &ctx.rewrite_config())
    }
}

/// Logic reduction rewriting (Algorithm 3): XOR rewriting with the vanishing
/// rules followed by common rewriting — the paper's contribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogicReductionRewrite;

impl RewriteStrategy for LogicReductionRewrite {
    fn name(&self) -> &str {
        "logic-reduction"
    }

    fn rewrite(&self, model: &mut AlgebraicModel, ctx: &PhaseContext) -> RewriteStats {
        logic_reduction_rewriting(model, &ctx.rewrite_config())
    }
}

/// Logic reduction rewriting on the incrementally indexed term store (see
/// [`indexed_logic_reduction_rewriting`]): in-place extraction through the
/// inverted var→term index, vanishing cancellation applied *during* each
/// substitution (the unit-propagation closure by default, the scan
/// tracker's pattern rules — term-for-term identical post-rewrite models
/// to [`LogicReductionRewrite`] modulo coefficient canonicalization — when
/// `VanishingRules::closure` is off), and canonical mod-`2^k` coefficients
/// from [`PhaseContext::modulus_bits`] — the Step 2 of
/// [`Method::MtLrIdx`] and [`Method::MtLrPar`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexedLogicReductionRewrite;

impl RewriteStrategy for IndexedLogicReductionRewrite {
    fn name(&self) -> &str {
        "logic-reduction-indexed"
    }

    fn rewrite(&self, model: &mut AlgebraicModel, ctx: &PhaseContext) -> RewriteStats {
        indexed_logic_reduction_rewriting(model, &ctx.rewrite_config(), ctx.modulus_bits)
    }
}

/// The provided reduction strategy: greedy smallest-growth substitution order
/// (see [`GbReduction::reduce`]), optionally re-applying the structural
/// vanishing rules after every substitution.
#[derive(Debug, Clone, Copy)]
pub struct GreedyReduction {
    /// Apply the vanishing rules during the reduction (required for the
    /// logic-reduction methods; see [`GbReduction::reduce_with_vanishing`]).
    pub vanishing: bool,
}

impl ReductionStrategy for GreedyReduction {
    fn name(&self) -> &str {
        if self.vanishing {
            "greedy+vanishing"
        } else {
            "greedy"
        }
    }

    fn reduce(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        modulus_bits: Option<u32>,
        ctx: &PhaseContext,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let engine = ctx.reduction_engine(modulus_bits);
        if self.vanishing {
            // The gate-function index survives rewriting (only tails change),
            // so the tracker can be built from the rewritten model.
            let mut tracker = VanishingTracker::new(model, ctx.rules);
            engine.reduce_with_vanishing(model, spec, &mut tracker)
        } else {
            engine.reduce(model, spec)
        }
    }
}

/// The verification methods of the paper's tables: presets pairing a
/// [`RewriteStrategy`] with a [`ReductionStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// No rewriting at all; reduce the raw gate-level model.
    MtNaive,
    /// Fanout rewriting — the MT-FO baseline of Farahmandi & Alizadeh \[7\].
    MtFo,
    /// XOR rewriting only (ablation; the paper argues this alone is
    /// inefficient).
    MtXorOnly,
    /// Logic reduction rewriting (XOR + common rewriting with the XOR-AND
    /// vanishing rule) — the paper's contribution.
    MtLr,
    /// MT-LR with both phases on the incremental indexed term store: Step 2
    /// through [`IndexedLogicReductionRewrite`] (in-place extraction,
    /// closure vanishing during substitution, canonical mod-`2^k`
    /// coefficients) and Step 3/4 through the single-threaded
    /// [`crate::IndexedReduction`] engine. Same post-rewrite models (modulo
    /// coefficient canonicalization), remainders and verdicts as MT-LR,
    /// different per-step cost.
    MtLrIdx,
    /// MT-LR with the indexed rewriter ([`IndexedLogicReductionRewrite`],
    /// shared with `MT-LR-IDX`) feeding the parallel output-cone reduction
    /// engine ([`crate::ParallelReduction`]): the Step-3 reduction is
    /// decomposed per (merged) output cone and run on a scoped worker pool
    /// sized by [`crate::Budget::threads`].
    MtLrPar,
}

impl Method {
    /// All methods: the paper's four in table order, then this repo's
    /// indexed and parallel MT-LR variants.
    pub fn all() -> [Method; 6] {
        [
            Method::MtNaive,
            Method::MtFo,
            Method::MtXorOnly,
            Method::MtLr,
            Method::MtLrIdx,
            Method::MtLrPar,
        ]
    }

    /// Short display name matching the paper (`MT-LR-IDX`/`MT-LR-PAR` for
    /// the indexed and parallel engines, which the paper does not have).
    pub fn name(self) -> &'static str {
        match self {
            Method::MtNaive => "MT",
            Method::MtFo => "MT-FO",
            Method::MtXorOnly => "MT-XOR",
            Method::MtLr => "MT-LR",
            Method::MtLrIdx => "MT-LR-IDX",
            Method::MtLrPar => "MT-LR-PAR",
        }
    }

    /// The Step-2 strategy this preset stands for. `MT-LR` keeps the
    /// scan-based rewriter (it doubles as the differential oracle of the
    /// rewrite-equivalence harness); the indexed and parallel presets run
    /// Step 2 on the indexed store.
    pub fn rewrite_strategy(self) -> Box<dyn RewriteStrategy> {
        match self {
            Method::MtNaive => Box::new(NoRewrite),
            Method::MtFo => Box::new(FanoutRewrite),
            Method::MtXorOnly => Box::new(XorRewrite),
            Method::MtLr => Box::new(LogicReductionRewrite),
            Method::MtLrIdx | Method::MtLrPar => Box::new(IndexedLogicReductionRewrite),
        }
    }

    /// The Step-3/4 strategy this preset stands for.
    pub fn reduction_strategy(self) -> Box<dyn ReductionStrategy> {
        match self {
            Method::MtNaive | Method::MtFo => Box::new(GreedyReduction { vanishing: false }),
            Method::MtXorOnly | Method::MtLr => Box::new(GreedyReduction { vanishing: true }),
            Method::MtLrIdx => Box::new(crate::reduction::IndexedReduction::default()),
            Method::MtLrPar => Box::new(crate::parallel::ParallelReduction::default()),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::MtLr.name(), "MT-LR");
        assert_eq!(Method::MtFo.name(), "MT-FO");
        assert_eq!(Method::MtLrIdx.name(), "MT-LR-IDX");
        assert_eq!(Method::MtLrPar.name(), "MT-LR-PAR");
        assert_eq!(Method::all().len(), 6);
        assert_eq!(format!("{}", Method::MtNaive), "MT");
    }

    #[test]
    fn presets_pair_the_paper_strategies() {
        assert_eq!(Method::MtLr.rewrite_strategy().name(), "logic-reduction");
        assert_eq!(Method::MtLr.reduction_strategy().name(), "greedy+vanishing");
        assert_eq!(Method::MtFo.rewrite_strategy().name(), "fanout");
        assert_eq!(Method::MtFo.reduction_strategy().name(), "greedy");
        assert_eq!(Method::MtNaive.rewrite_strategy().name(), "none");
        assert_eq!(Method::MtXorOnly.rewrite_strategy().name(), "xor");
        assert_eq!(
            Method::MtLrIdx.rewrite_strategy().name(),
            "logic-reduction-indexed"
        );
        assert_eq!(
            Method::MtLrIdx.reduction_strategy().name(),
            "indexed+vanishing"
        );
        assert_eq!(
            Method::MtLrPar.rewrite_strategy().name(),
            "logic-reduction-indexed"
        );
        assert_eq!(
            Method::MtLrPar.reduction_strategy().name(),
            "parallel-cones+vanishing"
        );
    }
}
