//! The parallel output-cone verification engine.
//!
//! [`ParallelReduction`] is a [`ReductionStrategy`] that decomposes the
//! Step-3 reduction along the circuit's output cones and runs the pieces on a
//! pool of scoped worker threads sharing one work queue:
//!
//! 1. **Cone decomposition.** Each primary output's backward slice is
//!    computed on the (rewritten) model and cones that overlap beyond a
//!    threshold are merged ([`gbmv_netlist::cone::group_overlapping_cones`]).
//!    Carry-propagate arithmetic merges into one group — splitting
//!    carry-coupled columns forfeits the word-level cancellation between
//!    adjacent output bits and blows up exponentially — while genuinely
//!    independent output clusters become separate work items.
//! 2. **Spec partitioning.** The specification polynomial is split into one
//!    partial per cone group (terms are routed by their output/internal
//!    variables; pure-input terms need no reduction and go to a residual
//!    bucket). Reduction is linear, so reducing the partials independently
//!    and summing the partial remainders yields exactly the remainder of the
//!    whole-spec reduction.
//! 3. **Fused indexed per-cone reduction.** Each partial is reduced by
//!    `FusedReduction`, which keeps the greedy level-restricted
//!    substitution order of [`crate::GbReduction`] but stores the working
//!    remainder in an [`IndexedPolynomial`]: an inverted var→term-handle
//!    index makes each substitution step touch only the terms that actually
//!    mention the substituted variable, coefficients are kept canonical
//!    `mod 2^k` so modular cancellation happens at insert instead of in a
//!    post-step sweep, and terms whose support is fully substituted retire
//!    into an input-only accumulator (the incremental form of column-wise
//!    spec reduction: once no live term mentions a tracked variable reaching
//!    an output column, that column's terms never re-enter the hot path).
//!    Ties in the greedy order are broken toward the lowest output column
//!    (`FusedReduction::column_order`) so low columns retire early.
//!    Vanishing is checked on newly created monomials only, through the
//!    unit-propagation closure index ([`crate::ClosureVanishing`]), which
//!    covers the paper's XOR-AND/NOR patterns as well as deeper
//!    XOR-chain/majority contradictions. For a single giant cone the
//!    expansion of one substitution step is sharded over term ranges across
//!    the worker threads.
//! 4. **Deterministic recombination.** Partial remainders are summed in cone
//!    order. Integer term arithmetic is exact and the cone grouping, the
//!    substitution order within each cone, and the vanishing/modular dropping
//!    are all independent of the thread count, so remainders, verdicts and
//!    counterexamples are bit-identical for any `threads` value. (For
//!    non-definitive stops the outcome *kind* is still thread-independent,
//!    but the `LimitExceeded` term diagnostic may differ: a single worker
//!    stops scheduling cones after the first failure, more workers may
//!    observe several.)
//!
//! All workers poll the session's shared [`DeadlineToken`]; a cancellation or
//! deadline expiry stops every cone at its next polling point and the scoped
//! pool joins before the strategy returns.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use gbmv_netlist::cone::group_overlapping_cones;
use gbmv_poly::{IndexedPolynomial, Int, Monomial, Polynomial, Var};

use crate::budget::DeadlineToken;
use crate::model::AlgebraicModel;
use crate::reduction::{ReductionOutcome, ReductionStats};
use crate::strategy::{PhaseContext, ReductionStrategy};
use crate::vanishing::{ClosureVanishing, VanishScratch};

/// Shard the expansion of one substitution step across threads once it
/// produces at least this many candidate product terms.
const SHARD_MIN_PRODUCTS: usize = 16 * 1024;

/// Poll the cancellation token every this many generated product terms, so
/// even a single multi-second substitution step reacts to cancellation.
const CANCEL_POLL_INTERVAL: usize = 64 * 1024;

/// A [`ReductionStrategy`] running the Gröbner basis reduction per output
/// cone on a scoped worker pool (see the module docs).
///
/// The preset [`crate::Method::MtLrPar`] pairs this engine (with the
/// vanishing rules on) with logic-reduction rewriting; the worker count
/// defaults to the budget's [`crate::Budget::threads`] knob.
///
/// [`crate::Budget::max_terms`] bounds every *individual* intermediate
/// polynomial, exactly as for [`crate::GbReduction`] — so with several
/// disjoint cone jobs in flight the aggregate resident terms can reach
/// `jobs x max_terms` (the same way a [`crate::Portfolio`] race holds one
/// budget per racing strategy). Size `max_terms` for the available memory
/// divided by the expected concurrency when that matters.
#[derive(Debug, Clone, Copy)]
pub struct ParallelReduction {
    /// Apply the structural vanishing rules during the reduction (required
    /// for the logic-reduction methods).
    pub vanishing: bool,
    /// Worker threads; `0` defers to [`crate::Budget::effective_threads`].
    pub threads: usize,
    /// Merge cones sharing at least this fraction of the smaller cone's
    /// variables (see [`gbmv_netlist::cone::DEFAULT_MERGE_OVERLAP`]).
    pub merge_overlap: f64,
}

impl Default for ParallelReduction {
    fn default() -> Self {
        ParallelReduction {
            vanishing: true,
            threads: 0,
            merge_overlap: gbmv_netlist::cone::DEFAULT_MERGE_OVERLAP,
        }
    }
}

impl ParallelReduction {
    /// The default engine with an explicit worker count (`0` = from the
    /// budget).
    pub fn with_threads(threads: usize) -> Self {
        ParallelReduction {
            threads,
            ..ParallelReduction::default()
        }
    }
}

impl ReductionStrategy for ParallelReduction {
    fn name(&self) -> &str {
        if self.vanishing {
            "parallel-cones+vanishing"
        } else {
            "parallel-cones"
        }
    }

    fn reduce(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        modulus_bits: Option<u32>,
        ctx: &PhaseContext,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let start = Instant::now();
        let threads = if self.threads > 0 {
            self.threads
        } else {
            ctx.budget.effective_threads()
        };
        let vanish = self
            .vanishing
            .then(|| ClosureVanishing::new(model, ctx.rules))
            .filter(ClosureVanishing::enabled);

        // Cone decomposition over the (rewritten) model + spec partitioning.
        let groups = cone_groups(model, self.merge_overlap);
        let (mut jobs, residual) = partition_spec(model, spec, &groups);

        // Largest cones first: with more jobs than workers this keeps the
        // critical path short (the classic longest-processing-time schedule).
        let mut schedule: Vec<usize> = (0..jobs.len()).collect();
        schedule.sort_by_key(|&i| std::cmp::Reverse(jobs[i].cone_vars));

        let engine = FusedReduction {
            model,
            vanish: vanish.as_ref(),
            modulus_bits,
            max_terms: ctx.budget.max_terms,
            token: &ctx.token,
            // Threads not consumed by job-level parallelism go to intra-step
            // sharding, so a dominant merged cone still fans out when it is
            // accompanied by small disjoint jobs. (Momentary oversubscription
            // while several sharding jobs overlap is accepted — the OS
            // schedules it — in exchange for not idling workers once the
            // small jobs drain.)
            shard_threads: threads.saturating_sub(jobs.len().saturating_sub(1)).max(1),
            column_order: true,
        };

        let worker_count = threads.min(jobs.len()).max(1);
        if worker_count <= 1 {
            for &i in &schedule {
                let partial = std::mem::take(&mut jobs[i].partial);
                jobs[i].result = Some(engine.reduce(&partial));
                if !matches!(jobs[i].result, Some((_, ReductionOutcome::Completed, _))) {
                    break;
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let slots: Vec<Mutex<Option<JobResult>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            let schedule = &schedule;
            let engine = &engine;
            let job_partials: Vec<Polynomial> = jobs
                .iter_mut()
                .map(|j| std::mem::take(&mut j.partial))
                .collect();
            let job_partials = &job_partials;
            std::thread::scope(|scope| {
                for _ in 0..worker_count {
                    let next = &next;
                    let abort = &abort;
                    let slots = &slots;
                    scope.spawn(move || loop {
                        let k = next.fetch_add(1, Ordering::SeqCst);
                        if k >= schedule.len() || abort.load(Ordering::SeqCst) {
                            break;
                        }
                        let i = schedule[k];
                        let result = engine.reduce(&job_partials[i]);
                        if !matches!(result.1, ReductionOutcome::Completed) {
                            abort.store(true, Ordering::SeqCst);
                        }
                        *slots[i].lock().expect("job slot") = Some(result);
                    });
                }
            });
            for (job, slot) in jobs.iter_mut().zip(slots) {
                job.result = slot.into_inner().expect("job slot");
            }
        }

        // Deterministic recombination in cone order; exact integer sums make
        // the result independent of which worker finished when.
        let mut stats = ReductionStats {
            peak_terms: spec.num_terms(),
            ..ReductionStats::default()
        };
        let mut outcome = ReductionOutcome::Completed;
        let mut combined = residual;
        for job in &jobs {
            match &job.result {
                Some((remainder, job_outcome, job_stats)) => {
                    stats.substitutions += job_stats.substitutions;
                    stats.peak_terms = stats.peak_terms.max(job_stats.peak_terms);
                    stats.cancelled_vanishing += job_stats.cancelled_vanishing;
                    stats.index_hits += job_stats.index_hits;
                    stats.columns_retired += job_stats.columns_retired;
                    merge_outcome(&mut outcome, job_outcome.clone());
                    if matches!(job_outcome, ReductionOutcome::Completed) {
                        for (m, c) in remainder.iter() {
                            combined.add_term(m.clone(), c.clone());
                        }
                    }
                }
                // Scheduled after another cone failed: the run is already
                // non-definitive, the skipped cone contributes no terms.
                None => merge_outcome(&mut outcome, ReductionOutcome::Cancelled),
            }
        }
        if let Some(k) = modulus_bits {
            combined.retain_non_multiples_of_pow2(k);
        }
        stats.peak_terms = stats.peak_terms.max(combined.num_terms());
        if combined.num_terms() > ctx.budget.max_terms {
            outcome = ReductionOutcome::LimitExceeded {
                terms: combined.num_terms(),
            };
        }
        // A cone skipped because of the shared token reports `Cancelled` even
        // when the deadline (not an explicit cancel) fired; normalize like
        // the session driver does.
        if matches!(outcome, ReductionOutcome::Cancelled)
            && !ctx.token.is_cancelled()
            && ctx.token.deadline_expired()
        {
            outcome = ReductionOutcome::TimedOut;
        }
        stats.final_terms = combined.num_terms();
        stats.elapsed = start.elapsed();
        (combined, outcome, stats)
    }
}

pub(crate) type JobResult = (Polynomial, ReductionOutcome, ReductionStats);

/// One cone group's share of the specification.
struct ConeJob {
    /// Number of model variables in the cone (scheduling weight).
    cone_vars: usize,
    /// The spec terms routed to this cone.
    partial: Polynomial,
    result: Option<JobResult>,
}

/// Keeps `LimitExceeded` over cancellation (a genuine divergence must not be
/// masked by a concurrent cancel) and any non-completion over `Completed`;
/// concurrent `LimitExceeded`s keep the largest term count. The outcome
/// *kind* is thread-count-independent for deterministic (term-limit) stops;
/// the `terms` diagnostic can still vary with scheduling, because a
/// single-worker run stops scheduling cones after the first failure while a
/// multi-worker run may observe several.
fn merge_outcome(acc: &mut ReductionOutcome, next: ReductionOutcome) {
    use ReductionOutcome::*;
    match (&mut *acc, next) {
        (LimitExceeded { terms: a }, LimitExceeded { terms: b }) => *a = (*a).max(b),
        (LimitExceeded { .. }, _) => {}
        (_, next @ LimitExceeded { .. }) => *acc = next,
        (Cancelled | TimedOut, _) => {}
        (_, next @ (Cancelled | TimedOut)) => *acc = next,
        _ => {}
    }
}

/// Computes the backward cone of every primary output over the model's tails
/// and merges overlapping cones. Returns, per group, the sorted variable
/// indices of the merged slice.
fn cone_groups(model: &AlgebraicModel, merge_overlap: f64) -> Vec<ConeGroup> {
    let outputs = model.outputs();
    let mut per_output: Vec<Vec<u32>> = Vec::with_capacity(outputs.len());
    for &out in outputs {
        per_output.push(model_cone(model, &[out]));
    }
    let grouping = group_overlapping_cones(&per_output, merge_overlap);
    grouping
        .into_iter()
        .map(|members| {
            let roots: Vec<Var> = members.iter().map(|&i| outputs[i]).collect();
            ConeGroup {
                vars: model_cone(model, &roots),
            }
        })
        .collect()
}

struct ConeGroup {
    /// Sorted variable indices of the merged backward slice.
    vars: Vec<u32>,
}

/// The transitive fan-in of `roots` following the model's (possibly
/// rewritten) tails; sorted variable indices, roots included.
fn model_cone(model: &AlgebraicModel, roots: &[Var]) -> Vec<u32> {
    let mut visited = vec![false; model.var_count()];
    let mut stack: Vec<Var> = roots.to_vec();
    let mut cone = Vec::new();
    while let Some(v) = stack.pop() {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        cone.push(v.0);
        if let Some(tail) = model.tail(v) {
            for u in tail.vars() {
                if !visited[u.index()] {
                    stack.push(u);
                }
            }
        }
    }
    cone.sort_unstable();
    cone
}

/// Splits the spec into per-cone partials plus a residual of pure-input
/// terms. Terms are routed by their first non-input variable; a term whose
/// variables fall outside every cone lands in a catch-all job (reduction is
/// global over the model, so any routing is sound — the cones only shape the
/// parallelism).
fn partition_spec(
    model: &AlgebraicModel,
    spec: &Polynomial,
    groups: &[ConeGroup],
) -> (Vec<ConeJob>, Polynomial) {
    let mut var_to_group: Vec<usize> = vec![usize::MAX; model.var_count()];
    for (g, group) in groups.iter().enumerate().rev() {
        for &v in &group.vars {
            var_to_group[v as usize] = g;
        }
    }
    let mut jobs: Vec<ConeJob> = groups
        .iter()
        .map(|g| ConeJob {
            cone_vars: g.vars.len(),
            partial: Polynomial::zero(),
            result: None,
        })
        .collect();
    let mut residual = Polynomial::zero();
    let mut catch_all: Option<usize> = None;
    for (m, c) in spec.iter() {
        match m.vars().find(|&v| !model.is_input(v)) {
            None => residual.add_term(m.clone(), c.clone()),
            Some(v) => {
                let g = var_to_group[v.index()];
                let g = if g != usize::MAX {
                    g
                } else {
                    *catch_all.get_or_insert_with(|| {
                        jobs.push(ConeJob {
                            cone_vars: 0,
                            partial: Polynomial::zero(),
                            result: None,
                        });
                        jobs.len() - 1
                    })
                };
                jobs[g].partial.add_term(m.clone(), c.clone());
            }
        }
    }
    jobs.retain(|j| !j.partial.is_zero());
    (jobs, residual)
}

/// The fused incremental reduction engine shared by [`ParallelReduction`]
/// (per cone group) and [`crate::reduction::IndexedReduction`] (whole spec):
/// greedy level-restricted substitution order (identical candidate rule to
/// [`crate::GbReduction`], optionally tie-broken toward the lowest output
/// column), an [`IndexedPolynomial`] working remainder whose inverted
/// var→term index makes each step touch only the affected terms, canonical
/// `mod 2^k` coefficients (modular cancellation at insert, no post-step
/// sweep), retirement of fully-substituted (input-only) terms out of the hot
/// path, closure-based vanishing checks on newly created monomials only, and
/// optional term-range sharding of the expansion across scoped threads.
pub(crate) struct FusedReduction<'a> {
    pub(crate) model: &'a AlgebraicModel,
    pub(crate) vanish: Option<&'a ClosureVanishing>,
    pub(crate) modulus_bits: Option<u32>,
    pub(crate) max_terms: usize,
    pub(crate) token: &'a DeadlineToken,
    pub(crate) shard_threads: usize,
    /// Break greedy ties toward the variable reaching the lowest output
    /// column, so low columns lose their support (and retire their terms)
    /// early. Any tie-break yields the same final remainder — the rewritten
    /// model stays a Gröbner basis, so the normal form is order-independent.
    pub(crate) column_order: bool,
}

impl FusedReduction<'_> {
    pub(crate) fn reduce(&self, partial: &Polynomial) -> JobResult {
        let model = self.model;
        let mut stats = ReductionStats::default();
        let mut scratch = self.vanish.map(ClosureVanishing::scratch);

        // The vanishing rules are applied to the incoming partial once;
        // afterwards only newly created monomials can vanish (the property is
        // static per monomial), so surviving terms are never re-checked.
        let mut initial = partial.clone();
        if let (Some(van), Some(s)) = (self.vanish, scratch.as_mut()) {
            stats.cancelled_vanishing += initial.retain_terms(|m| !van.vanishes(m, s)) as u64;
        }

        // The substitutable variables: everything with a model tail. Inputs
        // and tail-less variables are never substituted, so terms made only
        // of those retire out of the indexed hot path.
        let tracked: Vec<bool> = (0..model.var_count())
            .map(|i| {
                let v = Var(i as u32);
                !model.is_input(v) && model.tail(v).is_some()
            })
            .collect();

        // Ingest into the indexed store: coefficients become canonical
        // `mod 2^k` (multiples of `2^k` cancel at insert — the incremental
        // form of the old post-step drop sweep), occurrence counts and the
        // inverted index are maintained from here on by the store itself.
        let mut r = IndexedPolynomial::from_polynomial(&initial, tracked, self.modulus_bits);
        drop(initial);
        stats.peak_terms = r.num_terms();

        // Column retirement accounting: a column is "active" while some live
        // term mentions a tracked variable reaching it, and "retires" when it
        // loses its last such occurrence — from then on all of its terms are
        // input-only and sit in the inert accumulator, outside the indexed
        // hot path. The active mask is recomputed during the candidate scan
        // (which already walks every occurrence count).
        let mut active_cols = 0u64;
        for (i, &occ) in r.occurrence_counts().iter().enumerate() {
            if occ > 0 {
                active_cols |= model.column_mask(Var(i as u32));
            }
        }
        let mut retired_cols = 0u64;
        let trace = std::env::var("GBMV_TRACE_RED").is_ok_and(|v| v == "1");

        let done = |r: IndexedPolynomial, outcome: ReductionOutcome, mut stats: ReductionStats| {
            stats.index_hits = r.index_hits();
            stats.final_terms = r.num_terms();
            (r.into_polynomial(), outcome, stats)
        };

        loop {
            // Candidate selection — the same rule as `GbReduction`: among the
            // variables of the highest present logic level, the smallest
            // estimated growth `occurrences x (tail size - 1)`, tie-broken by
            // variable index; with `column_order` the column weight ranks
            // before the growth estimate.
            let mut best: Option<(usize, u32, usize, u32)> = None; // (level, colw, growth, idx)
            let mut next_active = 0u64;
            for (i, &occ) in r.occurrence_counts().iter().enumerate() {
                if occ == 0 {
                    continue;
                }
                let v = Var(i as u32);
                let level = model.level(v);
                let mask = model.column_mask(v);
                next_active |= mask;
                let colw = if self.column_order && mask != 0 {
                    63 - mask.leading_zeros()
                } else {
                    0
                };
                let tail_terms = model.tail(v).map(Polynomial::num_terms).unwrap_or(0);
                let growth = occ as usize * tail_terms.saturating_sub(1);
                let replace = match best {
                    None => true,
                    Some((bl, bc, bg, bi)) => {
                        level > bl || (level == bl && (colw, growth, v.0) < (bc, bg, bi))
                    }
                };
                if replace {
                    best = Some((level, colw, growth, v.0));
                }
            }
            let newly_retired = active_cols & !next_active & !retired_cols;
            stats.columns_retired += newly_retired.count_ones() as usize;
            retired_cols |= newly_retired;
            active_cols = next_active;
            let v = match best {
                Some((_, _, _, idx)) => Var(idx),
                None => break,
            };

            // In-place substitution through the inverted index: only the
            // terms actually containing `v` are touched.
            let tail = model.tail(v).expect("candidate has a tail");
            let extracted = r.extract_terms_containing(v);
            if trace {
                eprintln!(
                    "red step {} var {} level {} occ {} tail {} store {}",
                    stats.substitutions,
                    model.name(v),
                    model.level(v),
                    extracted.len(),
                    tail.num_terms(),
                    r.num_terms(),
                );
            }

            let products = extracted.len() * tail.num_terms();
            let cancelled = if self.shard_threads > 1 && products >= SHARD_MIN_PRODUCTS {
                self.expand_sharded(&mut r, &extracted, tail, v)
            } else {
                self.expand_serial(&mut r, &extracted, tail, v, scratch.as_mut())
            };
            let cancelled = match cancelled {
                Some(c) => c,
                None => return done(r, ReductionOutcome::Cancelled, stats),
            };
            stats.cancelled_vanishing += cancelled;
            stats.substitutions += 1;

            stats.peak_terms = stats.peak_terms.max(r.num_terms());
            if r.num_terms() > self.max_terms {
                let outcome = ReductionOutcome::LimitExceeded {
                    terms: stats.peak_terms,
                };
                return done(r, outcome, stats);
            }
            if self.token.is_cancelled() {
                return done(r, ReductionOutcome::Cancelled, stats);
            }
            if self.token.deadline_expired() {
                return done(r, ReductionOutcome::TimedOut, stats);
            }
        }
        done(r, ReductionOutcome::Completed, stats)
    }

    /// Expands `extracted x tail` into `r`, checking the vanishing rules on
    /// each product before it is materialized (when the extracted term's
    /// `rest` already vanishes on its own, the whole tail expansion is
    /// skipped). Returns the number of cancelled (vanishing) products, or
    /// `None` when the token fired mid-step.
    fn expand_serial(
        &self,
        r: &mut IndexedPolynomial,
        extracted: &[(Monomial, Int)],
        tail: &Polynomial,
        v: Var,
        mut scratch: Option<&mut VanishScratch>,
    ) -> Option<u64> {
        let mut cancelled = 0u64;
        let mut since_poll = 0usize;
        for (m, c) in extracted {
            let rest = m.without(v);
            if let (Some(van), Some(s)) = (self.vanish, scratch.as_deref_mut()) {
                if van.set_rest(&rest, s) {
                    cancelled += tail.num_terms() as u64;
                    continue;
                }
            }
            for (tm, tc) in tail.iter() {
                since_poll += 1;
                if since_poll >= CANCEL_POLL_INTERVAL {
                    since_poll = 0;
                    if self.token.expired() {
                        return None;
                    }
                }
                if let (Some(van), Some(s)) = (self.vanish, scratch.as_deref_mut()) {
                    if van.rest_union_vanishes(tm, s) {
                        cancelled += 1;
                        continue;
                    }
                }
                r.add_term(tm.mul(&rest), tc * c);
            }
        }
        Some(cancelled)
    }

    /// The sharded variant for the single-giant-cone case: the extracted
    /// terms are split into ranges, each worker expands its range into a
    /// private exact partial (with its own vanishing scratch), and the
    /// partials are folded into `r` afterwards. Addition is exact and
    /// commutative and the canonical `mod 2^k` residue of an exact sum
    /// equals the residue of the canonical sum, so the resulting term table
    /// (and hence the maintained occurrence counts) is bit-identical to the
    /// serial expansion.
    fn expand_sharded(
        &self,
        r: &mut IndexedPolynomial,
        extracted: &[(Monomial, Int)],
        tail: &Polynomial,
        v: Var,
    ) -> Option<u64> {
        let shards = self.shard_threads.min(extracted.len()).max(1);
        let chunk = extracted.len().div_ceil(shards);
        let results: Vec<Option<(Polynomial, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = extracted
                .chunks(chunk)
                .map(|range| {
                    scope.spawn(move || {
                        let mut scratch = self.vanish.map(ClosureVanishing::scratch);
                        let mut local = Polynomial::zero();
                        let mut cancelled = 0u64;
                        let mut since_poll = 0usize;
                        for (m, c) in range {
                            let rest = m.without(v);
                            if let (Some(van), Some(s)) = (self.vanish, scratch.as_mut()) {
                                if van.set_rest(&rest, s) {
                                    cancelled += tail.num_terms() as u64;
                                    continue;
                                }
                            }
                            for (tm, tc) in tail.iter() {
                                since_poll += 1;
                                if since_poll >= CANCEL_POLL_INTERVAL {
                                    since_poll = 0;
                                    if self.token.expired() {
                                        return None;
                                    }
                                }
                                if let (Some(van), Some(s)) = (self.vanish, scratch.as_mut()) {
                                    if van.rest_union_vanishes(tm, s) {
                                        cancelled += 1;
                                        continue;
                                    }
                                }
                                local.add_term(tm.mul(&rest), tc * c);
                            }
                        }
                        Some((local, cancelled))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker"))
                .collect()
        });
        let mut cancelled = 0u64;
        for result in results {
            let (local, local_cancelled) = result?;
            cancelled += local_cancelled;
            for (m, c) in local.iter() {
                r.add_term(m.clone(), c.clone());
            }
        }
        Some(cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::reduction::GbReduction;
    use crate::spec::Spec;
    use crate::vanishing::VanishingRules;
    use gbmv_genmul::MultiplierSpec;

    fn context(budget: Budget) -> PhaseContext {
        PhaseContext {
            budget,
            token: budget.token(),
            rules: VanishingRules::default(),
            modulus_bits: None,
        }
    }

    fn model_and_spec(arch: &str, width: usize) -> (AlgebraicModel, Polynomial, Option<u32>) {
        let nl = MultiplierSpec::parse(arch, width).unwrap().build();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let (spec, modulus) = Spec::multiplier(width).instantiate(&model).unwrap();
        (model, spec, modulus)
    }

    #[test]
    fn matches_greedy_engine_remainder_mod_2k() {
        let (model, spec, modulus) = model_and_spec("SP-WT-CL", 4);
        let k = modulus.unwrap();
        let ctx = context(Budget::default());
        let engine = ctx.reduction_engine(modulus);
        let (greedy, outcome, _) = engine.reduce(&model, &spec);
        assert!(outcome.is_completed());
        for threads in [1, 2, 8] {
            let par = ParallelReduction::with_threads(threads);
            let (r, outcome, stats) = par.reduce(&model, &spec, modulus, &ctx);
            assert!(outcome.is_completed(), "{threads} threads: {outcome:?}");
            assert_eq!(
                r.mod_coeffs_pow2(k),
                greedy.mod_coeffs_pow2(k),
                "{threads} threads must reproduce the greedy remainder"
            );
            assert!(stats.substitutions > 0);
            assert!(stats.index_hits > 0, "indexed extraction must be exercised");
        }
    }

    #[test]
    fn occurrence_counts_survive_a_full_reduction() {
        // A correct multiplier reduces to a zero remainder, which exercises
        // every incremental count-update path (insert, cancel, mod-drop,
        // vanishing skip) and ends with all counts back at zero — the loop
        // only terminates when no tracked variable is left.
        let (model, spec, modulus) = model_and_spec("SP-CT-BK", 4);
        let ctx = context(Budget::default());
        let par = ParallelReduction::default();
        let (r, outcome, stats) = par.reduce(&model, &spec, modulus, &ctx);
        assert!(outcome.is_completed());
        assert!(r.is_zero(), "correct multiplier must verify");
        assert!(stats.cancelled_vanishing > 0);
        assert!(
            stats.columns_retired > 0,
            "a completed reduction substitutes every cone's support"
        );
    }

    #[test]
    fn term_limit_is_reported() {
        let (model, spec, modulus) = model_and_spec("SP-WT-KS", 6);
        let ctx = context(Budget::default().with_max_terms(50));
        let par = ParallelReduction::default();
        let (_, outcome, stats) = par.reduce(&model, &spec, modulus, &ctx);
        assert!(matches!(outcome, ReductionOutcome::LimitExceeded { .. }));
        assert!(stats.peak_terms > 50);
    }

    #[test]
    fn cancelled_token_stops_the_engine() {
        let (model, spec, modulus) = model_and_spec("SP-WT-CL", 4);
        let budget = Budget::default();
        let token = DeadlineToken::new();
        token.cancel();
        let ctx = PhaseContext {
            budget,
            token,
            rules: VanishingRules::default(),
            modulus_bits: None,
        };
        let par = ParallelReduction::default();
        let (_, outcome, _) = par.reduce(&model, &spec, modulus, &ctx);
        assert_eq!(outcome, ReductionOutcome::Cancelled);
    }

    #[test]
    fn adder_exact_remainder_matches_greedy() {
        // No modulus: the partial sums are exact, so the combined remainder
        // must equal the greedy engine's bit for bit.
        let nl = gbmv_genmul::build_adder(6, gbmv_genmul::AdderKind::KoggeStone, false);
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let (spec, modulus) = Spec::adder(6).instantiate(&model).unwrap();
        assert_eq!(modulus, None);
        let ctx = context(Budget::default());
        let (greedy, outcome, _) =
            GbReduction::new(10_000_000, std::time::Duration::MAX).reduce(&model, &spec);
        assert!(outcome.is_completed());
        for threads in [1, 4] {
            let par = ParallelReduction::with_threads(threads);
            let (r, outcome, _) = par.reduce(&model, &spec, None, &ctx);
            assert!(outcome.is_completed());
            assert_eq!(r, greedy);
        }
    }
}
