//! The portfolio driver: several strategies against one extracted model.
//!
//! A [`Portfolio`] extracts the algebraic model of a netlist once and runs
//! multiple strategies — [`Method`] presets, custom strategy pairs, and the
//! SAT miter baseline behind the same surface — against the same
//! specification. Two execution modes are provided:
//!
//! * [`Portfolio::run_all`] runs every strategy to completion sequentially —
//!   what the paper's comparison tables need (per-strategy wall-clock and
//!   verdicts).
//! * [`Portfolio::race`] runs all strategies concurrently on threads sharing
//!   one [`crate::DeadlineToken`]; the first definitive verdict cancels the
//!   others (first-winner semantics) — what a user who just wants an answer
//!   needs.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use gbmv_netlist::Netlist;
use gbmv_poly::Polynomial;
use gbmv_sat::{check_against_product_with, EquivalenceResult};

use crate::budget::{Budget, DeadlineToken};
use crate::counterexample::ground_assignment;
use crate::model::{AlgebraicModel, ExtractError};
use crate::session::{run_pipeline, CexContext, Outcome, Phase, Progress, RunStats, SessionError};
use crate::spec::Spec;
use crate::strategy::{Method, PhaseContext, ReductionStrategy, RewriteStrategy};
use crate::vanishing::VanishingRules;

enum EntryKind {
    Algebraic {
        rewrite: Box<dyn RewriteStrategy>,
        reduction: Box<dyn ReductionStrategy>,
    },
    SatMiter {
        conflict_budget: Option<u64>,
    },
}

struct PortfolioEntry {
    name: String,
    kind: EntryKind,
}

/// The result of one strategy inside a portfolio run.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Display name of the strategy (e.g. `MT-LR`, `CEC`).
    pub strategy: String,
    /// The strategy's verdict ([`Outcome::Cancelled`] for race losers that
    /// were stopped early).
    pub outcome: Outcome,
    /// Detailed statistics (`None` for the SAT baseline).
    pub stats: Option<RunStats>,
    /// Wall-clock time this strategy ran.
    pub elapsed: Duration,
}

/// The result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Per-strategy results, in the order the strategies were added.
    pub runs: Vec<StrategyRun>,
    winner: Option<usize>,
}

impl PortfolioReport {
    /// The winning run: the first strategy to reach a definitive verdict
    /// (race mode), or the fastest definitive strategy (run-all mode).
    pub fn winner(&self) -> Option<&StrategyRun> {
        self.winner.map(|i| &self.runs[i])
    }

    /// The portfolio's verdict: the winner's outcome, if any strategy
    /// reached one.
    pub fn verdict(&self) -> Option<&Outcome> {
        self.winner().map(|run| &run.outcome)
    }

    /// The run of the strategy named `strategy`, if present.
    pub fn get(&self, strategy: &str) -> Option<&StrategyRun> {
        self.runs.iter().find(|run| run.strategy == strategy)
    }
}

/// A portfolio of verification strategies sharing one extracted model (see
/// the module docs).
///
/// ```
/// use gbmv_core::{Method, Portfolio, Spec};
/// use gbmv_genmul::MultiplierSpec;
///
/// let netlist = MultiplierSpec::parse("SP-AR-RC", 4).unwrap().build();
/// let report = Portfolio::extract(&netlist)?
///     .spec(Spec::multiplier(4))
///     .method(Method::MtLr)
///     .sat_baseline(Some(100_000))
///     .run_all()?;
/// assert!(report.verdict().unwrap().is_verified());
/// assert_eq!(report.runs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Portfolio {
    netlist: Netlist,
    model: AlgebraicModel,
    input_names: Vec<String>,
    spec: Option<Spec>,
    rules: VanishingRules,
    budget: Budget,
    counterexamples: bool,
    entries: Vec<PortfolioEntry>,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field("spec", &self.spec.as_ref().map(Spec::name))
            .field(
                "strategies",
                &self
                    .entries
                    .iter()
                    .map(|e| e.name.clone())
                    .collect::<Vec<_>>(),
            )
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Portfolio {
    /// Extracts the algebraic model of the netlist once for all strategies.
    /// The netlist is retained (cloned) for the SAT miter baseline.
    pub fn extract(netlist: &Netlist) -> Result<Portfolio, ExtractError> {
        let (model, input_names) = crate::session::extract_model(netlist)?;
        Ok(Portfolio {
            netlist: netlist.clone(),
            model,
            input_names,
            spec: None,
            rules: VanishingRules::default(),
            budget: Budget::default(),
            counterexamples: true,
            entries: Vec::new(),
        })
    }

    /// Sets the specification all strategies verify against.
    pub fn spec(mut self, spec: Spec) -> Portfolio {
        self.spec = Some(spec);
        self
    }

    /// Sets the per-strategy resource budget.
    pub fn budget(mut self, budget: Budget) -> Portfolio {
        self.budget = budget;
        self
    }

    /// Sets the structural vanishing rules for the algebraic strategies.
    pub fn rules(mut self, rules: VanishingRules) -> Portfolio {
        self.rules = rules;
        self
    }

    /// Enables or disables the counterexample search on mismatch (on by
    /// default; benchmark harnesses turn it off to keep `FAIL` cells cheap).
    pub fn counterexamples(mut self, enabled: bool) -> Portfolio {
        self.counterexamples = enabled;
        self
    }

    /// Adds one of the paper's preset methods as a strategy.
    pub fn method(mut self, method: Method) -> Portfolio {
        self.entries.push(PortfolioEntry {
            name: method.name().to_string(),
            kind: EntryKind::Algebraic {
                rewrite: method.rewrite_strategy(),
                reduction: method.reduction_strategy(),
            },
        });
        self
    }

    /// Adds a custom rewrite/reduction strategy pair under a display name.
    pub fn strategy(
        mut self,
        name: impl Into<String>,
        rewrite: impl RewriteStrategy + 'static,
        reduction: impl ReductionStrategy + 'static,
    ) -> Portfolio {
        self.entries.push(PortfolioEntry {
            name: name.into(),
            kind: EntryKind::Algebraic {
                rewrite: Box::new(rewrite),
                reduction: Box::new(reduction),
            },
        });
        self
    }

    /// Adds the SAT miter baseline (named `CEC`): the netlist is checked
    /// against a golden array multiplier with the given conflict budget.
    /// Requires an unsigned multiplier [`Spec`].
    pub fn sat_baseline(mut self, conflict_budget: Option<u64>) -> Portfolio {
        self.entries.push(PortfolioEntry {
            name: "CEC".to_string(),
            kind: EntryKind::SatMiter { conflict_budget },
        });
        self
    }

    /// The display names of the added strategies, in order.
    pub fn strategy_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    fn prepared(&self) -> Result<(Spec, Polynomial, Option<u32>), SessionError> {
        let spec = self.spec.clone().ok_or(SessionError::MissingSpec)?;
        if self.entries.is_empty() {
            return Err(SessionError::NoStrategies);
        }
        let (poly, modulus_bits) = spec.instantiate(&self.model)?;
        let needs_sat = self
            .entries
            .iter()
            .any(|e| matches!(e.kind, EntryKind::SatMiter { .. }));
        if needs_sat && spec.unsigned_multiplier_width().is_none() {
            return Err(SessionError::SatBaselineUnsupported { spec: spec.name() });
        }
        Ok((spec, poly, modulus_bits))
    }

    fn execute(
        &self,
        entry: &PortfolioEntry,
        spec: &Spec,
        spec_poly: &Polynomial,
        modulus_bits: Option<u32>,
        token: DeadlineToken,
    ) -> StrategyRun {
        let start = Instant::now();
        match &entry.kind {
            EntryKind::Algebraic { rewrite, reduction } => {
                let ctx = PhaseContext {
                    budget: self.budget,
                    token,
                    rules: self.rules,
                    modulus_bits,
                };
                let cex_ctx = CexContext {
                    model: &self.model,
                    input_names: &self.input_names,
                    spec: Some(spec),
                };
                let mut noop = |_: &Progress| {};
                let report = run_pipeline(
                    entry.name.clone(),
                    &self.model,
                    spec_poly,
                    modulus_bits,
                    rewrite.as_ref(),
                    reduction.as_ref(),
                    &ctx,
                    self.counterexamples.then_some(&cex_ctx),
                    &mut noop,
                );
                StrategyRun {
                    strategy: entry.name.clone(),
                    outcome: report.outcome,
                    stats: Some(report.stats),
                    elapsed: start.elapsed(),
                }
            }
            EntryKind::SatMiter { conflict_budget } => {
                let width = spec
                    .unsigned_multiplier_width()
                    .expect("validated by prepared()");
                let result =
                    check_against_product_with(&self.netlist, width, *conflict_budget, &|| {
                        token.expired()
                    });
                let outcome = match result {
                    EquivalenceResult::Equivalent => Outcome::Verified,
                    EquivalenceResult::NotEquivalent(pattern) => Outcome::Mismatch {
                        remainder_terms: 0,
                        counterexample: self.counterexamples.then(|| {
                            ground_assignment(&self.model, &self.input_names, Some(spec), &pattern)
                        }),
                    },
                    EquivalenceResult::Unknown => {
                        if token.is_cancelled() {
                            Outcome::Cancelled
                        } else {
                            Outcome::ResourceLimit { phase: Phase::Sat }
                        }
                    }
                };
                StrategyRun {
                    strategy: entry.name.clone(),
                    outcome,
                    stats: None,
                    elapsed: start.elapsed(),
                }
            }
        }
    }

    /// Runs every strategy to completion, sequentially and independently
    /// (each with its own deadline token). The report's winner is the fastest
    /// strategy with a definitive verdict.
    pub fn run_all(&self) -> Result<PortfolioReport, SessionError> {
        let (spec, spec_poly, modulus_bits) = self.prepared()?;
        let runs: Vec<StrategyRun> = self
            .entries
            .iter()
            .map(|entry| self.execute(entry, &spec, &spec_poly, modulus_bits, self.budget.token()))
            .collect();
        let winner = runs
            .iter()
            .enumerate()
            .filter(|(_, run)| run.outcome.is_definitive())
            .min_by_key(|(_, run)| run.elapsed)
            .map(|(i, _)| i);
        Ok(PortfolioReport { runs, winner })
    }

    /// Races all strategies concurrently on threads sharing one deadline
    /// token: the first definitive verdict cancels the rest, which report
    /// [`Outcome::Cancelled`]. The report's winner is the first strategy to
    /// finish with a definitive verdict.
    pub fn race(&self) -> Result<PortfolioReport, SessionError> {
        let (spec, spec_poly, modulus_bits) = self.prepared()?;
        let token = self.budget.token();
        let slots: Vec<Mutex<Option<(StrategyRun, Instant)>>> =
            self.entries.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (entry, slot) in self.entries.iter().zip(&slots) {
                let token = token.clone();
                let spec = &spec;
                let spec_poly = &spec_poly;
                let this = &*self;
                scope.spawn(move || {
                    let run = this.execute(entry, spec, spec_poly, modulus_bits, token.clone());
                    if run.outcome.is_definitive() {
                        token.cancel();
                    }
                    *slot.lock().expect("result slot") = Some((run, Instant::now()));
                });
            }
        });
        let mut runs = Vec::with_capacity(slots.len());
        let mut winner: Option<(usize, Instant)> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            let (run, finished_at) = slot
                .into_inner()
                .expect("result slot")
                .expect("every thread stores its result");
            if run.outcome.is_definitive() && winner.is_none_or(|(_, best)| finished_at < best) {
                winner = Some((i, finished_at));
            }
            runs.push(run);
        }
        Ok(PortfolioReport {
            runs,
            winner: winner.map(|(i, _)| i),
        })
    }
}
