//! First-class specifications.
//!
//! A [`Spec`] describes *what* a circuit is supposed to compute, independently
//! of any particular netlist: an unsigned or signed (two's-complement)
//! multiplier, an adder with or without carry-in, or an arbitrary user
//! polynomial. A session [instantiates](Spec::instantiate) the spec against an
//! extracted model, which binds the abstract word-level definition to the
//! concrete input/output bit variables — fallibly, so an interface mismatch is
//! an error value instead of a panic.

use gbmv_poly::{spec as polyspec, Int, Monomial, Polynomial, Var};

use crate::model::AlgebraicModel;

/// Why a specification could not be instantiated against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The circuit interface does not match the specification.
    InterfaceMismatch {
        /// The specification's display name.
        spec: String,
        /// What the specification expects vs. what the netlist provides.
        detail: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::InterfaceMismatch { spec, detail } => {
                write!(
                    f,
                    "specification `{spec}` does not fit the netlist: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[derive(Debug, Clone)]
enum SpecKind {
    UnsignedMultiplier { width: usize },
    SignedMultiplier { width: usize },
    Adder { width: usize, carry_in: bool },
    Custom { name: String, poly: Polynomial },
}

/// A word-level specification, instantiated against a model by a
/// [`crate::Session`].
///
/// The built-in constructors assume the interface conventions of
/// `gbmv_genmul`: operand `a` bits first, then operand `b` bits (then the
/// carry-in, if any) as primary inputs, and the result bits in ascending
/// weight order as primary outputs.
#[derive(Debug, Clone)]
pub struct Spec {
    kind: SpecKind,
    /// `Some(k)`: check the remainder modulo `2^k`; `None`: exact. Default
    /// derived from the kind, overridable with [`Spec::with_modulus_bits`].
    modulus_override: Option<Option<u32>>,
}

impl Spec {
    /// The unsigned `width x width` multiplier specification
    /// `sum 2^i s_i = (sum 2^i a_i)(sum 2^i b_i)  mod 2^(2*width)`.
    pub fn multiplier(width: usize) -> Spec {
        Spec {
            kind: SpecKind::UnsignedMultiplier { width },
            modulus_override: None,
        }
    }

    /// The signed (two's-complement) `width x width` multiplier specification:
    /// both operands and the `2*width`-bit product are interpreted in two's
    /// complement, checked modulo `2^(2*width)`.
    pub fn signed_multiplier(width: usize) -> Spec {
        Spec {
            kind: SpecKind::SignedMultiplier { width },
            modulus_override: None,
        }
    }

    /// The unsigned `width`-bit adder specification with `width + 1` outputs
    /// (sum bits then carry-out) and no carry-in.
    pub fn adder(width: usize) -> Spec {
        Spec {
            kind: SpecKind::Adder {
                width,
                carry_in: false,
            },
            modulus_override: None,
        }
    }

    /// Like [`Spec::adder`], with a carry-in as the last primary input.
    pub fn adder_with_carry_in(width: usize) -> Spec {
        Spec {
            kind: SpecKind::Adder {
                width,
                carry_in: true,
            },
            modulus_override: None,
        }
    }

    /// An arbitrary user specification polynomial over the model's variables.
    /// The circuit is correct iff the polynomial reduces to zero (modulo
    /// `2^k` if set via [`Spec::with_modulus_bits`]).
    pub fn polynomial(name: impl Into<String>, poly: Polynomial) -> Spec {
        Spec {
            kind: SpecKind::Custom {
                name: name.into(),
                poly,
            },
            modulus_override: Some(None),
        }
    }

    /// Overrides the modulus of the zero test: `Some(k)` checks the remainder
    /// modulo `2^k`, `None` demands an exactly-zero remainder. The default is
    /// `2^(2*width)` for multipliers and exact for adders and custom
    /// polynomials.
    pub fn with_modulus_bits(mut self, bits: Option<u32>) -> Spec {
        self.modulus_override = Some(bits);
        self
    }

    /// A short display name (e.g. `mul8u`, `mul4s`, `add6+cin`).
    pub fn name(&self) -> String {
        match &self.kind {
            SpecKind::UnsignedMultiplier { width } => format!("mul{width}u"),
            SpecKind::SignedMultiplier { width } => format!("mul{width}s"),
            SpecKind::Adder { width, carry_in } => {
                format!("add{width}{}", if *carry_in { "+cin" } else { "" })
            }
            SpecKind::Custom { name, .. } => name.clone(),
        }
    }

    /// The operand width if this is an unsigned multiplier specification
    /// (what the SAT miter baseline of a portfolio supports).
    pub(crate) fn unsigned_multiplier_width(&self) -> Option<usize> {
        match self.kind {
            SpecKind::UnsignedMultiplier { width } => Some(width),
            _ => None,
        }
    }

    /// The modulus of the zero test for this specification (see
    /// [`Spec::with_modulus_bits`]).
    pub fn modulus_bits(&self) -> Option<u32> {
        if let Some(over) = self.modulus_override {
            return over;
        }
        match self.kind {
            SpecKind::UnsignedMultiplier { width } | SpecKind::SignedMultiplier { width } => {
                Some(2 * width as u32)
            }
            SpecKind::Adder { .. } => None,
            SpecKind::Custom { .. } => None,
        }
    }

    /// Binds the specification to a concrete model, producing the
    /// specification polynomial over the model's input/output variables and
    /// the modulus of the zero test.
    ///
    /// Fails with [`SpecError::InterfaceMismatch`] when the model's interface
    /// does not have the expected shape.
    pub fn instantiate(
        &self,
        model: &AlgebraicModel,
    ) -> Result<(Polynomial, Option<u32>), SpecError> {
        let inputs = model.inputs();
        let outputs = model.outputs();
        let mismatch = |detail: String| SpecError::InterfaceMismatch {
            spec: self.name(),
            detail,
        };
        let poly = match &self.kind {
            SpecKind::UnsignedMultiplier { width } | SpecKind::SignedMultiplier { width } => {
                let signed = matches!(self.kind, SpecKind::SignedMultiplier { .. });
                if inputs.len() != 2 * width || outputs.len() != 2 * width {
                    return Err(mismatch(format!(
                        "expected {} inputs and {} outputs, netlist has {} and {}",
                        2 * width,
                        2 * width,
                        inputs.len(),
                        outputs.len()
                    )));
                }
                let a = &inputs[..*width];
                let b = &inputs[*width..];
                if signed {
                    let pa = signed_weighted_sum(a);
                    let pb = signed_weighted_sum(b);
                    &polyspec::weighted_sum(outputs, true) + &(&pa * &pb)
                } else {
                    polyspec::multiplier_spec(a, b, outputs)
                }
            }
            SpecKind::Adder { width, carry_in } => {
                let expected_inputs = 2 * width + usize::from(*carry_in);
                if inputs.len() != expected_inputs || outputs.len() != width + 1 {
                    return Err(mismatch(format!(
                        "expected {} inputs and {} outputs, netlist has {} and {}",
                        expected_inputs,
                        width + 1,
                        inputs.len(),
                        outputs.len()
                    )));
                }
                let a = &inputs[..*width];
                let b = &inputs[*width..2 * width];
                let cin = carry_in.then(|| inputs[2 * width]);
                polyspec::adder_spec(a, b, outputs, cin)
            }
            SpecKind::Custom { poly, .. } => poly.clone(),
        };
        Ok((poly, self.modulus_bits()))
    }

    /// The operand words of this specification under a concrete input
    /// assignment (`inputs` in declaration order), as `(label, value)` pairs —
    /// e.g. `[("a", 3), ("b", 5)]`. Empty for custom polynomial specs and for
    /// interfaces wider than 128 bits per operand.
    pub(crate) fn operand_words(&self, inputs: &[bool]) -> Vec<(String, u128)> {
        let word = |bits: &[bool]| -> Option<u128> {
            if bits.len() > 128 {
                return None;
            }
            Some(
                bits.iter()
                    .enumerate()
                    .fold(0u128, |acc, (i, &b)| acc | (u128::from(b) << i)),
            )
        };
        match &self.kind {
            SpecKind::UnsignedMultiplier { width } | SpecKind::SignedMultiplier { width } => {
                if inputs.len() != 2 * width {
                    return Vec::new();
                }
                let (a, b) = (word(&inputs[..*width]), word(&inputs[*width..]));
                match (a, b) {
                    (Some(a), Some(b)) => vec![("a".to_string(), a), ("b".to_string(), b)],
                    _ => Vec::new(),
                }
            }
            SpecKind::Adder { width, carry_in } => {
                if inputs.len() != 2 * width + usize::from(*carry_in) {
                    return Vec::new();
                }
                let mut words = match (word(&inputs[..*width]), word(&inputs[*width..2 * width])) {
                    (Some(a), Some(b)) => vec![("a".to_string(), a), ("b".to_string(), b)],
                    _ => return Vec::new(),
                };
                if *carry_in {
                    words.push(("cin".to_string(), u128::from(inputs[2 * width])));
                }
                words
            }
            SpecKind::Custom { .. } => Vec::new(),
        }
    }

    /// The output word this specification demands for the given input
    /// assignment, as an unsigned word over the output bits (`None` for
    /// custom polynomial specs or interfaces too wide for `u128`).
    pub(crate) fn expected_word(&self, inputs: &[bool]) -> Option<u128> {
        let words = self.operand_words(inputs);
        match &self.kind {
            SpecKind::UnsignedMultiplier { width } => {
                if *width == 0 || 2 * width > 127 || words.len() != 2 {
                    return None;
                }
                let modulus = 1u128 << (2 * width);
                Some(words[0].1.wrapping_mul(words[1].1) % modulus)
            }
            SpecKind::SignedMultiplier { width } => {
                if *width == 0 || 2 * width > 126 || words.len() != 2 {
                    return None;
                }
                let to_signed = |w: u128| -> i128 {
                    let sign = 1u128 << (width - 1);
                    if w & sign != 0 {
                        w as i128 - (1i128 << width)
                    } else {
                        w as i128
                    }
                };
                let product = to_signed(words[0].1) * to_signed(words[1].1);
                let modulus = 1i128 << (2 * width);
                Some(product.rem_euclid(modulus) as u128)
            }
            SpecKind::Adder { width, carry_in } => {
                if *width >= 127 || words.len() != 2 + usize::from(*carry_in) {
                    return None;
                }
                let cin = if *carry_in { words[2].1 } else { 0 };
                Some(words[0].1 + words[1].1 + cin)
            }
            SpecKind::Custom { .. } => None,
        }
    }
}

/// The two's-complement weighted sum `sum_{i<n-1} 2^i b_i - 2^(n-1) b_{n-1}`.
fn signed_weighted_sum(bits: &[Var]) -> Polynomial {
    let mut p = Polynomial::with_capacity(bits.len());
    for (i, &v) in bits.iter().enumerate() {
        let mut c = Int::pow2(i as u32);
        if i + 1 == bits.len() {
            c = -c;
        }
        p.add_term(Monomial::var(v), c);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};

    fn model(arch: &str, width: usize) -> AlgebraicModel {
        let nl = MultiplierSpec::parse(arch, width).unwrap().build();
        AlgebraicModel::from_netlist(&nl).unwrap()
    }

    #[test]
    fn multiplier_spec_instantiates() {
        let m = model("SP-AR-RC", 4);
        let (poly, modulus) = Spec::multiplier(4).instantiate(&m).unwrap();
        assert_eq!(modulus, Some(8));
        assert!(poly.num_terms() > 8);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let m = model("SP-AR-RC", 4);
        let err = Spec::multiplier(8).instantiate(&m).unwrap_err();
        let SpecError::InterfaceMismatch { spec, detail } = err;
        assert_eq!(spec, "mul8u");
        assert!(detail.contains("16"), "{detail}");
        assert!(Spec::adder(4).instantiate(&m).is_err());
    }

    #[test]
    fn adder_spec_instantiates_with_and_without_carry() {
        let nl = build_adder(4, AdderKind::BrentKung, true);
        let m = AlgebraicModel::from_netlist(&nl).unwrap();
        assert!(Spec::adder_with_carry_in(4).instantiate(&m).is_ok());
        assert!(Spec::adder(4).instantiate(&m).is_err());
    }

    /// Positive check of the signed spec polynomial: evaluated with the
    /// outputs forced to the true two's-complement product, it vanishes
    /// modulo `2^(2n)` for every operand pair — and does not vanish when the
    /// product is off by one.
    #[test]
    fn signed_spec_vanishes_on_correct_signed_products() {
        use gbmv_poly::Var;
        for width in [2usize, 3] {
            let arch = "SP-AR-RC";
            let m = model(arch, width);
            let (poly, modulus) = Spec::signed_multiplier(width).instantiate(&m).unwrap();
            let k = modulus.unwrap();
            let inputs: Vec<Var> = m.inputs().to_vec();
            let outputs: Vec<Var> = m.outputs().to_vec();
            let to_signed = |w: i64| {
                if w & (1 << (width - 1)) != 0 {
                    w - (1 << width)
                } else {
                    w
                }
            };
            for a in 0..(1i64 << width) {
                for b in 0..(1i64 << width) {
                    let product = to_signed(a) * to_signed(b);
                    let correct = product.rem_euclid(1 << (2 * width));
                    for (s, expect_zero) in
                        [(correct, true), ((correct + 1) % (1 << (2 * width)), false)]
                    {
                        let assignment = |v: Var| {
                            if let Some(i) = inputs.iter().position(|&u| u == v) {
                                if i < width {
                                    (a >> i) & 1 == 1
                                } else {
                                    (b >> (i - width)) & 1 == 1
                                }
                            } else if let Some(i) = outputs.iter().position(|&u| u == v) {
                                (s >> i) & 1 == 1
                            } else {
                                false
                            }
                        };
                        let value = poly.eval_bool(&assignment);
                        assert_eq!(
                            value.is_multiple_of_pow2(k),
                            expect_zero,
                            "a={a} b={b} s={s} width={width}: spec value {value}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn signed_spec_differs_from_unsigned() {
        let m = model("SP-AR-RC", 4);
        let (unsigned, _) = Spec::multiplier(4).instantiate(&m).unwrap();
        let (signed, _) = Spec::signed_multiplier(4).instantiate(&m).unwrap();
        assert_ne!(unsigned, signed);
    }

    #[test]
    fn expected_words() {
        // a = 13 (0b1101), b = 9 (0b1001) at width 4.
        let bits = |w: u128, n: usize| (0..n).map(|i| (w >> i) & 1 == 1).collect::<Vec<_>>();
        let mut inputs = bits(13, 4);
        inputs.extend(bits(9, 4));
        assert_eq!(Spec::multiplier(4).expected_word(&inputs), Some(117));
        // Signed: 13 -> -3, 9 -> -7; (-3)(-7) = 21.
        assert_eq!(Spec::signed_multiplier(4).expected_word(&inputs), Some(21));
        assert_eq!(Spec::adder(4).expected_word(&inputs), Some(22));
        let ops = Spec::multiplier(4).operand_words(&inputs);
        assert_eq!(ops, vec![("a".to_string(), 13), ("b".to_string(), 9)]);
    }

    #[test]
    fn modulus_override() {
        let spec = Spec::multiplier(4).with_modulus_bits(None);
        assert_eq!(spec.modulus_bits(), None);
        let spec = Spec::adder(4).with_modulus_bits(Some(5));
        assert_eq!(spec.modulus_bits(), Some(5));
    }
}
