//! Resource budgets and cooperative cancellation.
//!
//! A verification run is bounded along two axes: the size of the intermediate
//! polynomials ([`Budget::max_terms`], the analogue of the paper's memory
//! limit) and wall-clock time ([`Budget::deadline`], the analogue of the
//! paper's 100-hour timeout). The deadline is enforced *cooperatively*: at the
//! start of a run the budget is turned into a [`DeadlineToken`] that the
//! rewrite, reduction and SAT phases poll, so a run that crosses its deadline
//! — or is cancelled from another thread, e.g. by a [`crate::Portfolio`] race
//! winner — stops at the next polling point instead of running to completion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Abort when any polynomial (tail or intermediate remainder) exceeds
    /// this many terms. Diverging strategies stop with
    /// [`crate::Outcome::ResourceLimit`] instead of exhausting memory.
    pub max_terms: usize,
    /// Wall-clock budget for the whole run; `None` means unlimited.
    pub deadline: Option<Duration>,
    /// Worker threads available to parallel strategies
    /// ([`crate::ParallelReduction`]); `0` means auto: the `GBMV_THREADS`
    /// environment variable if set, otherwise the machine's available
    /// parallelism. Single-threaded strategies ignore this knob.
    pub threads: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_terms: 10_000_000,
            deadline: Some(Duration::from_secs(600)),
            threads: 0,
        }
    }
}

impl Budget {
    /// A budget with no term or time limit.
    pub fn unlimited() -> Self {
        Budget {
            max_terms: usize::MAX,
            deadline: None,
            threads: 0,
        }
    }

    /// Replaces the term limit.
    pub fn with_max_terms(mut self, max_terms: usize) -> Self {
        self.max_terms = max_terms;
        self
    }

    /// Replaces the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the worker-thread count for parallel strategies (`0` = auto;
    /// see [`Budget::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves [`Budget::threads`] to a concrete worker count: the explicit
    /// value if non-zero, else the `GBMV_THREADS` environment variable, else
    /// the machine's available parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(value) = std::env::var("GBMV_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Starts the clock: creates a token whose deadline is now plus
    /// [`Budget::deadline`].
    pub fn token(&self) -> DeadlineToken {
        match self.deadline {
            Some(d) => DeadlineToken::with_deadline(d),
            None => DeadlineToken::new(),
        }
    }
}

/// A shared cancellation token with an optional absolute deadline.
///
/// Clones share the cancellation flag: cancelling any clone cancels them all.
/// The token is polled (never blocked on) by the rewrite and reduction inner
/// loops and by the SAT solver's search loop, giving cooperative cancellation
/// across phases and across the threads of a [`crate::Portfolio`] race.
#[derive(Debug, Clone, Default)]
pub struct DeadlineToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl DeadlineToken {
    /// A token with no deadline that only expires when cancelled.
    pub fn new() -> Self {
        DeadlineToken::default()
    }

    /// A token that expires `timeout` from now (or when cancelled, whichever
    /// comes first).
    pub fn with_deadline(timeout: Duration) -> Self {
        DeadlineToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Cancels this token (and every clone of it).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Returns `true` if [`DeadlineToken::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Returns `true` if the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Returns `true` if the token is cancelled or past its deadline — the
    /// check the phase inner loops poll.
    pub fn expired(&self) -> bool {
        self.is_cancelled() || self.deadline_expired()
    }

    /// Time left until the deadline (`None` if the token has no deadline;
    /// zero if it has already passed or the token is cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_expires() {
        let token = DeadlineToken::new();
        assert!(!token.expired());
        assert!(token.remaining().is_none());
    }

    #[test]
    fn cancellation_is_shared_between_clones() {
        let token = DeadlineToken::with_deadline(Duration::from_secs(3600));
        let clone = token.clone();
        assert!(!clone.expired());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.expired());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_expiry() {
        let token = DeadlineToken::with_deadline(Duration::ZERO);
        assert!(token.deadline_expired());
        assert!(token.expired());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn budget_token_carries_deadline() {
        let unlimited = Budget::unlimited().token();
        assert!(unlimited.remaining().is_none());
        let bounded = Budget::default()
            .with_deadline(Duration::from_secs(60))
            .token();
        assert!(bounded.remaining().unwrap() <= Duration::from_secs(60));
    }
}
