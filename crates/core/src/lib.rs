//! Membership-testing verification of integer arithmetic circuits by
//! symbolic computer algebra.
//!
//! This crate implements the algorithm of *"Formal Verification of Integer
//! Multipliers by Combining Gröbner Basis with Logic Reduction"* (Sayed-Ahmed
//! et al., DATE 2016):
//!
//! 1. **Modeling** ([`AlgebraicModel`]): every gate of the netlist is turned
//!    into a polynomial `g := -z + tail(g)` over Boolean variables; ordering
//!    the variables in reverse topological order makes the model a Gröbner
//!    basis by construction. Extraction is fallible: a combinational cycle is
//!    an [`ExtractError`], not a panic.
//! 2. **Rewriting** ([`rewrite`], pluggable via [`RewriteStrategy`]): the
//!    model is rewritten against a keep-set of variables using repeated
//!    S-polynomial substitution ("GB-Rew", Algorithm 2 of the paper). The
//!    provided schemes are *fanout rewriting* (the MT-FO baseline of
//!    Farahmandi & Alizadeh), *XOR rewriting* with the **XOR-AND vanishing
//!    rule**, and *logic reduction rewriting* (Algorithm 3, the paper's
//!    contribution).
//! 3. **Gröbner basis reduction** ([`reduction`], pluggable via
//!    [`ReductionStrategy`], Algorithm 1): the specification polynomial is
//!    divided by the rewritten model; the circuit is correct iff the
//!    remainder is zero (modulo `2^(2n)` for multipliers). Three engines are
//!    provided: the scan-based reference [`GbReduction`], the incremental
//!    indexed engine ([`IndexedReduction`], preset [`Method::MtLrIdx`]) whose
//!    inverted var→term index makes each substitution step touch only the
//!    affected terms, and the [`parallel`] output-cone engine
//!    ([`ParallelReduction`], preset [`Method::MtLrPar`]), which decomposes
//!    the same indexed reduction along merged output cones, runs it on a
//!    scoped worker pool, and recombines the partial remainders
//!    deterministically.
//!
//! The user-facing entry point is the [`Session`] builder: extract once,
//! choose a [`Spec`] and a strategy (a [`Method`] preset or custom
//! [`RewriteStrategy`]/[`ReductionStrategy`] implementations), bound the run
//! with a [`Budget`], observe [`Progress`], and [`Session::run`]. The
//! [`Portfolio`] driver runs several strategies — including the SAT miter
//! baseline — against one extracted model, sequentially
//! ([`Portfolio::run_all`]) or racing with first-winner semantics
//! ([`Portfolio::race`]).
//!
//! # Example
//!
//! ```
//! use gbmv_core::{Method, Session, Spec};
//! use gbmv_genmul::MultiplierSpec;
//!
//! let netlist = MultiplierSpec::parse("SP-WT-CL", 4).unwrap().build();
//! let report = Session::extract(&netlist)?
//!     .spec(Spec::multiplier(4))
//!     .strategy(Method::MtLr)
//!     .run()?;
//! assert!(report.outcome.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod counterexample;
mod model;
pub mod parallel;
mod portfolio;
pub mod reduction;
pub mod rewrite;
mod session;
mod spec;
mod strategy;
mod vanishing;
mod verify;

pub use budget::{Budget, DeadlineToken};
pub use counterexample::{Counterexample, InputBit};
pub use model::{AlgebraicModel, ExtractError, GateFunction};
pub use parallel::ParallelReduction;
pub use portfolio::{Portfolio, PortfolioReport, StrategyRun};
pub use reduction::{GbReduction, IndexedReduction, ReductionOutcome, ReductionStats};
pub use rewrite::{RewriteConfig, RewriteStats, RewriteVanishing, RewritingScheme};
pub use session::{Outcome, Phase, Progress, Report, RunStats, Session, SessionError};
pub use spec::{Spec, SpecError};
pub use strategy::{
    FanoutRewrite, GreedyReduction, IndexedLogicReductionRewrite, LogicReductionRewrite, Method,
    NoRewrite, PhaseContext, ReductionStrategy, RewriteStrategy, XorRewrite,
};
pub use vanishing::{ClosureVanishing, VanishScratch, VanishingRules, VanishingTracker};
pub use verify::{Verifier, VerifyConfig};
