//! Membership-testing verification of integer arithmetic circuits by
//! symbolic computer algebra.
//!
//! This crate implements the algorithm of *"Formal Verification of Integer
//! Multipliers by Combining Gröbner Basis with Logic Reduction"* (Sayed-Ahmed
//! et al., DATE 2016):
//!
//! 1. **Modeling** ([`AlgebraicModel`]): every gate of the netlist is turned
//!    into a polynomial `g := -z + tail(g)` over Boolean variables; ordering
//!    the variables in reverse topological order makes the model a Gröbner
//!    basis by construction.
//! 2. **Rewriting** ([`rewrite`]): the model is rewritten against a keep-set
//!    of variables using repeated S-polynomial substitution ("GB-Rew",
//!    Algorithm 2 of the paper). Three schemes are provided — *fanout
//!    rewriting* (the MT-FO baseline of Farahmandi & Alizadeh), *XOR
//!    rewriting* with the **XOR-AND vanishing rule** and *common rewriting*;
//!    XOR followed by common rewriting is the paper's *logic reduction
//!    rewriting* (Algorithm 3).
//! 3. **Gröbner basis reduction** ([`reduction`], Algorithm 1): the
//!    specification polynomial is divided by the rewritten model following
//!    the reverse topological substitution order; the circuit is correct iff
//!    the remainder is zero (modulo `2^(2n)` for multipliers).
//!
//! The user-facing entry points are [`verify_multiplier`], [`verify_adder`]
//! and the lower-level [`Verifier`].
//!
//! # Example
//!
//! ```
//! use gbmv_core::{verify_multiplier, Method, VerifyConfig};
//! use gbmv_genmul::MultiplierSpec;
//!
//! let netlist = MultiplierSpec::parse("SP-WT-CL", 4).unwrap().build();
//! let report = verify_multiplier(&netlist, 4, Method::MtLr, &VerifyConfig::default());
//! assert!(report.outcome.is_verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
pub mod reduction;
pub mod rewrite;
mod vanishing;
mod verify;

pub use model::{AlgebraicModel, GateFunction};
pub use reduction::{GbReduction, ReductionOutcome, ReductionStats};
pub use rewrite::{RewriteConfig, RewriteStats, RewritingScheme};
pub use vanishing::{VanishingRules, VanishingTracker};
pub use verify::{
    verify_adder, verify_multiplier, Method, Outcome, Report, RunStats, Verifier, VerifyConfig,
};
