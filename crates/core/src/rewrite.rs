//! Gröbner basis rewriting (Step 2 of the membership testing algorithm).
//!
//! Rewriting is not required for soundness but is what makes the reduction of
//! large integer circuits feasible: it substitutes "uninteresting" internal
//! variables away so that the model depends only on a keep-set `V`, giving
//! common carry terms a chance to cancel during the subsequent reduction, and
//! — in XOR rewriting — removing vanishing monomials with the XOR-AND rule
//! before they can blow up.
//!
//! Three keep-set schemes are provided (Section II-B and IV-B of the paper):
//!
//! * [`RewritingScheme::Fanout`] — fanout variables + primary I/O. This is
//!   the MT-FO baseline of Farahmandi & Alizadeh.
//! * [`RewritingScheme::Xor`] — XOR-gate inputs/outputs + primary I/O, with
//!   the vanishing rule applied after every substitution.
//! * [`RewritingScheme::Common`] — variables shared by more than one model
//!   polynomial + primary I/O.
//!
//! The paper's *logic reduction rewriting* (Algorithm 3) is the sequential
//! application of XOR rewriting followed by common rewriting; see
//! [`logic_reduction_rewriting`].

use std::time::{Duration, Instant};

use gbmv_poly::{FastSet, Polynomial, Var};

use crate::budget::DeadlineToken;
use crate::model::AlgebraicModel;
use crate::vanishing::{VanishingRules, VanishingTracker};

/// The keep-set selection schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritingScheme {
    /// Keep fanout variables (MT-FO baseline).
    Fanout,
    /// Keep XOR inputs/outputs and apply the vanishing rule (first half of
    /// MT-LR).
    Xor,
    /// Keep variables shared between polynomials (second half of MT-LR).
    Common,
}

/// Configuration of a rewriting pass.
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Which structural vanishing rules to apply (only used by schemes that
    /// enable the rule, i.e. XOR rewriting).
    pub rules: VanishingRules,
    /// Abort when any tail polynomial exceeds this many terms.
    pub max_terms: usize,
    /// Abort when the rewriting pass exceeds this wall-clock budget.
    pub timeout: Duration,
    /// Cooperative cancellation: the pass aborts (with
    /// [`RewriteStats::limit_exceeded`]) as soon as the token expires. The
    /// default token never expires.
    pub cancel: DeadlineToken,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            rules: VanishingRules::default(),
            max_terms: 5_000_000,
            timeout: Duration::from_secs(3600),
            cancel: DeadlineToken::new(),
        }
    }
}

/// Statistics of one or more rewriting passes.
#[derive(Debug, Clone, Default)]
pub struct RewriteStats {
    /// Total number of variable substitutions performed.
    pub substitutions: usize,
    /// Number of monomials removed by the vanishing rule (`#CVM`).
    pub cancelled_vanishing: u64,
    /// Number of polynomials removed from the model (`UpdateModel`).
    pub removed_polynomials: usize,
    /// Peak number of terms of any tail during rewriting.
    pub peak_terms: usize,
    /// Wall-clock time spent rewriting.
    pub elapsed: Duration,
    /// True if the pass hit a resource limit and the model is only partially
    /// rewritten (still sound, but reduction may blow up).
    pub limit_exceeded: bool,
}

impl RewriteStats {
    fn merge(&mut self, other: &RewriteStats) {
        self.substitutions += other.substitutions;
        self.cancelled_vanishing += other.cancelled_vanishing;
        self.removed_polynomials += other.removed_polynomials;
        self.peak_terms = self.peak_terms.max(other.peak_terms);
        self.elapsed += other.elapsed;
        self.limit_exceeded |= other.limit_exceeded;
    }
}

/// Computes the keep-set `V` of a scheme for the current model.
pub fn keep_set(model: &AlgebraicModel, scheme: RewritingScheme) -> FastSet<Var> {
    match scheme {
        RewritingScheme::Fanout => model.fanout_keep_set(),
        RewritingScheme::Xor => model.xor_keep_set(),
        RewritingScheme::Common => model.common_keep_set(),
    }
}

/// Gröbner basis rewriting (Algorithm 2, `GB-Rew`).
///
/// Rewrites every polynomial of the model so that its tail only mentions
/// variables in `keep` (or primary inputs), substituting other variables with
/// their gate polynomials. When `vanishing` is provided, the XOR-AND rule is
/// applied after every substitution. Finally, polynomials whose leading
/// variables are not in `keep` and are not primary outputs are removed from
/// the model.
pub fn gb_rewrite(
    model: &mut AlgebraicModel,
    keep: &FastSet<Var>,
    mut vanishing: Option<&mut VanishingTracker>,
    config: &RewriteConfig,
) -> RewriteStats {
    let start = Instant::now();
    let mut stats = RewriteStats::default();
    // Scratch polynomial reused across all substitutions of the pass, so each
    // step reuses the previous term table instead of reallocating.
    let mut scratch = Polynomial::zero();
    // "in reverse order of their leading monomial variables": with the
    // monomial order being the reverse topological order of the circuit, this
    // means processing the polynomials from the inputs side towards the
    // outputs, so tails that are substituted in have already been rewritten.
    let order = model.polynomial_order();
    for v in order {
        let mut tail = match model.tail(v) {
            Some(t) => t.clone(),
            None => continue,
        };
        loop {
            if start.elapsed() > config.timeout || config.cancel.expired() {
                stats.limit_exceeded = true;
                break;
            }
            let vt = match smallest_tail_candidate(model, &tail, keep) {
                Some(u) => u,
                None => break,
            };
            let replacement = model.tail(vt).expect("candidate has a tail").clone();
            tail.substitute_into(vt, &replacement, &mut scratch);
            std::mem::swap(&mut tail, &mut scratch);
            stats.substitutions += 1;
            if let Some(tracker) = vanishing.as_deref_mut() {
                let removed = tracker.apply(&mut tail);
                stats.cancelled_vanishing += removed as u64;
            }
            stats.peak_terms = stats.peak_terms.max(tail.num_terms());
            if tail.num_terms() > config.max_terms {
                stats.limit_exceeded = true;
                break;
            }
        }
        model.set_tail(v, tail);
        if stats.limit_exceeded {
            break;
        }
    }
    // UpdateModel: drop polynomials whose leading variable was substituted
    // away (not kept and not a primary output).
    if !stats.limit_exceeded {
        let order = model.polynomial_order();
        for v in order {
            if !keep.contains(&v) && !model.is_output(v) {
                model.remove(v);
                stats.removed_polynomials += 1;
            }
        }
    }
    stats.elapsed = start.elapsed();
    stats
}

/// Chooses the substitution candidate with the smallest tail, as the paper
/// prescribes, breaking ties by variable index for determinism.
///
/// Iterates the term monomials directly instead of materializing the set of
/// all tail variables per step — the previous implementation allocated a
/// fresh `HashSet<Var>` on every substitution of the rewrite loop. Duplicate
/// variables across monomials re-run the keep/input/tail probes but never
/// allocate.
fn smallest_tail_candidate(
    model: &AlgebraicModel,
    tail: &Polynomial,
    keep: &FastSet<Var>,
) -> Option<Var> {
    let mut best: Option<(usize, u32)> = None;
    for (m, _) in tail.iter() {
        for u in m.vars() {
            if keep.contains(&u) || model.is_input(u) {
                continue;
            }
            if let Some(t) = model.tail(u) {
                let key = (t.num_terms(), u.0);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
    }
    best.map(|(_, u)| Var(u))
}

/// Fanout rewriting: the Step-2 scheme of the MT-FO baseline.
pub fn fanout_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Fanout);
    gb_rewrite(model, &keep, None, config)
}

/// XOR rewriting with the XOR-AND vanishing rule (first half of MT-LR).
pub fn xor_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Xor);
    let mut tracker = VanishingTracker::new(model, config.rules);
    gb_rewrite(model, &keep, Some(&mut tracker), config)
}

/// Common rewriting (second half of MT-LR).
pub fn common_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Common);
    gb_rewrite(model, &keep, None, config)
}

/// Logic reduction rewriting (Algorithm 3): XOR rewriting followed by common
/// rewriting. This is the paper's contribution (the Step 2 used by MT-LR).
pub fn logic_reduction_rewriting(
    model: &mut AlgebraicModel,
    config: &RewriteConfig,
) -> RewriteStats {
    let mut stats = xor_rewriting(model, config);
    if !stats.limit_exceeded {
        let common = common_rewriting(model, config);
        stats.merge(&common);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::GbReduction;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};
    use gbmv_netlist::Netlist;
    use gbmv_poly::spec::{adder_spec, multiplier_spec};

    fn adder_vars(nl: &Netlist, width: usize) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
        let a = (0..width)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b = (0..width)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        (a, b, s)
    }

    /// Example 2 of the paper: after fanout rewriting, the 3-bit ripple carry
    /// adder model depends only on carries, inputs and outputs and the
    /// reduction still yields remainder zero.
    #[test]
    fn fanout_rewriting_ripple_carry_adder() {
        let nl = build_adder(3, AdderKind::RippleCarry, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let polys_before = model.num_polynomials();
        let stats = fanout_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        assert!(stats.removed_polynomials > 0);
        assert!(model.num_polynomials() < polys_before);
        // All tails now depend only on kept variables or primary inputs.
        let keep = keep_set(&model, RewritingScheme::Fanout);
        for v in model.polynomial_order() {
            for u in model.tail(v).unwrap().vars() {
                assert!(
                    keep.contains(&u) || model.is_input(u),
                    "tail of {} still mentions {}",
                    model.name(v),
                    model.name(u)
                );
            }
        }
        let (a, b, s) = adder_vars(&nl, 3);
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    /// Example 3 / Section IV of the paper: XOR rewriting cancels the
    /// vanishing monomials of a parallel-prefix (Kogge-Stone) adder.
    #[test]
    fn xor_rewriting_cancels_vanishing_monomials_on_prefix_adder() {
        let nl = build_adder(8, AdderKind::KoggeStone, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let stats = xor_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        assert!(
            stats.cancelled_vanishing > 0,
            "a Kogge-Stone adder must produce vanishing monomials"
        );
        let (a, b, s) = adder_vars(&nl, 8);
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    /// Ripple-carry circuits contain only a handful of local vanishing
    /// monomials (one per full adder), far fewer than a parallel-prefix adder
    /// of the same width — the paper's Section III observation.
    #[test]
    fn ripple_carry_has_fewer_vanishing_monomials_than_kogge_stone() {
        let width = 8;
        let rc = build_adder(width, AdderKind::RippleCarry, false);
        let mut rc_model = AlgebraicModel::from_netlist(&rc).unwrap();
        let rc_stats = xor_rewriting(&mut rc_model, &RewriteConfig::default());
        assert!(rc_stats.cancelled_vanishing <= width as u64);

        let ks = build_adder(width, AdderKind::KoggeStone, false);
        let mut ks_model = AlgebraicModel::from_netlist(&ks).unwrap();
        let ks_stats = xor_rewriting(&mut ks_model, &RewriteConfig::default());
        assert!(
            ks_stats.cancelled_vanishing > rc_stats.cancelled_vanishing,
            "Kogge-Stone ({}) must produce more vanishing monomials than ripple carry ({})",
            ks_stats.cancelled_vanishing,
            rc_stats.cancelled_vanishing
        );
    }

    #[test]
    fn logic_reduction_rewriting_multiplier_verifies() {
        let nl = MultiplierSpec::parse("SP-WT-BK", 4).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let stats = logic_reduction_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        let a: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = multiplier_spec(&a, &b, &s);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        let r = r.drop_multiples_of_pow2(8);
        assert!(r.is_zero(), "remainder: {}", model.render(&r));
    }

    #[test]
    fn rewriting_preserves_output_polynomials() {
        let nl = build_adder(4, AdderKind::BrentKung, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        logic_reduction_rewriting(&mut model, &RewriteConfig::default());
        for &out in model.outputs() {
            assert!(
                model.tail(out).is_some(),
                "primary output {} must keep its polynomial",
                model.name(out)
            );
        }
    }

    #[test]
    fn term_limit_marks_partial_rewrite() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 8).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig {
            max_terms: 3,
            ..RewriteConfig::default()
        };
        let stats = fanout_rewriting(&mut model, &config);
        assert!(stats.limit_exceeded);
    }

    #[test]
    fn cancelled_token_aborts_rewriting() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 6).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let token = DeadlineToken::new();
        token.cancel();
        let config = RewriteConfig {
            cancel: token,
            ..RewriteConfig::default()
        };
        let stats = fanout_rewriting(&mut model, &config);
        assert!(stats.limit_exceeded, "cancelled pass must stop early");
        assert_eq!(stats.substitutions, 0);
    }

    #[test]
    fn common_rewriting_reduces_model_size() {
        let nl = MultiplierSpec::parse("SP-CT-BK", 4).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig::default();
        xor_rewriting(&mut model, &config);
        let before = model.num_polynomials();
        common_rewriting(&mut model, &config);
        assert!(model.num_polynomials() <= before);
    }
}
