//! Gröbner basis rewriting (Step 2 of the membership testing algorithm).
//!
//! Rewriting is not required for soundness but is what makes the reduction of
//! large integer circuits feasible: it substitutes "uninteresting" internal
//! variables away so that the model depends only on a keep-set `V`, giving
//! common carry terms a chance to cancel during the subsequent reduction, and
//! — in XOR rewriting — removing vanishing monomials with the XOR-AND rule
//! before they can blow up.
//!
//! Three keep-set schemes are provided (Section II-B and IV-B of the paper):
//!
//! * [`RewritingScheme::Fanout`] — fanout variables + primary I/O. This is
//!   the MT-FO baseline of Farahmandi & Alizadeh.
//! * [`RewritingScheme::Xor`] — XOR-gate inputs/outputs + primary I/O, with
//!   the vanishing rule applied after every substitution.
//! * [`RewritingScheme::Common`] — variables shared by more than one model
//!   polynomial + primary I/O.
//!
//! The paper's *logic reduction rewriting* (Algorithm 3) is the sequential
//! application of XOR rewriting followed by common rewriting; see
//! [`logic_reduction_rewriting`].

use std::time::{Duration, Instant};

use gbmv_poly::{FastSet, IndexedPolynomial, Monomial, Polynomial, Var};

use crate::budget::DeadlineToken;
use crate::model::AlgebraicModel;
use crate::vanishing::{ClosureVanishing, VanishScratch, VanishingRules, VanishingTracker};

/// The keep-set selection schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritingScheme {
    /// Keep fanout variables (MT-FO baseline).
    Fanout,
    /// Keep XOR inputs/outputs and apply the vanishing rule (first half of
    /// MT-LR).
    Xor,
    /// Keep variables shared between polynomials (second half of MT-LR).
    Common,
}

/// Configuration of a rewriting pass.
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Which structural vanishing rules to apply (only used by schemes that
    /// enable the rule, i.e. XOR rewriting).
    pub rules: VanishingRules,
    /// Abort when any tail polynomial exceeds this many terms.
    pub max_terms: usize,
    /// Abort when the rewriting pass exceeds this wall-clock budget.
    pub timeout: Duration,
    /// Cooperative cancellation: the pass aborts (with
    /// [`RewriteStats::limit_exceeded`]) as soon as the token expires. The
    /// default token never expires.
    pub cancel: DeadlineToken,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            rules: VanishingRules::default(),
            max_terms: 5_000_000,
            timeout: Duration::from_secs(3600),
            cancel: DeadlineToken::new(),
        }
    }
}

/// Statistics of one or more rewriting passes.
#[derive(Debug, Clone, Default)]
pub struct RewriteStats {
    /// Total number of variable substitutions performed.
    pub substitutions: usize,
    /// Number of monomials removed by the vanishing rule (`#CVM`).
    pub cancelled_vanishing: u64,
    /// Number of polynomials removed from the model (`UpdateModel`).
    pub removed_polynomials: usize,
    /// Peak number of terms of any tail during rewriting.
    pub peak_terms: usize,
    /// Number of terms the indexed rewriter retrieved through the inverted
    /// var→term index (one per extracted term; zero for the scan-based
    /// engine).
    pub index_hits: u64,
    /// Number of output columns completed by the rewrite pass: column `j`
    /// counts once the pass moves past the last model polynomial whose
    /// backward cone reaches primary output `j` — every tail feeding that
    /// column is final from then on. Summed over passes (XOR + common for
    /// logic reduction); zero for the scan-based engine and for passes that
    /// stop at a resource limit.
    pub columns_retired: usize,
    /// Wall-clock time spent rewriting.
    pub elapsed: Duration,
    /// True if the pass hit a resource limit and the model is only partially
    /// rewritten (still sound, but reduction may blow up).
    pub limit_exceeded: bool,
}

impl RewriteStats {
    fn merge(&mut self, other: &RewriteStats) {
        self.substitutions += other.substitutions;
        self.cancelled_vanishing += other.cancelled_vanishing;
        self.removed_polynomials += other.removed_polynomials;
        self.peak_terms = self.peak_terms.max(other.peak_terms);
        self.index_hits += other.index_hits;
        self.columns_retired += other.columns_retired;
        self.elapsed += other.elapsed;
        self.limit_exceeded |= other.limit_exceeded;
    }
}

/// Computes the keep-set `V` of a scheme for the current model.
pub fn keep_set(model: &AlgebraicModel, scheme: RewritingScheme) -> FastSet<Var> {
    match scheme {
        RewritingScheme::Fanout => model.fanout_keep_set(),
        RewritingScheme::Xor => model.xor_keep_set(),
        RewritingScheme::Common => model.common_keep_set(),
    }
}

/// Gröbner basis rewriting (Algorithm 2, `GB-Rew`).
///
/// Rewrites every polynomial of the model so that its tail only mentions
/// variables in `keep` (or primary inputs), substituting other variables with
/// their gate polynomials. When `vanishing` is provided, the XOR-AND rule is
/// applied after every substitution. Finally, polynomials whose leading
/// variables are not in `keep` and are not primary outputs are removed from
/// the model.
pub fn gb_rewrite(
    model: &mut AlgebraicModel,
    keep: &FastSet<Var>,
    mut vanishing: Option<&mut VanishingTracker>,
    config: &RewriteConfig,
) -> RewriteStats {
    let start = Instant::now();
    let mut stats = RewriteStats::default();
    // Scratch polynomial reused across all substitutions of the pass, so each
    // step reuses the previous term table instead of reallocating.
    let mut scratch = Polynomial::zero();
    // "in reverse order of their leading monomial variables": with the
    // monomial order being the reverse topological order of the circuit, this
    // means processing the polynomials from the inputs side towards the
    // outputs, so tails that are substituted in have already been rewritten.
    let order = model.polynomial_order();
    for v in order {
        let mut tail = match model.tail(v) {
            Some(t) => t.clone(),
            None => continue,
        };
        loop {
            if start.elapsed() > config.timeout || config.cancel.expired() {
                stats.limit_exceeded = true;
                break;
            }
            let vt = match smallest_tail_candidate(model, &tail, keep) {
                Some(u) => u,
                None => break,
            };
            let replacement = model.tail(vt).expect("candidate has a tail").clone();
            tail.substitute_into(vt, &replacement, &mut scratch);
            std::mem::swap(&mut tail, &mut scratch);
            stats.substitutions += 1;
            if let Some(tracker) = vanishing.as_deref_mut() {
                let removed = tracker.apply(&mut tail);
                stats.cancelled_vanishing += removed as u64;
            }
            stats.peak_terms = stats.peak_terms.max(tail.num_terms());
            if tail.num_terms() > config.max_terms {
                stats.limit_exceeded = true;
                break;
            }
        }
        model.set_tail(v, tail);
        if stats.limit_exceeded {
            break;
        }
    }
    // UpdateModel: drop polynomials whose leading variable was substituted
    // away (not kept and not a primary output).
    if !stats.limit_exceeded {
        let order = model.polynomial_order();
        for v in order {
            if !keep.contains(&v) && !model.is_output(v) {
                model.remove(v);
                stats.removed_polynomials += 1;
            }
        }
    }
    stats.elapsed = start.elapsed();
    stats
}

/// Chooses the substitution candidate with the smallest tail, as the paper
/// prescribes, breaking ties by variable index for determinism.
///
/// Iterates the term monomials directly instead of materializing the set of
/// all tail variables per step — the previous implementation allocated a
/// fresh `HashSet<Var>` on every substitution of the rewrite loop. Duplicate
/// variables across monomials re-run the keep/input/tail probes but never
/// allocate.
fn smallest_tail_candidate(
    model: &AlgebraicModel,
    tail: &Polynomial,
    keep: &FastSet<Var>,
) -> Option<Var> {
    let mut best: Option<(usize, u32)> = None;
    for (m, _) in tail.iter() {
        for u in m.vars() {
            if keep.contains(&u) || model.is_input(u) {
                continue;
            }
            if let Some(t) = model.tail(u) {
                let key = (t.num_terms(), u.0);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
    }
    best.map(|(_, u)| Var(u))
}

/// Fanout rewriting: the Step-2 scheme of the MT-FO baseline.
pub fn fanout_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Fanout);
    gb_rewrite(model, &keep, None, config)
}

/// XOR rewriting with the XOR-AND vanishing rule (first half of MT-LR).
pub fn xor_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Xor);
    let mut tracker = VanishingTracker::new(model, config.rules);
    gb_rewrite(model, &keep, Some(&mut tracker), config)
}

/// Common rewriting (second half of MT-LR).
pub fn common_rewriting(model: &mut AlgebraicModel, config: &RewriteConfig) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Common);
    gb_rewrite(model, &keep, None, config)
}

/// Logic reduction rewriting (Algorithm 3): XOR rewriting followed by common
/// rewriting. This is the paper's contribution (the Step 2 used by MT-LR).
pub fn logic_reduction_rewriting(
    model: &mut AlgebraicModel,
    config: &RewriteConfig,
) -> RewriteStats {
    let mut stats = xor_rewriting(model, config);
    if !stats.limit_exceeded {
        let common = common_rewriting(model, config);
        stats.merge(&common);
    }
    stats
}

/// How often the indexed rewriter polls the cancellation token and the
/// wall-clock budget inside a single substitution step, in expanded
/// products — the same cadence as the reduction engines.
const CANCEL_POLL_INTERVAL: usize = 64 * 1024;

/// The vanishing predicate [`gb_rewrite_indexed`] applies during each
/// substitution, selected per preset by [`VanishingRules::closure`] (see
/// [`indexed_xor_rewriting`]).
pub enum RewriteVanishing<'a> {
    /// The scan engine's static per-monomial pattern test. In this mode the
    /// rewriter's result is term-for-term identical to [`gb_rewrite`]'s —
    /// the differential contract pinned by `tests/rewrite_equivalence.rs`.
    Tracker(&'a VanishingTracker),
    /// The unit-propagation closure shared with the reduction engines; the
    /// presets' default. Cancels strictly more monomials than the tracker's
    /// patterns, trading byte-identity for the term-growth headroom that
    /// opens width 16+.
    Closure(&'a ClosureVanishing, VanishScratch),
}

impl<'a> RewriteVanishing<'a> {
    /// Wraps the closure index together with a fresh query scratch.
    pub fn closure(van: &'a ClosureVanishing) -> Self {
        Self::Closure(van, van.scratch())
    }

    fn enabled(&self) -> bool {
        match self {
            Self::Tracker(t) => t.enabled(),
            Self::Closure(c, _) => c.enabled(),
        }
    }

    /// Whether a pre-existing term of a freshly touched tail vanishes.
    fn sweep_vanishes(&mut self, m: &Monomial) -> bool {
        match self {
            Self::Tracker(t) => t.monomial_vanishes(m),
            Self::Closure(c, s) => c.vanishes(m, s),
        }
    }

    /// Installs the residual monomial of an extracted term for the product
    /// judgements that follow; `true` means the residual alone vanishes, so
    /// every product built on it does too (both predicates are monotone in
    /// the monomial's variable set).
    fn begin_rest(&mut self, rest: &Monomial) -> bool {
        match self {
            Self::Tracker(t) => t.monomial_vanishes(rest),
            Self::Closure(c, s) => c.set_rest(rest, s),
        }
    }

    /// Judges one replacement term against the residual installed by the
    /// last [`Self::begin_rest`]: `None` when `tm · rest` vanishes,
    /// otherwise the materialized product monomial.
    fn product(&mut self, tm: &Monomial, rest: &Monomial) -> Option<Monomial> {
        match self {
            Self::Tracker(t) => {
                let pm = tm.mul(rest);
                if t.monomial_vanishes(&pm) {
                    None
                } else {
                    Some(pm)
                }
            }
            Self::Closure(c, s) => {
                if c.rest_union_vanishes(tm, s) {
                    None
                } else {
                    Some(tm.mul(rest))
                }
            }
        }
    }
}

/// Gröbner basis rewriting on the incrementally indexed term store —
/// Algorithm 2 with the same candidate rule and stopping conditions as
/// [`gb_rewrite`], but with each tail held in an [`IndexedPolynomial`]:
///
/// * terms containing the substituted net are drained **in place** through
///   the inverted var→term index instead of re-materializing the whole tail
///   per step;
/// * with `vanishing`, structurally zero monomials are cancelled **during**
///   the substitution — a product whose monomial vanishes is never
///   inserted, and a whole extracted term is skipped when its residual
///   monomial alone already vanishes (sound because both predicates are
///   monotone: every supermonomial of a vanishing monomial vanishes too);
/// * with `modulus_bits = Some(k)`, coefficients are kept canonical mod
///   `2^k` and terms cancel at insertion time;
/// * terms over keep-set variables and primary inputs only (no remaining
///   substitution candidate) retire into the store's inert accumulator,
///   outside all per-step index maintenance.
///
/// The tracked set of each tail's store is its candidate set. On the
/// topologically ordered pass of a well-formed model every replacement tail
/// is already fully rewritten, so the candidate set never grows mid-tail —
/// but the engine still routes replacement-introduced internal nets through
/// [`IndexedPolynomial::track_var`], so partially rewritten models (for
/// example after an earlier pass stopped at a limit) stay correct.
///
/// The rewritten tails are the canonical post-rewrite form: coefficients in
/// `[0, 2^k)` when a modulus is given. Which products cancel depends on the
/// `vanishing` mode:
///
/// * [`RewriteVanishing::Tracker`] applies the *same* static per-monomial
///   test as the scan engine's tracker, so judging each product at
///   insertion is equivalent to sweeping the merged tail after the step
///   (the predicate is monotone), and the pre-existing terms of a tail are
///   swept once, when the first substitution touches it. Modulo the
///   coefficient canonicalization the result is then term-for-term
///   identical to [`gb_rewrite`]'s — pinned across every generator
///   architecture by `tests/rewrite_equivalence.rs`.
/// * [`RewriteVanishing::Closure`] applies the unit-propagation closure of
///   the reduction engines, which cancels strictly more monomials. The
///   post-rewrite model is then *not* syntactically the scan engine's —
///   the closure changes which variables survive the XOR pass, and with
///   them the common keep-set — but every cancelled monomial is a member
///   of the circuit ideal, so a completed reduction ends in exactly the
///   same multilinear remainder, verdict and counterexample (the argument
///   of `reduction.rs`'s closure cancellation). `tests/rewrite_equivalence.rs`
///   and `tests/parallel_equivalence.rs` pin the verdicts. This is the
///   presets' default mode and what opens width 16+: the closure kills the
///   high-degree carry products the tracker's local patterns miss.
pub fn gb_rewrite_indexed(
    model: &mut AlgebraicModel,
    keep: &FastSet<Var>,
    vanishing: Option<RewriteVanishing>,
    config: &RewriteConfig,
    modulus_bits: Option<u32>,
) -> RewriteStats {
    let start = Instant::now();
    let mut stats = RewriteStats::default();
    let mut vanishing = vanishing.filter(|v| v.enabled());
    let order = model.polynomial_order();
    // Suffix unions of the output-column masks over the pass order: column
    // `j` retires once the pass moves past the last polynomial whose
    // backward cone reaches output `j` — see `cone::output_column_masks`.
    let mut suffix = vec![0u64; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] | model.column_mask(order[i]);
    }
    let var_count = model.var_count();
    let mut since_poll = 0usize;
    'pass: for (pos, &v) in order.iter().enumerate() {
        let retiring_cols = (suffix[pos] & !suffix[pos + 1]).count_ones() as usize;
        if start.elapsed() > config.timeout || config.cancel.expired() {
            stats.limit_exceeded = true;
            break 'pass;
        }
        let Some(tail) = model.tail(v) else { continue };
        // Candidate substitution fronts: the non-keep internal nets of the
        // original tail. This matches the scan engine's repeated search —
        // replacements only ever mention keep-set variables and inputs (see
        // above), so the front set shrinks monotonically.
        let mut cand: Vec<Var> = tail
            .vars()
            .into_iter()
            .filter(|&u| !keep.contains(&u) && !model.is_input(u) && model.tail(u).is_some())
            .collect();
        if cand.is_empty() {
            // Nothing to substitute: the scan engine re-stores the identical
            // tail and never applies vanishing to it.
            stats.columns_retired += retiring_cols;
            continue;
        }
        let mut tracked = vec![false; var_count];
        for &u in &cand {
            tracked[u.index()] = true;
        }
        let mut store = IndexedPolynomial::new(tracked, modulus_bits);
        for (m, c) in tail.iter() {
            store.add_term(m.clone(), c.clone());
        }
        // The pre-existing terms have not been vetted against the vanishing
        // rules yet; the sweep happens at the first substitution, mirroring
        // the scan engine's first post-substitution application.
        let mut swept = vanishing.is_none();
        loop {
            if start.elapsed() > config.timeout || config.cancel.expired() {
                stats.limit_exceeded = true;
                break;
            }
            // The same candidate rule as `smallest_tail_candidate`: smallest
            // replacement tail, tie-broken by variable index.
            let mut best: Option<(usize, u32)> = None;
            for &u in &cand {
                if store.occurrences(u) == 0 {
                    continue;
                }
                let Some(t) = model.tail(u) else { continue };
                let key = (t.num_terms(), u.0);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, u)) = best else { break };
            let u = Var(u);
            let replacement = model.tail(u).expect("candidate has a tail");
            let extracted = store.extract_terms_containing(u);
            stats.substitutions += 1;
            if !swept {
                swept = true;
                if let Some(van) = vanishing.as_mut() {
                    // The substituted terms already left the store: they are
                    // expanded rather than pre-filtered, exactly like the
                    // scan engine, whose first tracker sweep also runs on
                    // the already-substituted tail — a vanishing term whose
                    // witness variable is the one being substituted away
                    // expands into products that need not vanish.
                    let removed = store.retain_terms(|m| !van.sweep_vanishes(m));
                    stats.cancelled_vanishing += removed as u64;
                }
            }
            // Tracked-set growth for replacement-introduced internal nets
            // (a no-op on fully rewritten replacements, see above).
            for w in replacement.vars() {
                if !keep.contains(&w)
                    && !model.is_input(w)
                    && model.tail(w).is_some()
                    && !cand.contains(&w)
                {
                    store.track_var(w);
                    cand.push(w);
                }
            }
            let mut aborted = false;
            'terms: for (m, c) in &extracted {
                let rest = m.without(u);
                // Monotonicity of the predicates: if the residual monomial
                // already vanishes, so does every product built on it —
                // skip the whole replacement tail.
                if let Some(van) = vanishing.as_mut() {
                    if van.begin_rest(&rest) {
                        stats.cancelled_vanishing += replacement.num_terms() as u64;
                        continue;
                    }
                }
                for (tm, tc) in replacement.iter() {
                    since_poll += 1;
                    if since_poll >= CANCEL_POLL_INTERVAL {
                        since_poll = 0;
                        if start.elapsed() > config.timeout || config.cancel.expired() {
                            aborted = true;
                            break 'terms;
                        }
                    }
                    let pm = match vanishing.as_mut() {
                        Some(van) => match van.product(tm, &rest) {
                            Some(pm) => pm,
                            None => {
                                stats.cancelled_vanishing += 1;
                                continue;
                            }
                        },
                        None => tm.mul(&rest),
                    };
                    store.add_term(pm, tc * c);
                }
            }
            if aborted {
                stats.limit_exceeded = true;
                break;
            }
            stats.peak_terms = stats.peak_terms.max(store.num_terms());
            if store.num_terms() > config.max_terms {
                stats.limit_exceeded = true;
                break;
            }
        }
        stats.index_hits += store.index_hits();
        // Reassemble even a partially rewritten tail — the scan engine also
        // stores the tail it had when a limit fired.
        model.set_tail(v, store.into_polynomial());
        if stats.limit_exceeded {
            break 'pass;
        }
        stats.columns_retired += retiring_cols;
    }
    // UpdateModel, exactly as in the scan engine.
    if !stats.limit_exceeded {
        let order = model.polynomial_order();
        for v in order {
            if !keep.contains(&v) && !model.is_output(v) {
                model.remove(v);
                stats.removed_polynomials += 1;
            }
        }
    }
    stats.elapsed = start.elapsed();
    stats
}

/// XOR rewriting on the indexed store, with vanishing cancellation applied
/// during each substitution. [`VanishingRules::closure`] selects the
/// predicate: the unit-propagation closure by default (the presets' fast,
/// width-16-opening mode), the scan tracker's pattern rules when disabled —
/// the byte-identical differential mode of `tests/rewrite_equivalence.rs`.
pub fn indexed_xor_rewriting(
    model: &mut AlgebraicModel,
    config: &RewriteConfig,
    modulus_bits: Option<u32>,
) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Xor);
    if config.rules.closure {
        let vanishing = ClosureVanishing::new(model, config.rules);
        let vanishing = RewriteVanishing::closure(&vanishing);
        gb_rewrite_indexed(model, &keep, Some(vanishing), config, modulus_bits)
    } else {
        let vanishing = VanishingTracker::new(model, config.rules);
        let vanishing = RewriteVanishing::Tracker(&vanishing);
        gb_rewrite_indexed(model, &keep, Some(vanishing), config, modulus_bits)
    }
}

/// Common rewriting on the indexed store (no vanishing, like the scan
/// engine's common pass).
pub fn indexed_common_rewriting(
    model: &mut AlgebraicModel,
    config: &RewriteConfig,
    modulus_bits: Option<u32>,
) -> RewriteStats {
    let keep = keep_set(model, RewritingScheme::Common);
    gb_rewrite_indexed(model, &keep, None, config, modulus_bits)
}

/// Logic reduction rewriting (Algorithm 3) on the indexed store: indexed
/// XOR rewriting followed by indexed common rewriting — the Step 2 of the
/// `MT-LR-IDX` and `MT-LR-PAR` presets. With [`VanishingRules::closure`]
/// disabled it produces the canonical (mod `2^k`) form of
/// [`logic_reduction_rewriting`]'s result, term for term; with the default
/// closure mode the model is smaller but reduces to the same remainder.
pub fn indexed_logic_reduction_rewriting(
    model: &mut AlgebraicModel,
    config: &RewriteConfig,
    modulus_bits: Option<u32>,
) -> RewriteStats {
    let mut stats = indexed_xor_rewriting(model, config, modulus_bits);
    if !stats.limit_exceeded {
        let common = indexed_common_rewriting(model, config, modulus_bits);
        stats.merge(&common);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::GbReduction;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};
    use gbmv_netlist::Netlist;
    use gbmv_poly::spec::{adder_spec, multiplier_spec};

    fn adder_vars(nl: &Netlist, width: usize) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
        let a = (0..width)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b = (0..width)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        (a, b, s)
    }

    /// Example 2 of the paper: after fanout rewriting, the 3-bit ripple carry
    /// adder model depends only on carries, inputs and outputs and the
    /// reduction still yields remainder zero.
    #[test]
    fn fanout_rewriting_ripple_carry_adder() {
        let nl = build_adder(3, AdderKind::RippleCarry, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let polys_before = model.num_polynomials();
        let stats = fanout_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        assert!(stats.removed_polynomials > 0);
        assert!(model.num_polynomials() < polys_before);
        // All tails now depend only on kept variables or primary inputs.
        let keep = keep_set(&model, RewritingScheme::Fanout);
        for v in model.polynomial_order() {
            for u in model.tail(v).unwrap().vars() {
                assert!(
                    keep.contains(&u) || model.is_input(u),
                    "tail of {} still mentions {}",
                    model.name(v),
                    model.name(u)
                );
            }
        }
        let (a, b, s) = adder_vars(&nl, 3);
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    /// Example 3 / Section IV of the paper: XOR rewriting cancels the
    /// vanishing monomials of a parallel-prefix (Kogge-Stone) adder.
    #[test]
    fn xor_rewriting_cancels_vanishing_monomials_on_prefix_adder() {
        let nl = build_adder(8, AdderKind::KoggeStone, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let stats = xor_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        assert!(
            stats.cancelled_vanishing > 0,
            "a Kogge-Stone adder must produce vanishing monomials"
        );
        let (a, b, s) = adder_vars(&nl, 8);
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    /// Ripple-carry circuits contain only a handful of local vanishing
    /// monomials (one per full adder), far fewer than a parallel-prefix adder
    /// of the same width — the paper's Section III observation.
    #[test]
    fn ripple_carry_has_fewer_vanishing_monomials_than_kogge_stone() {
        let width = 8;
        let rc = build_adder(width, AdderKind::RippleCarry, false);
        let mut rc_model = AlgebraicModel::from_netlist(&rc).unwrap();
        let rc_stats = xor_rewriting(&mut rc_model, &RewriteConfig::default());
        assert!(rc_stats.cancelled_vanishing <= width as u64);

        let ks = build_adder(width, AdderKind::KoggeStone, false);
        let mut ks_model = AlgebraicModel::from_netlist(&ks).unwrap();
        let ks_stats = xor_rewriting(&mut ks_model, &RewriteConfig::default());
        assert!(
            ks_stats.cancelled_vanishing > rc_stats.cancelled_vanishing,
            "Kogge-Stone ({}) must produce more vanishing monomials than ripple carry ({})",
            ks_stats.cancelled_vanishing,
            rc_stats.cancelled_vanishing
        );
    }

    #[test]
    fn logic_reduction_rewriting_multiplier_verifies() {
        let nl = MultiplierSpec::parse("SP-WT-BK", 4).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let stats = logic_reduction_rewriting(&mut model, &RewriteConfig::default());
        assert!(!stats.limit_exceeded);
        let a: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = multiplier_spec(&a, &b, &s);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        let r = r.drop_multiples_of_pow2(8);
        assert!(r.is_zero(), "remainder: {}", model.render(&r));
    }

    #[test]
    fn rewriting_preserves_output_polynomials() {
        let nl = build_adder(4, AdderKind::BrentKung, false);
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        logic_reduction_rewriting(&mut model, &RewriteConfig::default());
        for &out in model.outputs() {
            assert!(
                model.tail(out).is_some(),
                "primary output {} must keep its polynomial",
                model.name(out)
            );
        }
    }

    #[test]
    fn term_limit_marks_partial_rewrite() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 8).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig {
            max_terms: 3,
            ..RewriteConfig::default()
        };
        let stats = fanout_rewriting(&mut model, &config);
        assert!(stats.limit_exceeded);
    }

    #[test]
    fn cancelled_token_aborts_rewriting() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 6).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let token = DeadlineToken::new();
        token.cancel();
        let config = RewriteConfig {
            cancel: token,
            ..RewriteConfig::default()
        };
        let stats = fanout_rewriting(&mut model, &config);
        assert!(stats.limit_exceeded, "cancelled pass must stop early");
        assert_eq!(stats.substitutions, 0);
    }

    #[test]
    fn common_rewriting_reduces_model_size() {
        let nl = MultiplierSpec::parse("SP-CT-BK", 4).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig::default();
        xor_rewriting(&mut model, &config);
        let before = model.num_polynomials();
        common_rewriting(&mut model, &config);
        assert!(model.num_polynomials() <= before);
    }

    #[test]
    fn indexed_rewriting_matches_the_scan_oracle() {
        // Full-coverage pinning lives in tests/rewrite_equivalence.rs; this
        // is the crate-level smoke for the same contract. `closure: false`
        // selects the tracker predicate, the byte-identical mode.
        let nl = MultiplierSpec::parse("SP-WT-BK", 4).unwrap().build();
        let base = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig {
            rules: VanishingRules {
                closure: false,
                ..VanishingRules::default()
            },
            ..RewriteConfig::default()
        };
        let mut oracle = base.clone();
        logic_reduction_rewriting(&mut oracle, &config);
        let mut indexed = base.clone();
        let stats = indexed_logic_reduction_rewriting(&mut indexed, &config, Some(8));
        assert!(!stats.limit_exceeded);
        assert!(stats.index_hits > 0);
        assert!(stats.columns_retired > 0);
        assert_eq!(oracle.polynomial_order(), indexed.polynomial_order());
        for v in oracle.polynomial_order() {
            let want = oracle.tail(v).unwrap().mod_coeffs_pow2(8);
            let got = indexed.tail(v).unwrap().mod_coeffs_pow2(8);
            assert_eq!(
                want.num_terms(),
                got.num_terms(),
                "tail of {}",
                oracle.name(v)
            );
            for (m, c) in want.iter() {
                assert_eq!(&got.coeff(m), c, "tail of {} diverges", oracle.name(v));
            }
        }
    }

    /// The default closure mode cancels at least as much as the tracker
    /// mode, produces a model that is no larger, and still reduces to
    /// remainder zero — the verdict-preservation half of the dual-mode
    /// contract (the byte-identity half is the test above).
    #[test]
    fn closure_mode_rewriting_cancels_more_and_still_verifies() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 4).unwrap().build();
        let base = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker_config = RewriteConfig {
            rules: VanishingRules {
                closure: false,
                ..VanishingRules::default()
            },
            ..RewriteConfig::default()
        };
        let mut tracked = base.clone();
        let t_stats = indexed_logic_reduction_rewriting(&mut tracked, &tracker_config, Some(8));
        let mut closed = base.clone();
        let c_stats =
            indexed_logic_reduction_rewriting(&mut closed, &RewriteConfig::default(), Some(8));
        assert!(!t_stats.limit_exceeded && !c_stats.limit_exceeded);
        // Note: the cancellation *count* is not comparable across modes —
        // the closure kills residuals before their products ever form, so
        // fewer cancellation events can mean more cancellation.
        assert!(c_stats.cancelled_vanishing > 0);
        assert!(
            c_stats.peak_terms <= t_stats.peak_terms,
            "closure peak ({}) must not exceed the tracker peak ({})",
            c_stats.peak_terms,
            t_stats.peak_terms
        );
        let model_terms = |m: &AlgebraicModel| -> usize {
            m.polynomial_order()
                .into_iter()
                .map(|v| m.tail(v).unwrap().num_terms())
                .sum()
        };
        assert!(model_terms(&closed) <= model_terms(&tracked));
        let a: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = multiplier_spec(&a, &b, &s);
        let (r, outcome, _) = GbReduction::default().reduce(&closed, &spec);
        assert!(outcome.is_completed());
        assert!(
            r.drop_multiples_of_pow2(8).is_zero(),
            "closure-mode rewrite must preserve the verdict"
        );
    }

    #[test]
    fn cancelled_token_aborts_indexed_rewriting() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 6).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let token = DeadlineToken::new();
        token.cancel();
        let config = RewriteConfig {
            cancel: token,
            ..RewriteConfig::default()
        };
        let stats = indexed_logic_reduction_rewriting(&mut model, &config, Some(12));
        assert!(stats.limit_exceeded, "cancelled pass must stop early");
        assert_eq!(stats.substitutions, 0);
    }

    #[test]
    fn term_limit_marks_partial_indexed_rewrite() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 8).unwrap().build();
        let mut model = AlgebraicModel::from_netlist(&nl).unwrap();
        let config = RewriteConfig {
            max_terms: 3,
            ..RewriteConfig::default()
        };
        let stats = indexed_logic_reduction_rewriting(&mut model, &config, Some(16));
        assert!(stats.limit_exceeded);
    }
}
