//! Gröbner basis reduction (Algorithm 1 of the paper).
//!
//! The specification polynomial is divided by the circuit model: every
//! iteration substitutes one gate-output variable by the tail of its gate
//! polynomial, following the reverse topological substitution order. Because
//! every model polynomial has the shape `-v + tail(v)` and the leading
//! monomials are relatively prime, the S-polynomial step degenerates into
//! variable substitution ([`gbmv_poly::Polynomial::substitute`]).
//!
//! The reduction tracks the statistics the paper reports (peak intermediate
//! size, number of substitutions, run time) and supports resource limits so
//! that intentionally diverging configurations (e.g. MT-FO on a Kogge-Stone
//! multiplier) terminate with [`ReductionOutcome::LimitExceeded`] instead of
//! exhausting memory.
//!
//! Two engines live here: the scan-based reference [`GbReduction`] (kept
//! deliberately simple — it is the differential oracle the indexed engines
//! are pinned against) and [`IndexedReduction`], the single-threaded preset
//! of the incremental indexed engine shared with [`crate::parallel`].

use std::time::{Duration, Instant};

use gbmv_poly::{FastMap, Polynomial, Var};

use crate::budget::DeadlineToken;
use crate::model::AlgebraicModel;
use crate::vanishing::VanishingTracker;

/// Why a reduction run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionOutcome {
    /// All substitutions were performed; the remainder is final.
    Completed,
    /// The intermediate polynomial exceeded the configured term limit.
    LimitExceeded {
        /// Number of terms when the limit was hit.
        terms: usize,
    },
    /// The configured wall-clock budget (or the cancellation token's
    /// deadline) was exhausted.
    TimedOut,
    /// The cancellation token was cancelled from outside (e.g. another
    /// portfolio strategy finished first).
    Cancelled,
}

impl ReductionOutcome {
    /// Returns `true` if the reduction ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, ReductionOutcome::Completed)
    }
}

/// Statistics of one Gröbner basis reduction run.
#[derive(Debug, Clone, Default)]
pub struct ReductionStats {
    /// Number of variable substitutions performed.
    pub substitutions: usize,
    /// Peak number of terms of the intermediate remainder.
    pub peak_terms: usize,
    /// Number of terms of the final remainder (before modulo reduction).
    pub final_terms: usize,
    /// Number of monomials removed by the vanishing rules *during the
    /// reduction* (the reduction-phase share of `#CVM`; zero unless
    /// [`GbReduction::reduce_with_vanishing`] is used).
    pub cancelled_vanishing: u64,
    /// Number of terms the indexed engines retrieved through the inverted
    /// var→term index (one per extracted term; zero for the scan-based
    /// reference engine).
    pub index_hits: u64,
    /// Number of output columns that lost their last tracked-variable
    /// occurrence during an indexed reduction (their remaining terms are
    /// input-only and retire out of the indexed hot path; zero for the
    /// scan-based reference engine).
    pub columns_retired: usize,
    /// Wall-clock time of the reduction.
    pub elapsed: Duration,
}

/// The Gröbner basis reduction engine.
#[derive(Debug, Clone)]
pub struct GbReduction {
    /// Abort when the intermediate remainder exceeds this many terms.
    pub max_terms: usize,
    /// Abort when the reduction exceeds this wall-clock budget.
    pub timeout: Duration,
    /// Cooperative cancellation: the reduction returns
    /// [`ReductionOutcome::Cancelled`] (explicit cancel) or
    /// [`ReductionOutcome::TimedOut`] (deadline) at the next substitution
    /// after the token expires. The default token never expires.
    pub cancel: DeadlineToken,
    /// When set, drop terms whose coefficient is a multiple of `2^k` after
    /// every substitution instead of only at the end.
    ///
    /// For a `mod 2^k` specification this is sound — substitution maps every
    /// term to a sum of terms whose coefficients are multiples of the
    /// original coefficient, so divisibility by `2^k` is preserved and the
    /// dropped terms can never influence the final remainder mod `2^k`. For
    /// Booth and redundant-binary circuits it is also what keeps the
    /// intermediate remainder small: their bit-level implementations are only
    /// congruent (not equal) to the product, and without intermediate modular
    /// dropping the congruence excess accumulates millions of terms that the
    /// final `drop_multiples_of_pow2` would erase anyway.
    pub modulus_bits: Option<u32>,
}

impl Default for GbReduction {
    fn default() -> Self {
        GbReduction {
            max_terms: 5_000_000,
            timeout: Duration::from_secs(3600),
            cancel: DeadlineToken::new(),
            modulus_bits: None,
        }
    }
}

impl GbReduction {
    /// Creates a reduction engine with explicit limits.
    pub fn new(max_terms: usize, timeout: Duration) -> Self {
        GbReduction {
            max_terms,
            timeout,
            ..GbReduction::default()
        }
    }

    /// Enables intermediate `mod 2^k` coefficient dropping (see
    /// [`GbReduction::modulus_bits`]).
    pub fn with_modulus(mut self, k: u32) -> Self {
        self.modulus_bits = Some(k);
        self
    }

    /// Installs a cooperative cancellation token (see [`GbReduction::cancel`]).
    pub fn with_token(mut self, token: DeadlineToken) -> Self {
        self.cancel = token;
        self
    }

    /// Reduces (divides) `spec` with respect to the model. Returns the
    /// remainder, the outcome and the collected statistics.
    ///
    /// Because every model polynomial has the shape `-v + tail(v)` with
    /// `tail(v)` over variables strictly lower in the topological order, the
    /// substitution system is terminating and confluent: the remainder does
    /// not depend on the substitution order. The engine exploits that freedom
    /// and greedily substitutes the variable with the smallest estimated
    /// growth (`occurrences × (tail size - 1)`) first, which keeps the
    /// intermediate remainder orders of magnitude smaller than the fixed
    /// reverse-topological order on deep parallel-prefix carry networks
    /// (Kogge-Stone / Han-Carlson).
    ///
    /// The remainder only mentions primary-input variables when the outcome
    /// is [`ReductionOutcome::Completed`] and the model still contains a
    /// polynomial for every internal variable of `spec`'s cone.
    pub fn reduce(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        self.reduce_greedy_inner(model, spec, None)
    }

    /// Like [`GbReduction::reduce`] but applying the structural vanishing
    /// rules after every substitution. At the synthesized gate level the
    /// reduction can re-create vanishing monomials by multiplying tails of
    /// different (individually clean) model polynomials; removing them here
    /// is the same logic reduction the paper applies during rewriting and is
    /// what keeps redundant-binary trees and wide parallel-prefix adders from
    /// blowing up during Step 3. The monomials removed are added to the
    /// tracker's cancelled count (`#CVM`).
    pub fn reduce_with_vanishing(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        tracker: &mut VanishingTracker,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        self.reduce_greedy_inner(model, spec, Some(tracker))
    }

    /// Like [`GbReduction::reduce`] but with an explicit substitution order,
    /// used by the tests that reproduce the paper's worked examples.
    pub fn reduce_with_order(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        order: &[Var],
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        self.reduce_inner(model, spec, order, None)
    }

    /// Greedy-order reduction: repeatedly substitutes the present variable
    /// with the smallest estimated term growth. See [`GbReduction::reduce`]
    /// for why the order is free.
    fn reduce_greedy_inner(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        mut tracker: Option<&mut VanishingTracker>,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let start = Instant::now();
        let mut stats = ReductionStats::default();
        let mut r = spec.clone();
        let mut scratch = Polynomial::zero();
        let mut occurrences: FastMap<Var, usize> = FastMap::default();
        stats.peak_terms = r.num_terms();
        loop {
            // Count, per substitutable variable, the number of terms it
            // appears in. One pass over the remainder per step — the same
            // asymptotic cost as the substitution itself.
            occurrences.clear();
            for (m, _) in r.iter() {
                for u in m.vars() {
                    if !model.is_input(u) && model.tail(u).is_some() {
                        *occurrences.entry(u).or_insert(0) += 1;
                    }
                }
            }
            // Only variables of the highest present logic level are eligible:
            // any lower-level substitution could be undone by a later
            // higher-level one (tails only mention strictly lower levels), so
            // restricting to the top level guarantees every variable is
            // substituted at most once, exactly like the reverse topological
            // order. Within the level the order is free; take the smallest
            // estimated growth (`occurrences x (tail size - 1)`), tie-broken
            // by variable index for determinism.
            let top_level = occurrences.keys().map(|&u| model.level(u)).max();
            let candidate = occurrences
                .iter()
                .filter(|(&u, _)| Some(model.level(u)) == top_level)
                .map(|(&u, &occ)| {
                    let tail_terms = model.tail(u).map(Polynomial::num_terms).unwrap_or(0);
                    (occ * tail_terms.saturating_sub(1), u.0)
                })
                .min();
            let v = match candidate {
                Some((_, idx)) => Var(idx),
                None => break,
            };
            let tail = model.tail(v).expect("candidate has a tail");
            r.substitute_into(v, tail, &mut scratch);
            std::mem::swap(&mut r, &mut scratch);
            stats.substitutions += 1;
            if let Some(t) = tracker.as_deref_mut() {
                stats.cancelled_vanishing += t.apply(&mut r) as u64;
            }
            if let Some(k) = self.modulus_bits {
                r.retain_non_multiples_of_pow2(k);
            }
            stats.peak_terms = stats.peak_terms.max(r.num_terms());
            if r.num_terms() > self.max_terms {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (
                    r,
                    ReductionOutcome::LimitExceeded {
                        terms: stats.peak_terms,
                    },
                    stats,
                );
            }
            if self.cancel.is_cancelled() {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (r, ReductionOutcome::Cancelled, stats);
            }
            if start.elapsed() > self.timeout || self.cancel.deadline_expired() {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (r, ReductionOutcome::TimedOut, stats);
            }
        }
        stats.final_terms = r.num_terms();
        stats.elapsed = start.elapsed();
        (r, ReductionOutcome::Completed, stats)
    }

    fn reduce_inner(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        order: &[Var],
        mut tracker: Option<&mut VanishingTracker>,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let start = Instant::now();
        let mut stats = ReductionStats::default();
        let mut r = spec.clone();
        // Scratch polynomial reused across every substitution of the run.
        let mut scratch = Polynomial::zero();
        stats.peak_terms = r.num_terms();
        for &v in order {
            if model.is_input(v) {
                continue;
            }
            if !r.contains_var(v) {
                continue;
            }
            let tail = match model.tail(v) {
                Some(t) => t,
                None => continue,
            };
            r.substitute_into(v, tail, &mut scratch);
            std::mem::swap(&mut r, &mut scratch);
            stats.substitutions += 1;
            if let Some(t) = tracker.as_deref_mut() {
                stats.cancelled_vanishing += t.apply(&mut r) as u64;
            }
            if let Some(k) = self.modulus_bits {
                r.retain_non_multiples_of_pow2(k);
            }
            stats.peak_terms = stats.peak_terms.max(r.num_terms());
            if r.num_terms() > self.max_terms {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (
                    r,
                    ReductionOutcome::LimitExceeded {
                        terms: stats.peak_terms,
                    },
                    stats,
                );
            }
            if self.cancel.is_cancelled() {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (r, ReductionOutcome::Cancelled, stats);
            }
            if start.elapsed() > self.timeout || self.cancel.deadline_expired() {
                stats.final_terms = r.num_terms();
                stats.elapsed = start.elapsed();
                return (r, ReductionOutcome::TimedOut, stats);
            }
        }
        stats.final_terms = r.num_terms();
        stats.elapsed = start.elapsed();
        (r, ReductionOutcome::Completed, stats)
    }
}

/// A [`crate::ReductionStrategy`] running the whole specification through
/// the fused incremental engine of [`crate::parallel`] on a single worker:
/// the working remainder lives in a [`gbmv_poly::IndexedPolynomial`] (inverted
/// var→term index, canonical `mod 2^k` coefficients, retirement of
/// fully-substituted terms) and vanishing is checked through the
/// unit-propagation closure index ([`crate::ClosureVanishing`]).
///
/// The preset [`crate::Method::MtLrIdx`] pairs this engine with
/// logic-reduction rewriting. The greedy candidate rule is the same as
/// [`GbReduction`]'s, so for completed runs the remainder (and hence verdict
/// and counterexample) is identical — the engines differ only in per-step
/// cost. With [`IndexedReduction::column_order`] ties additionally break
/// toward the lowest output column; the normal form is order-independent
/// (the model is a Gröbner basis), so this changes intermediate sizes, never
/// results.
#[derive(Debug, Clone, Copy)]
pub struct IndexedReduction {
    /// Apply the structural vanishing rules (closure index) during the
    /// reduction (required for the logic-reduction methods).
    pub vanishing: bool,
    /// Break greedy ties toward the variable reaching the lowest output
    /// column so low columns retire early.
    pub column_order: bool,
}

impl Default for IndexedReduction {
    fn default() -> Self {
        IndexedReduction {
            vanishing: true,
            column_order: true,
        }
    }
}

impl crate::strategy::ReductionStrategy for IndexedReduction {
    fn name(&self) -> &str {
        if self.vanishing {
            "indexed+vanishing"
        } else {
            "indexed"
        }
    }

    fn reduce(
        &self,
        model: &AlgebraicModel,
        spec: &Polynomial,
        modulus_bits: Option<u32>,
        ctx: &crate::strategy::PhaseContext,
    ) -> (Polynomial, ReductionOutcome, ReductionStats) {
        let start = Instant::now();
        let vanish = self
            .vanishing
            .then(|| crate::vanishing::ClosureVanishing::new(model, ctx.rules))
            .filter(crate::vanishing::ClosureVanishing::enabled);
        let engine = crate::parallel::FusedReduction {
            model,
            vanish: vanish.as_ref(),
            modulus_bits,
            max_terms: ctx.budget.max_terms,
            token: &ctx.token,
            shard_threads: 1,
            column_order: self.column_order,
        };
        let (r, outcome, mut stats) = engine.reduce(spec);
        // A mid-step token stop reports `Cancelled` even when the deadline
        // (not an explicit cancel) fired; normalize like the session driver.
        let outcome = if matches!(outcome, ReductionOutcome::Cancelled)
            && !ctx.token.is_cancelled()
            && ctx.token.deadline_expired()
        {
            ReductionOutcome::TimedOut
        } else {
            outcome
        };
        stats.elapsed = start.elapsed();
        (r, outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_netlist::Netlist;
    use gbmv_poly::spec::{adder_spec, full_adder_spec};
    use gbmv_poly::{Int, Monomial};

    fn full_adder_netlist() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let x = nl.xor2(a, b, "x");
        let s = nl.xor2(x, cin, "s");
        let d = nl.and2(a, b, "d");
        let t = nl.and2(x, cin, "t");
        let c = nl.or2(d, t, "c");
        nl.add_output("s", s);
        nl.add_output("c", c);
        nl
    }

    /// Example 1 of the paper: reducing the full adder specification
    /// `-2c - s + cin + b + a` by the circuit model gives remainder 0.
    #[test]
    fn full_adder_reduces_to_zero() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let var = |name: &str| Var(nl.find_net(name).unwrap().0);
        let spec = full_adder_spec(var("a"), var("b"), var("cin"), var("s"), var("c"));
        let (r, outcome, stats) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(
            r.is_zero(),
            "remainder must vanish, got {}",
            model.render(&r)
        );
        assert_eq!(stats.substitutions, 5);
        assert!(stats.peak_terms >= 5);
    }

    #[test]
    fn faulty_full_adder_has_nonzero_remainder() {
        let mut nl = Netlist::new("fa_bad");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let x = nl.xor2(a, b, "x");
        let s = nl.xor2(x, cin, "s");
        let d = nl.and2(a, b, "d");
        let t = nl.or2(x, cin, "t"); // BUG: should be AND
        let c = nl.or2(d, t, "c");
        nl.add_output("s", s);
        nl.add_output("c", c);
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let var = |name: &str| Var(nl.find_net(name).unwrap().0);
        let spec = full_adder_spec(var("a"), var("b"), var("cin"), var("s"), var("c"));
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(!r.is_zero(), "buggy adder must not verify");
        // The remainder only mentions primary inputs.
        for v in r.vars() {
            assert!(model.is_input(v), "remainder must be over inputs only");
        }
    }

    /// A 3-bit ripple carry adder verifies without any rewriting (the circuit
    /// of Example 2, on the raw gate-level model).
    #[test]
    fn ripple_carry_adder_3bit_reduces_to_zero() {
        let nl = gbmv_genmul::build_adder(3, gbmv_genmul::AdderKind::RippleCarry, false);
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let a: Vec<Var> = (0..3)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..3)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    /// A Kogge-Stone adder also reduces to zero on the raw model at small
    /// width (the blow-up only bites at larger widths / multipliers).
    #[test]
    fn kogge_stone_adder_4bit_reduces_to_zero() {
        let nl = gbmv_genmul::build_adder(4, gbmv_genmul::AdderKind::KoggeStone, false);
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let a: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..4)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = adder_spec(&a, &b, &s, None);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }

    #[test]
    fn term_limit_aborts_reduction() {
        let nl = gbmv_genmul::MultiplierSpec::parse("SP-WT-KS", 8)
            .unwrap()
            .build();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let a: Vec<Var> = (0..8)
            .map(|i| Var(nl.find_net(&format!("a{i}")).unwrap().0))
            .collect();
        let b: Vec<Var> = (0..8)
            .map(|i| Var(nl.find_net(&format!("b{i}")).unwrap().0))
            .collect();
        let s: Vec<Var> = nl.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let spec = gbmv_poly::spec::multiplier_spec(&a, &b, &s);
        let engine = GbReduction::new(50, Duration::from_secs(60));
        let (_, outcome, stats) = engine.reduce(&model, &spec);
        assert!(matches!(outcome, ReductionOutcome::LimitExceeded { .. }));
        assert!(stats.peak_terms > 50);
    }

    #[test]
    fn explicit_order_matches_default_for_full_adder() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let var = |name: &str| Var(nl.find_net(name).unwrap().0);
        let spec = full_adder_spec(var("a"), var("b"), var("cin"), var("s"), var("c"));
        let order = model.substitution_order();
        let (r1, o1, _) = GbReduction::default().reduce(&model, &spec);
        let (r2, o2, _) = GbReduction::default().reduce_with_order(&model, &spec, &order);
        assert_eq!(r1, r2);
        assert!(o1.is_completed() && o2.is_completed());
    }

    #[test]
    fn constant_gates_are_substituted() {
        let mut nl = Netlist::new("const");
        let a = nl.add_input("a");
        let zero = nl.const0("zero");
        let z = nl.or2(a, zero, "z");
        nl.add_output("z", z);
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        // spec: z - a == 0.
        let spec = Polynomial::from_terms(vec![
            (Monomial::var(Var(z.0)), Int::from(-1)),
            (Monomial::var(Var(a.0)), Int::one()),
        ]);
        let (r, outcome, _) = GbReduction::default().reduce(&model, &spec);
        assert!(outcome.is_completed());
        assert!(r.is_zero());
    }
}
