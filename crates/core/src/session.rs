//! The verification session: one extracted model, pluggable phase strategies,
//! explicit budgets, structured progress reporting.
//!
//! [`Session`] is the primary entry point of this crate. A session is created
//! by [extracting](Session::extract) the algebraic model of a netlist once
//! (fallibly — a combinational cycle is an error, not a panic), then
//! configured with a [`Spec`], a strategy (a [`Method`] preset or custom
//! [`RewriteStrategy`]/[`ReductionStrategy`] implementations), a [`Budget`]
//! and an optional [`Progress`] observer, and finally [run](Session::run):
//!
//! ```
//! use gbmv_core::{Method, Session, Spec};
//! use gbmv_genmul::MultiplierSpec;
//!
//! let netlist = MultiplierSpec::parse("SP-WT-CL", 4).unwrap().build();
//! let report = Session::extract(&netlist)?
//!     .spec(Spec::multiplier(4))
//!     .strategy(Method::MtLr)
//!     .run()?;
//! assert!(report.outcome.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::time::{Duration, Instant};

use gbmv_netlist::Netlist;
use gbmv_poly::Polynomial;

use crate::budget::{Budget, DeadlineToken};
use crate::counterexample::{find_assignment, ground_assignment, Counterexample};
use crate::model::{AlgebraicModel, ExtractError};
use crate::reduction::{ReductionOutcome, ReductionStats};
use crate::rewrite::RewriteStats;
use crate::spec::{Spec, SpecError};
use crate::strategy::{Method, PhaseContext, ReductionStrategy, RewriteStrategy};
use crate::vanishing::VanishingRules;

/// The phases of a verification run, as reported by [`Progress`] events and
/// [`Outcome::ResourceLimit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Step 2: Gröbner basis rewriting of the model.
    Rewrite,
    /// Steps 3/4: Gröbner basis reduction of the specification.
    Reduce,
    /// Counterexample search after a non-zero remainder.
    Counterexample,
    /// The SAT miter baseline (portfolio runs only).
    Sat,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Rewrite => "rewriting",
            Phase::Reduce => "reduction",
            Phase::Counterexample => "counterexample",
            Phase::Sat => "sat",
        })
    }
}

/// A structured progress event, delivered to the observer installed with
/// [`Session::observer`]. This replaces the old `GBMV_TIMING` environment
/// variable: phase timings are pushed to the observer instead of printed to
/// stderr.
#[derive(Debug, Clone)]
pub enum Progress {
    /// A phase is about to start.
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// A phase finished (successfully or by hitting a limit).
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Wall-clock time the phase took.
        elapsed: Duration,
    },
    /// Index statistics of an indexed rewrite phase, delivered right after
    /// its [`Progress::PhaseFinished`] event. Only emitted when the rewrite
    /// strategy actually went through the inverted var→term index (the
    /// scan-based strategies produce no such event, so existing observers
    /// of the default presets see an unchanged sequence).
    RewriteIndexStats {
        /// Peak number of terms of any tail during rewriting.
        peak_terms: usize,
        /// Terms retrieved through the inverted var→term index.
        index_hits: u64,
        /// Output columns completed by the rewrite passes.
        columns_retired: usize,
    },
}

/// The verdict of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The remainder is zero: the circuit implements the specification.
    Verified,
    /// The remainder is non-zero: the circuit does not implement the
    /// specification.
    Mismatch {
        /// Number of terms of the (modulo-reduced) remainder (zero when the
        /// mismatch was established by the SAT baseline).
        remainder_terms: usize,
        /// A concrete input assignment exposing the mismatch, if one was
        /// found.
        counterexample: Option<Counterexample>,
    },
    /// The run exceeded the term or time budget before finishing — the
    /// analogue of "TO" in the paper's tables.
    ResourceLimit {
        /// Which phase hit the limit.
        phase: Phase,
    },
    /// The run was cancelled through its [`DeadlineToken`] (e.g. another
    /// portfolio strategy won the race).
    Cancelled,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Outcome::Verified)
    }

    /// Returns `true` for [`Outcome::Mismatch`].
    pub fn is_mismatch(&self) -> bool {
        matches!(self, Outcome::Mismatch { .. })
    }

    /// Returns `true` for [`Outcome::ResourceLimit`].
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, Outcome::ResourceLimit { .. })
    }

    /// Returns `true` for a definitive verdict ([`Outcome::Verified`] or
    /// [`Outcome::Mismatch`]) as opposed to a resource limit or cancellation.
    pub fn is_definitive(&self) -> bool {
        matches!(self, Outcome::Verified | Outcome::Mismatch { .. })
    }
}

/// Detailed statistics of one verification run; the columns of Table III.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Rewriting statistics.
    pub rewrite: RewriteStats,
    /// Gröbner basis reduction statistics.
    pub reduction: ReductionStats,
    /// `#P`: polynomials in the model after rewriting.
    pub model_polynomials: usize,
    /// `#M`: monomials in the model after rewriting.
    pub model_monomials: usize,
    /// `#MP`: maximum polynomial size (monomials).
    pub max_polynomial_terms: usize,
    /// `#VM`: maximum monomial size (variables).
    pub max_monomial_vars: usize,
    /// End-to-end wall-clock time of the run (rewriting + reduction +
    /// counterexample search).
    pub total_time: Duration,
}

impl RunStats {
    /// `#CVM`: total number of monomials removed by the vanishing rules,
    /// across the rewriting and reduction phases.
    pub fn cancelled_vanishing(&self) -> u64 {
        self.rewrite.cancelled_vanishing + self.reduction.cancelled_vanishing
    }

    /// Peak intermediate polynomial size over the rewriting and reduction
    /// phases.
    pub fn peak_terms(&self) -> usize {
        self.rewrite.peak_terms.max(self.reduction.peak_terms)
    }
}

/// The result of a verification run: verdict plus statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// Display name of the strategy that produced this report (e.g. `MT-LR`,
    /// `CEC`, or `rewrite+reduction` for custom strategy pairs).
    pub strategy: String,
    /// The verdict.
    pub outcome: Outcome,
    /// Detailed statistics.
    pub stats: RunStats,
}

/// Why a session (or portfolio) could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`Session::run`] was called without a [`Session::spec`].
    MissingSpec,
    /// The specification does not fit the netlist interface.
    Spec(SpecError),
    /// [`crate::Portfolio::run_all`]/[`crate::Portfolio::race`] was called
    /// with no strategies added.
    NoStrategies,
    /// The SAT miter baseline only supports unsigned multiplier
    /// specifications (it checks against a golden array multiplier).
    SatBaselineUnsupported {
        /// The offending specification's display name.
        spec: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingSpec => {
                write!(f, "no specification: call Session::spec before run")
            }
            SessionError::Spec(err) => write!(f, "{err}"),
            SessionError::NoStrategies => {
                write!(f, "portfolio has no strategies: add a method or baseline")
            }
            SessionError::SatBaselineUnsupported { spec } => {
                write!(
                    f,
                    "the SAT miter baseline checks against a golden multiplier and \
                     does not support specification `{spec}`"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Spec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SpecError> for SessionError {
    fn from(err: SpecError) -> Self {
        SessionError::Spec(err)
    }
}

/// A boxed progress observer, as installed by [`Session::observer`].
type ObserverBox = Box<dyn FnMut(&Progress)>;

/// Extracts the algebraic model plus the primary-input names of a netlist —
/// the shared Step 1 of [`Session::extract`], [`crate::Portfolio::extract`]
/// and [`crate::Verifier::new`].
pub(crate) fn extract_model(
    netlist: &Netlist,
) -> Result<(AlgebraicModel, Vec<String>), ExtractError> {
    let model = AlgebraicModel::from_netlist(netlist)?;
    let input_names = netlist
        .inputs()
        .iter()
        .map(|&n| netlist.net_name(n).to_string())
        .collect();
    Ok((model, input_names))
}

/// Context needed to ground a counterexample: the pristine model, the input
/// names, and (when known) the specification for the expected output word.
pub(crate) struct CexContext<'a> {
    pub model: &'a AlgebraicModel,
    pub input_names: &'a [String],
    pub spec: Option<&'a Spec>,
}

/// The shared verification pipeline: Step 2 (rewriting) on a clone of the
/// model, Steps 3/4 (reduction and the zero test), then the counterexample
/// search. Used by [`Session::run`], the [`crate::Portfolio`] entries and the
/// legacy [`crate::Verifier`].
#[allow(clippy::too_many_arguments)] // internal plumbing shared by Session, Portfolio, Verifier
pub(crate) fn run_pipeline(
    strategy_name: String,
    base: &AlgebraicModel,
    spec_poly: &Polynomial,
    modulus_bits: Option<u32>,
    rewrite: &dyn RewriteStrategy,
    reduction: &dyn ReductionStrategy,
    ctx: &PhaseContext,
    cex: Option<&CexContext<'_>>,
    observer: &mut dyn FnMut(&Progress),
) -> Report {
    let start = Instant::now();
    let mut stats = RunStats::default();
    let mut model = base.clone();
    // Install the run's modulus into the context: rewrite strategies that
    // store canonical mod-2^k coefficients (the indexed rewriter) read it
    // from there, while reduction strategies receive it explicitly.
    let ctx = &PhaseContext {
        modulus_bits,
        ..ctx.clone()
    };

    observer(&Progress::PhaseStarted {
        phase: Phase::Rewrite,
    });
    // The pipeline measures phase times itself so observer events stay
    // trustworthy even for custom strategies that leave the stats' elapsed
    // fields at zero.
    let phase_start = Instant::now();
    stats.rewrite = rewrite.rewrite(&mut model, ctx);
    let rewrite_elapsed = phase_start.elapsed();
    if stats.rewrite.elapsed.is_zero() {
        stats.rewrite.elapsed = rewrite_elapsed;
    }
    observer(&Progress::PhaseFinished {
        phase: Phase::Rewrite,
        elapsed: rewrite_elapsed,
    });
    if stats.rewrite.index_hits > 0 {
        observer(&Progress::RewriteIndexStats {
            peak_terms: stats.rewrite.peak_terms,
            index_hits: stats.rewrite.index_hits,
            columns_retired: stats.rewrite.columns_retired,
        });
    }
    stats.model_polynomials = model.num_polynomials();
    stats.model_monomials = model.num_monomials();
    stats.max_polynomial_terms = model.max_polynomial_terms();
    stats.max_monomial_vars = model.max_monomial_vars();
    if stats.rewrite.limit_exceeded {
        stats.total_time = start.elapsed();
        let outcome = if ctx.token.is_cancelled() {
            Outcome::Cancelled
        } else {
            Outcome::ResourceLimit {
                phase: Phase::Rewrite,
            }
        };
        return Report {
            strategy: strategy_name,
            outcome,
            stats,
        };
    }

    observer(&Progress::PhaseStarted {
        phase: Phase::Reduce,
    });
    let phase_start = Instant::now();
    let (remainder, reduction_outcome, reduction_stats) =
        reduction.reduce(&model, spec_poly, modulus_bits, ctx);
    let reduce_elapsed = phase_start.elapsed();
    stats.reduction = reduction_stats;
    if stats.reduction.elapsed.is_zero() {
        stats.reduction.elapsed = reduce_elapsed;
    }
    observer(&Progress::PhaseFinished {
        phase: Phase::Reduce,
        elapsed: reduce_elapsed,
    });
    match reduction_outcome {
        ReductionOutcome::Completed => {}
        // A term-limit stop is a genuine divergence even when the shared
        // token was cancelled in the meantime (race losers must not mask a
        // blow-up as a cancellation).
        ReductionOutcome::LimitExceeded { .. } => {
            stats.total_time = start.elapsed();
            return Report {
                strategy: strategy_name,
                outcome: Outcome::ResourceLimit {
                    phase: Phase::Reduce,
                },
                stats,
            };
        }
        // Time-based stops are disambiguated by the token: an explicit
        // cancel is `Cancelled`, a deadline expiry is a resource limit. The
        // same normalization applies to custom strategies that map deadline
        // expiry onto `Cancelled`.
        ReductionOutcome::Cancelled | ReductionOutcome::TimedOut => {
            stats.total_time = start.elapsed();
            let outcome = if ctx.token.is_cancelled() {
                Outcome::Cancelled
            } else {
                Outcome::ResourceLimit {
                    phase: Phase::Reduce,
                }
            };
            return Report {
                strategy: strategy_name,
                outcome,
                stats,
            };
        }
    }

    // Canonicalize the remainder modulo 2^k (not just drop zero terms): the
    // fully reduced remainder is the unique multilinear normal form of the
    // spec over the primary inputs, but engines that drop 2^k-multiples at
    // different moments (whole-spec vs. per-cone reduction) can end with
    // coefficients differing by multiples of 2^k. Reducing every coefficient
    // into [0, 2^k) makes the reported remainder — and therefore the
    // counterexample search — bit-identical across reduction strategies.
    let remainder = match modulus_bits {
        Some(k) => remainder.mod_coeffs_pow2(k),
        None => remainder,
    };
    let outcome = if remainder.is_zero() {
        Outcome::Verified
    } else {
        let counterexample = cex.and_then(|cex| {
            observer(&Progress::PhaseStarted {
                phase: Phase::Counterexample,
            });
            let search_start = Instant::now();
            let found = find_assignment(cex.model, &remainder, modulus_bits)
                .map(|values| ground_assignment(cex.model, cex.input_names, cex.spec, &values));
            observer(&Progress::PhaseFinished {
                phase: Phase::Counterexample,
                elapsed: search_start.elapsed(),
            });
            found
        });
        Outcome::Mismatch {
            remainder_terms: remainder.num_terms(),
            counterexample,
        }
    };
    stats.total_time = start.elapsed();
    Report {
        strategy: strategy_name,
        outcome,
        stats,
    }
}

/// A verification session: one extracted algebraic model plus the
/// configuration needed to run a strategy against it.
///
/// Built with a consuming builder API (see the module docs); after a
/// run the session can be reconfigured (e.g. a different
/// [strategy](Session::strategy)) and run again without re-extracting the
/// model.
pub struct Session {
    model: AlgebraicModel,
    input_names: Vec<String>,
    spec: Option<Spec>,
    rules: VanishingRules,
    rewrite: Box<dyn RewriteStrategy>,
    reduction: Box<dyn ReductionStrategy>,
    strategy_name: Option<String>,
    budget: Budget,
    token: Option<DeadlineToken>,
    observer: Option<ObserverBox>,
    counterexamples: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("spec", &self.spec.as_ref().map(Spec::name))
            .field("strategy", &self.strategy_name())
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Extracts the algebraic model of the netlist (Step 1 of the MT
    /// algorithm) and returns a session configured with the defaults: the
    /// MT-LR strategy, the default [`Budget`], counterexample extraction on.
    ///
    /// Fails with [`ExtractError::CombinationalCycle`] on cyclic netlists.
    pub fn extract(netlist: &Netlist) -> Result<Session, ExtractError> {
        let (model, input_names) = extract_model(netlist)?;
        Ok(Session::from_model(model, input_names))
    }

    /// Wraps an already-extracted model (advanced; prefer
    /// [`Session::extract`]). `input_names` must parallel the model's
    /// primary-input variables in declaration order.
    pub fn from_model(model: AlgebraicModel, input_names: Vec<String>) -> Session {
        Session {
            model,
            input_names,
            spec: None,
            rules: VanishingRules::default(),
            rewrite: Method::MtLr.rewrite_strategy(),
            reduction: Method::MtLr.reduction_strategy(),
            strategy_name: Some(Method::MtLr.name().to_string()),
            budget: Budget::default(),
            token: None,
            observer: None,
            counterexamples: true,
        }
    }

    /// Sets the specification to verify against.
    pub fn spec(mut self, spec: Spec) -> Session {
        self.spec = Some(spec);
        self
    }

    /// Selects a preset strategy pair (one of the paper's methods).
    pub fn strategy(mut self, method: Method) -> Session {
        self.rewrite = method.rewrite_strategy();
        self.reduction = method.reduction_strategy();
        self.strategy_name = Some(method.name().to_string());
        self
    }

    /// Installs a custom Step-2 rewrite strategy (replacing the preset's).
    pub fn rewrite_strategy(mut self, strategy: impl RewriteStrategy + 'static) -> Session {
        self.rewrite = Box::new(strategy);
        self.strategy_name = None;
        self
    }

    /// Installs a custom Step-3/4 reduction strategy (replacing the
    /// preset's).
    pub fn reduction_strategy(mut self, strategy: impl ReductionStrategy + 'static) -> Session {
        self.reduction = Box::new(strategy);
        self.strategy_name = None;
        self
    }

    /// Sets the resource budget of the run.
    pub fn budget(mut self, budget: Budget) -> Session {
        self.budget = budget;
        self
    }

    /// Sets the structural vanishing rules (used by the XOR/logic-reduction
    /// strategies; the ablation study disables them).
    pub fn rules(mut self, rules: VanishingRules) -> Session {
        self.rules = rules;
        self
    }

    /// Installs an external cancellation token. When set it replaces the
    /// token derived from the budget deadline, so the caller owns both
    /// cancellation and the deadline.
    pub fn cancel_token(mut self, token: DeadlineToken) -> Session {
        self.token = Some(token);
        self
    }

    /// Installs a [`Progress`] observer receiving phase start/finish events.
    pub fn observer(mut self, observer: impl FnMut(&Progress) + 'static) -> Session {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Enables or disables the counterexample search on mismatch (on by
    /// default; benchmarks turn it off).
    pub fn counterexamples(mut self, enabled: bool) -> Session {
        self.counterexamples = enabled;
        self
    }

    /// The extracted algebraic model.
    pub fn model(&self) -> &AlgebraicModel {
        &self.model
    }

    /// Primary input net names in declaration order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The display name of the configured strategy: a preset name like
    /// `MT-LR`, or `<rewrite>+<reduction>` (e.g. `logic-reduction+greedy`)
    /// when individual strategies were installed.
    pub fn strategy_name(&self) -> String {
        match &self.strategy_name {
            Some(name) => name.clone(),
            None => format!("{}+{}", self.rewrite.name(), self.reduction.name()),
        }
    }

    /// Runs the configured strategy against the configured specification.
    ///
    /// Fails with [`SessionError::MissingSpec`] when no spec was set and
    /// [`SessionError::Spec`] when the spec does not fit the netlist
    /// interface. Resource exhaustion and cancellation are *outcomes*
    /// ([`Outcome::ResourceLimit`], [`Outcome::Cancelled`]), not errors.
    pub fn run(&mut self) -> Result<Report, SessionError> {
        let spec = self.spec.clone().ok_or(SessionError::MissingSpec)?;
        let (spec_poly, modulus_bits) = spec.instantiate(&self.model)?;
        let strategy_name = self.strategy_name();
        let token = match &self.token {
            Some(token) => token.clone(),
            None => self.budget.token(),
        };
        let ctx = PhaseContext {
            budget: self.budget,
            token,
            rules: self.rules,
            modulus_bits,
        };
        let cex_ctx = CexContext {
            model: &self.model,
            input_names: &self.input_names,
            spec: Some(&spec),
        };
        let mut noop = |_: &Progress| {};
        let observer: &mut dyn FnMut(&Progress) = match &mut self.observer {
            Some(observer) => observer.as_mut(),
            None => &mut noop,
        };
        Ok(run_pipeline(
            strategy_name,
            &self.model,
            &spec_poly,
            modulus_bits,
            self.rewrite.as_ref(),
            self.reduction.as_ref(),
            &ctx,
            self.counterexamples.then_some(&cex_ctx),
            observer,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};
    use gbmv_netlist::fault::distinguishable_mutant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn session(arch: &str, width: usize) -> Session {
        let nl = MultiplierSpec::parse(arch, width).unwrap().build();
        Session::extract(&nl).unwrap().spec(Spec::multiplier(width))
    }

    #[test]
    fn mt_lr_verifies_simple_multiplier() {
        let report = session("SP-AR-RC", 4).strategy(Method::MtLr).run().unwrap();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.stats.model_polynomials > 0);
        assert_eq!(report.strategy, "MT-LR");
    }

    #[test]
    fn mt_fo_verifies_array_multiplier() {
        let report = session("SP-AR-RC", 4).strategy(Method::MtFo).run().unwrap();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn sessions_rerun_with_different_strategies() {
        let mut s = session("BP-WT-CL", 4);
        let lr = s.run().unwrap();
        assert!(lr.outcome.is_verified());
        s = s.strategy(Method::MtNaive);
        let naive = s.run().unwrap();
        assert!(naive.outcome.is_verified());
        assert_eq!(naive.strategy, "MT");
    }

    #[test]
    fn missing_spec_is_an_error() {
        let nl = MultiplierSpec::parse("SP-AR-RC", 4).unwrap().build();
        let mut s = Session::extract(&nl).unwrap();
        assert_eq!(s.run().unwrap_err(), SessionError::MissingSpec);
    }

    #[test]
    fn interface_mismatch_is_an_error_not_a_panic() {
        let mut s = session("SP-AR-RC", 4).spec(Spec::multiplier(8));
        match s.run().unwrap_err() {
            SessionError::Spec(SpecError::InterfaceMismatch { spec, .. }) => {
                assert_eq!(spec, "mul8u");
            }
            other => panic!("expected interface mismatch, got {other:?}"),
        }
    }

    #[test]
    fn faulty_multiplier_is_rejected_with_grounded_counterexample() {
        let nl = MultiplierSpec::parse("SP-WT-BK", 4).unwrap().build();
        let mut rng = StdRng::seed_from_u64(99);
        let (_fault, mutant) = distinguishable_mutant(&nl, 100, &mut rng).expect("mutant");
        let report = Session::extract(&mutant)
            .unwrap()
            .spec(Spec::multiplier(4))
            .strategy(Method::MtLr)
            .run()
            .unwrap();
        match &report.outcome {
            Outcome::Mismatch {
                remainder_terms,
                counterexample,
            } => {
                assert!(*remainder_terms > 0);
                let cex = counterexample.as_ref().expect("counterexample found");
                let a = cex.operand("a").expect("operand a");
                let b = cex.operand("b").expect("operand b");
                // The typed counterexample carries the two evaluated output
                // words, and they must disagree.
                let got = cex.circuit_word.expect("circuit word");
                let want = cex.expected_word.expect("expected word");
                assert_ne!(got, want, "counterexample must expose the bug");
                assert_eq!(want, (a * b) % 256);
                // Cross-check against netlist simulation.
                assert_eq!(got, mutant.evaluate_words(&[a, b], &[4, 4]));
                // Ordered input assignment covers the full interface.
                assert_eq!(cex.inputs.len(), 8);
                assert_eq!(cex.inputs[0].name, "a0");
                assert!(cex.to_string().contains("specification expects"));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn adder_verification_all_architectures() {
        for kind in AdderKind::all() {
            let nl = build_adder(6, kind, false);
            let report = Session::extract(&nl)
                .unwrap()
                .spec(Spec::adder(6))
                .run()
                .unwrap();
            assert!(
                report.outcome.is_verified(),
                "{kind:?} adder failed: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn adder_with_carry_in_verifies() {
        let nl = build_adder(4, AdderKind::BrentKung, true);
        let report = Session::extract(&nl)
            .unwrap()
            .spec(Spec::adder_with_carry_in(4))
            .run()
            .unwrap();
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn stats_report_vanishing_monomials_for_prefix_architectures() {
        let report = session("SP-CT-KS", 4).run().unwrap();
        assert!(report.outcome.is_verified());
        assert!(
            report.stats.cancelled_vanishing() > 0,
            "Kogge-Stone multiplier must exhibit vanishing monomials"
        );
    }

    fn event_line(p: &Progress) -> String {
        match p {
            Progress::PhaseStarted { phase } => format!("start {phase}"),
            Progress::PhaseFinished { phase, .. } => format!("finish {phase}"),
            Progress::RewriteIndexStats {
                peak_terms,
                index_hits,
                columns_retired,
            } => format!("rewrite-index {peak_terms} {index_hits} {columns_retired}"),
        }
    }

    #[test]
    fn observer_sees_phase_events() {
        let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        let report = session("SP-AR-RC", 4)
            .observer(move |p| sink.borrow_mut().push(event_line(p)))
            .run()
            .unwrap();
        assert!(report.outcome.is_verified());
        let events = events.borrow();
        // The default preset rewrites with the scan-based engine: no index
        // stats event interleaves with the pinned phase sequence.
        assert_eq!(
            *events,
            vec![
                "start rewriting",
                "finish rewriting",
                "start reduction",
                "finish reduction"
            ]
        );
    }

    #[test]
    fn indexed_rewrite_reports_index_stats_to_the_observer() {
        let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        let report = session("SP-CT-KS", 4)
            .strategy(Method::MtLrIdx)
            .observer(move |p| sink.borrow_mut().push(event_line(p)))
            .run()
            .unwrap();
        assert!(report.outcome.is_verified());
        assert!(report.stats.rewrite.index_hits > 0);
        assert!(report.stats.rewrite.columns_retired > 0);
        let events = events.borrow();
        assert_eq!(events[0], "start rewriting");
        assert_eq!(events[1], "finish rewriting");
        assert!(
            events[2].starts_with("rewrite-index "),
            "the index stats event must follow the rewrite phase: {events:?}"
        );
    }

    #[test]
    fn cancelled_token_yields_cancelled_outcome() {
        let token = DeadlineToken::new();
        token.cancel();
        let report = session("SP-WT-KS", 8)
            .strategy(Method::MtNaive)
            .cancel_token(token)
            .run()
            .unwrap();
        assert_eq!(report.outcome, Outcome::Cancelled);
    }

    #[test]
    fn signed_spec_rejects_unsigned_multiplier() {
        let report = session("SP-AR-RC", 2)
            .spec(Spec::signed_multiplier(2))
            .run()
            .unwrap();
        match &report.outcome {
            Outcome::Mismatch { counterexample, .. } => {
                let cex = counterexample.as_ref().expect("counterexample");
                // The words disagree precisely because the circuit computes
                // the unsigned product.
                assert_ne!(cex.circuit_word, cex.expected_word);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn custom_polynomial_spec_runs() {
        // z = a & b: spec -z + a*b over the model variables.
        let mut nl = gbmv_netlist::Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.and2(a, b, "z");
        nl.add_output("z", z);
        use gbmv_poly::{Int, Monomial, Polynomial, Var};
        let poly = Polynomial::from_terms(vec![
            (Monomial::var(Var(z.0)), Int::from(-1)),
            (Monomial::from_vars(vec![Var(a.0), Var(b.0)]), Int::one()),
        ]);
        let report = Session::extract(&nl)
            .unwrap()
            .spec(Spec::polynomial("and-gate", poly))
            .strategy(Method::MtNaive)
            .run()
            .unwrap();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }
}
