//! Typed counterexamples for rejected circuits.
//!
//! When the remainder of the Gröbner basis reduction is non-zero, the session
//! searches for a concrete input assignment on which the remainder evaluates
//! to a non-zero value and packages it as a [`Counterexample`]: the ordered
//! input assignment, the operand words the specification sees, and the two
//! evaluated output words (what the circuit produces vs. what the
//! specification demands).

use gbmv_poly::{Int, Polynomial, Var};

use crate::model::AlgebraicModel;
use crate::spec::Spec;

/// One primary-input assignment of a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBit {
    /// The net name of the primary input.
    pub name: String,
    /// The assigned value.
    pub value: bool,
}

/// A concrete input assignment exposing a specification mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Input assignments in primary-input declaration order.
    pub inputs: Vec<InputBit>,
    /// Operand words of the specification (e.g. `a` and `b` for a
    /// multiplier), empty for custom polynomial specifications.
    pub operands: Vec<(String, u128)>,
    /// The output word the circuit actually computes on these inputs
    /// (`None` when the output interface is wider than 128 bits).
    pub circuit_word: Option<u128>,
    /// The output word the specification demands (`None` for custom
    /// polynomial specifications).
    pub expected_word: Option<u128>,
}

impl Counterexample {
    /// The assigned value of the input named `name`, if it is a primary
    /// input.
    pub fn value(&self, name: &str) -> Option<bool> {
        self.inputs
            .iter()
            .find(|bit| bit.name == name)
            .map(|bit| bit.value)
    }

    /// The operand word labelled `label` (e.g. `"a"`), if known.
    pub fn operand(&self, label: &str) -> Option<u128> {
        self.operands
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, w)| w)
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.operands.is_empty() {
            let assignment: Vec<String> = self
                .inputs
                .iter()
                .map(|bit| format!("{}={}", bit.name, u8::from(bit.value)))
                .collect();
            write!(f, "{}", assignment.join(" "))?;
        } else {
            let words: Vec<String> = self
                .operands
                .iter()
                .map(|(l, w)| format!("{l}={w}"))
                .collect();
            write!(f, "{}", words.join(", "))?;
        }
        match (self.circuit_word, self.expected_word) {
            (Some(got), Some(want)) => {
                write!(f, ": circuit outputs {got}, specification expects {want}")
            }
            (Some(got), None) => write!(f, ": circuit outputs {got}"),
            _ => Ok(()),
        }
    }
}

/// Builds a [`Counterexample`] from a concrete assignment of the primary
/// inputs (declaration order), grounding the output words by evaluating the
/// pristine model.
pub(crate) fn ground_assignment(
    model: &AlgebraicModel,
    input_names: &[String],
    spec: Option<&Spec>,
    values: &[bool],
) -> Counterexample {
    let inputs: Vec<InputBit> = input_names
        .iter()
        .zip(values)
        .map(|(name, &value)| InputBit {
            name: name.clone(),
            value,
        })
        .collect();
    let model_inputs = model.inputs();
    let assignment = |v: Var| {
        model_inputs
            .iter()
            .position(|&u| u == v)
            .map(|i| values[i])
            .unwrap_or(false)
    };
    let output_bits = model.evaluate(&assignment);
    let circuit_word = if output_bits.len() <= 128 {
        Some(
            output_bits
                .iter()
                .enumerate()
                .fold(0u128, |acc, (i, &b)| acc | (u128::from(b) << i)),
        )
    } else {
        None
    };
    let (operands, expected_word) = match spec {
        Some(s) => (s.operand_words(values), s.expected_word(values)),
        None => (Vec::new(), None),
    };
    Counterexample {
        inputs,
        operands,
        circuit_word,
        expected_word,
    }
}

/// Searches for an input assignment on which the remainder evaluates to a
/// value that is non-zero (modulo `2^k` if given). Returns the assignment in
/// primary-input declaration order.
///
/// The search is heuristic (monomial supports, pseudo-random patterns, then
/// exhaustive for small interfaces); a non-zero remainder whose witnesses are
/// sparse may legitimately return `None`.
pub(crate) fn find_assignment(
    model: &AlgebraicModel,
    remainder: &Polynomial,
    modulus_bits: Option<u32>,
) -> Option<Vec<bool>> {
    let inputs = model.inputs().to_vec();
    let nonzero = |value: &Int| match modulus_bits {
        Some(k) => !value.is_multiple_of_pow2(k),
        None => !value.is_zero(),
    };
    let to_values = |assignment: &dyn Fn(Var) -> bool| -> Vec<bool> {
        inputs.iter().map(|&v| assignment(v)).collect()
    };
    // Heuristic 1: for each monomial (smallest degree first), set exactly its
    // variables to one.
    let mut monomials: Vec<_> = remainder.iter().map(|(m, _)| m.clone()).collect();
    monomials.sort_by_key(|m| m.degree());
    for m in monomials.iter().take(64) {
        let assignment = |v: Var| m.contains(v);
        if nonzero(&remainder.eval_bool(&assignment)) {
            return Some(to_values(&assignment));
        }
    }
    // Heuristic 2: deterministic pseudo-random assignments.
    let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
    for _ in 0..256 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let bits = seed;
        let assignment = |v: Var| {
            let idx = inputs.iter().position(|&u| u == v).unwrap_or(0);
            (bits >> (idx % 64)) & 1 == 1
        };
        if nonzero(&remainder.eval_bool(&assignment)) {
            return Some(to_values(&assignment));
        }
    }
    // Heuristic 3: exhaustive for small interfaces.
    if inputs.len() <= 16 {
        for pattern in 0u32..(1u32 << inputs.len()) {
            let assignment = |v: Var| {
                let idx = inputs.iter().position(|&u| u == v).unwrap_or(0);
                (pattern >> idx) & 1 == 1
            };
            if nonzero(&remainder.eval_bool(&assignment)) {
                return Some(to_values(&assignment));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_operands() {
        let cex = Counterexample {
            inputs: vec![
                InputBit {
                    name: "a0".into(),
                    value: true,
                },
                InputBit {
                    name: "b0".into(),
                    value: true,
                },
            ],
            operands: vec![("a".to_string(), 1), ("b".to_string(), 1)],
            circuit_word: Some(0),
            expected_word: Some(1),
        };
        assert_eq!(
            cex.to_string(),
            "a=1, b=1: circuit outputs 0, specification expects 1"
        );
        assert_eq!(cex.value("a0"), Some(true));
        assert_eq!(cex.value("zzz"), None);
        assert_eq!(cex.operand("b"), Some(1));
    }

    #[test]
    fn display_without_operands() {
        let cex = Counterexample {
            inputs: vec![InputBit {
                name: "x".into(),
                value: false,
            }],
            operands: Vec::new(),
            circuit_word: Some(3),
            expected_word: None,
        };
        assert_eq!(cex.to_string(), "x=0: circuit outputs 3");
    }
}
