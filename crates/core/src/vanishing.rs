use gbmv_netlist::GateKind;
use gbmv_poly::{FastMap, Monomial, Polynomial, Var};

use crate::model::AlgebraicModel;

/// Which structural zero-product rules are applied while rewriting.
///
/// The paper's rule is `xor_and`: a monomial containing both `a ⊕ b` and
/// `a ∧ b` always evaluates to zero. The `xor_both_inputs` extension
/// (`(a⊕b)·a·b = 0`) is enabled by default because at the synthesized gate
/// level the AND output is frequently substituted (inlined to `a·b`) before
/// the paired XOR variable enters the same monomial; matching the inlined
/// form is required to catch those vanishing monomials and is semantically
/// the same rule. The `xor_nor` extension is disabled by default and exposed
/// for the ablation study.
///
/// The `closure` flag upgrades the indexed engines ([`ClosureVanishing`])
/// from the fixed gate-pair patterns to assumption-closure matching: every
/// variable's unit-propagation consequences are precomputed, so 3-input XOR
/// chains (`sum = (a⊕b)⊕c`), majority/carry gates (the `t·d` product of
/// every full-adder carry OR), and inverter chains all cancel before they
/// inflate the term table. [`VanishingTracker`], which backs the reference
/// MT-LR strategy, ignores the flag and keeps matching the paper's exact
/// rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VanishingRules {
    /// `(a ⊕ b) · (a ∧ b) = 0` — the XOR-AND rule of the paper.
    pub xor_and: bool,
    /// `(a ⊕ b) · a · b = 0` — extension using the XOR inputs directly.
    pub xor_both_inputs: bool,
    /// `(a ⊕ b) · (a NOR b) = 0` — extension for NOR-based carry logic.
    pub xor_nor: bool,
    /// Assumption-closure matching in the indexed engines: detect any
    /// monomial whose variables force contradictory values by unit
    /// propagation (covers XOR chains, full-adder carry products, and
    /// complement pairs). Also selects the indexed *rewriter's* vanishing
    /// predicate: closure when set, the tracker's pattern rules — the
    /// byte-identical-to-the-scan-oracle differential mode — when clear.
    /// Ignored by [`VanishingTracker`] itself.
    pub closure: bool,
}

impl Default for VanishingRules {
    fn default() -> Self {
        VanishingRules {
            xor_and: true,
            xor_both_inputs: true,
            xor_nor: false,
            closure: true,
        }
    }
}

impl VanishingRules {
    /// Every rule enabled (used by the ablation benches).
    pub fn all() -> Self {
        VanishingRules {
            xor_and: true,
            xor_both_inputs: true,
            xor_nor: true,
            closure: true,
        }
    }

    /// Every rule disabled (logic reduction off; degenerates MT-LR into plain
    /// XOR + common rewriting).
    pub fn none() -> Self {
        VanishingRules {
            xor_and: false,
            xor_both_inputs: false,
            xor_nor: false,
            closure: false,
        }
    }
}

/// An index over the structural gate definitions that answers "does this
/// monomial contain a pair of variables that makes it vanish?" quickly.
///
/// The tracker also counts how many monomials it removed (`#CVM` in
/// Table III of the paper).
#[derive(Debug)]
pub struct VanishingTracker {
    rules: VanishingRules,
    /// AND outputs by their (sorted) input pair.
    and_outputs: FastMap<(Var, Var), Vec<Var>>,
    /// NOR outputs by their (sorted) input pair.
    nor_outputs: FastMap<(Var, Var), Vec<Var>>,
    /// For every variable that is the output of a 2-input XOR gate, its input
    /// pair.
    xor_inputs: FastMap<Var, (Var, Var)>,
    cancelled: u64,
}

impl VanishingTracker {
    /// Builds the tracker from the structural gate information of a model.
    pub fn new(model: &AlgebraicModel, rules: VanishingRules) -> Self {
        let mut and_outputs: FastMap<(Var, Var), Vec<Var>> = FastMap::default();
        let mut nor_outputs: FastMap<(Var, Var), Vec<Var>> = FastMap::default();
        let mut xor_inputs = FastMap::default();
        for (&out, gf) in model.gate_functions() {
            if gf.inputs.len() != 2 {
                continue;
            }
            let pair = (gf.inputs[0], gf.inputs[1]);
            match gf.kind {
                GateKind::Xor => {
                    xor_inputs.insert(out, pair);
                }
                GateKind::And => {
                    and_outputs.entry(pair).or_default().push(out);
                }
                GateKind::Nor => {
                    nor_outputs.entry(pair).or_default().push(out);
                }
                _ => {}
            }
        }
        VanishingTracker {
            rules,
            and_outputs,
            nor_outputs,
            xor_inputs,
            cancelled: 0,
        }
    }

    /// The number of monomials removed so far (`#CVM`).
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Whether any of the tracker's pattern rules is switched on; when this
    /// is `false`, [`VanishingTracker::apply`] is a no-op.
    pub fn enabled(&self) -> bool {
        self.rules.xor_and || self.rules.xor_both_inputs || self.rules.xor_nor
    }

    /// Returns `true` if the monomial is structurally guaranteed to evaluate
    /// to zero under every consistent circuit assignment.
    pub fn monomial_vanishes(&self, monomial: &Monomial) -> bool {
        if monomial.degree() < 2 {
            return false;
        }
        for v in monomial.vars() {
            if let Some(&(a, b)) = self.xor_inputs.get(&v) {
                if self.rules.xor_and {
                    if let Some(ands) = self.and_outputs.get(&(a, b)) {
                        if ands.iter().any(|w| *w != v && monomial.contains(*w)) {
                            return true;
                        }
                    }
                }
                if self.rules.xor_both_inputs && monomial.contains(a) && monomial.contains(b) {
                    return true;
                }
                if self.rules.xor_nor {
                    if let Some(nors) = self.nor_outputs.get(&(a, b)) {
                        if nors.iter().any(|w| *w != v && monomial.contains(*w)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Removes all vanishing monomials from the polynomial in place,
    /// returning the number of removed terms (`XORAND-Rule(r)` in
    /// Algorithm 2 of the paper).
    pub fn apply(&mut self, p: &mut Polynomial) -> usize {
        if !(self.rules.xor_and || self.rules.xor_both_inputs || self.rules.xor_nor) {
            return 0;
        }
        let removed = p.retain_terms(|m| !self.monomial_vanishes(m));
        self.cancelled += removed as u64;
        removed
    }

    /// Exposes the XOR pairs index size, useful for reporting.
    pub fn xor_gate_count(&self) -> usize {
        self.xor_inputs.len()
    }
}

/// Maximum number of propagated facts per variable closure; truncation only
/// weakens the rule (fewer detections), never its soundness.
const CLOSURE_FACT_CAP: usize = 48;

/// The assumption-closure vanishing index used by the indexed reduction
/// engines.
///
/// For every variable `v` it precomputes the unit-propagation consequences
/// of assuming `v = 1`: the set of variables forced to 1 and the set forced
/// to 0 (through AND/OR/NAND/NOR/NOT/BUF gates, and through 2-input
/// XOR/XNOR gates once one input value is known). A monomial evaluates to
/// zero on every consistent circuit assignment — and can be removed without
/// changing the reduction's final remainder — when the union of its
/// variables' consequence sets is contradictory:
///
/// * some variable is forced both to 1 and to 0 (complement pairs, inverter
///   chains), or
/// * an XOR output forced to 1 has both inputs forced to the same value
///   (subsumes the paper's XOR-AND rule and its both-inputs/NOR variants,
///   and catches the `t·d` carry product of every full-adder: `t = x∧c`
///   forces `x = a⊕b` to 1 while `d = a∧b` forces both of its inputs), or
/// * an XNOR output forced to 1 has its inputs forced to opposite values.
///
/// With [`VanishingRules::closure`] disabled the consequence sets are
/// limited to direct gate propagation (depth 1) and only the classically
/// gated XOR rules fire, reproducing the fixed-pattern behaviour for the
/// ablation study.
///
/// Queries write epoch stamps into a caller-owned [`VanishScratch`], so one
/// immutable index is shared across worker threads. The engine's inner loop
/// checks products `tm · rest` for a fixed `rest`; [`ClosureVanishing::set_rest`]
/// marks the rest's consequences once and
/// [`ClosureVanishing::rest_union_vanishes`] layers each tail monomial on
/// top without recomputing them.
#[derive(Debug)]
pub struct ClosureVanishing {
    var_count: usize,
    /// Variables forced to 1 when the indexed variable is 1 (includes the
    /// variable itself).
    forced1: Vec<Vec<Var>>,
    /// Variables forced to 0 when the indexed variable is 1.
    forced0: Vec<Vec<Var>>,
    /// `v = 1` is contradictory on its own: the variable is identically 0.
    always_zero: Vec<bool>,
    /// Input pairs of 2-input XOR gates, by output variable.
    xor_pair: Vec<Option<(Var, Var)>>,
    /// Input pairs of 2-input XNOR gates, by output variable.
    xnor_pair: Vec<Option<(Var, Var)>>,
    use_conflict: bool,
    use_xor11: bool,
    use_xor00: bool,
    use_xnor: bool,
}

/// Per-worker scratch space for [`ClosureVanishing`] queries: epoch-stamped
/// membership arrays, so clearing between queries is O(1).
#[derive(Debug, Clone)]
pub struct VanishScratch {
    /// Epoch at which each variable was last forced to 1.
    stamp1: Vec<u64>,
    /// Epoch at which each variable was last forced to 0.
    stamp0: Vec<u64>,
    /// Monotone clock; stamps are valid iff they equal `base` or `cur`.
    clock: u64,
    /// Epoch of the persistent "rest" marks.
    base: u64,
    /// Epoch of the current union query's marks.
    cur: u64,
    /// XOR/XNOR outputs forced to 1 by the rest monomial.
    rest_xor: Vec<Var>,
    /// XOR/XNOR outputs forced to 1 by the current union query.
    cur_xor: Vec<Var>,
}

impl VanishScratch {
    fn in1(&self, v: Var) -> bool {
        let s = self.stamp1[v.index()];
        s == self.base || s == self.cur
    }

    fn in0(&self, v: Var) -> bool {
        let s = self.stamp0[v.index()];
        s == self.base || s == self.cur
    }
}

impl ClosureVanishing {
    /// Builds the index from the structural gate information of a model.
    pub fn new(model: &AlgebraicModel, rules: VanishingRules) -> Self {
        let var_count = model.var_count();
        let gfs = model.gate_functions();
        let mut xor_pair = vec![None; var_count];
        let mut xnor_pair = vec![None; var_count];
        for (&out, gf) in gfs {
            if gf.inputs.len() == 2 {
                let pair = (gf.inputs[0], gf.inputs[1]);
                match gf.kind {
                    GateKind::Xor => xor_pair[out.index()] = Some(pair),
                    GateKind::Xnor => xnor_pair[out.index()] = Some(pair),
                    _ => {}
                }
            }
        }
        let deep = rules.closure;
        let mut forced1 = vec![Vec::new(); var_count];
        let mut forced0 = vec![Vec::new(); var_count];
        let mut always_zero = vec![false; var_count];
        for v in 0..var_count {
            let (pos, neg, contradiction) = closure_of(gfs, Var(v as u32), deep);
            forced1[v] = pos;
            forced0[v] = neg;
            always_zero[v] = contradiction;
        }
        ClosureVanishing {
            var_count,
            forced1,
            forced0,
            always_zero,
            xor_pair,
            xnor_pair,
            use_conflict: rules.closure,
            use_xor11: rules.closure || rules.xor_and || rules.xor_both_inputs,
            use_xor00: rules.closure || rules.xor_nor,
            use_xnor: rules.closure,
        }
    }

    /// `false` when every rule is disabled, letting callers skip the checks
    /// entirely.
    pub fn enabled(&self) -> bool {
        self.use_conflict || self.use_xor11 || self.use_xor00 || self.use_xnor
    }

    /// Allocates a scratch sized for this index; one per worker thread.
    pub fn scratch(&self) -> VanishScratch {
        VanishScratch {
            stamp1: vec![0; self.var_count],
            stamp0: vec![0; self.var_count],
            clock: 0,
            base: u64::MAX,
            cur: u64::MAX,
            rest_xor: Vec::new(),
            cur_xor: Vec::new(),
        }
    }

    /// Whether the monomial is structurally guaranteed to evaluate to zero
    /// under every consistent circuit assignment.
    pub fn vanishes(&self, m: &Monomial, s: &mut VanishScratch) -> bool {
        self.set_rest(m, s)
    }

    /// Marks the consequence closure of `rest` as the persistent base for
    /// subsequent [`Self::rest_union_vanishes`] calls, and reports whether
    /// `rest` on its own already vanishes (callers then skip the whole
    /// expansion).
    pub fn set_rest(&self, rest: &Monomial, s: &mut VanishScratch) -> bool {
        if !self.enabled() {
            return false;
        }
        s.clock += 1;
        s.base = s.clock;
        s.cur = s.base;
        s.rest_xor.clear();
        s.cur_xor.clear();
        for v in rest.vars() {
            if self.mark_var(v, Epoch::Base, s) {
                return true;
            }
        }
        self.xor_rules_fire(s)
    }

    /// Whether `tm · rest` vanishes, for the `rest` installed by the last
    /// [`Self::set_rest`] call on this scratch.
    pub fn rest_union_vanishes(&self, tm: &Monomial, s: &mut VanishScratch) -> bool {
        if !self.enabled() {
            return false;
        }
        s.clock += 1;
        s.cur = s.clock;
        s.cur_xor.clear();
        for v in tm.vars() {
            if self.mark_var(v, Epoch::Cur, s) {
                return true;
            }
        }
        self.xor_rules_fire(s)
    }

    /// Marks the consequences of `v = 1`; returns `true` on a detected
    /// contradiction (under the enabled rules).
    fn mark_var(&self, v: Var, epoch: Epoch, s: &mut VanishScratch) -> bool {
        let i = v.index();
        if i >= self.var_count {
            return false;
        }
        if self.use_conflict && self.always_zero[i] {
            return true;
        }
        let e = match epoch {
            Epoch::Base => s.base,
            Epoch::Cur => s.cur,
        };
        for &w in &self.forced1[i] {
            if self.use_conflict && s.in0(w) {
                return true;
            }
            if !s.in1(w) {
                s.stamp1[w.index()] = e;
                if self.xor_pair[w.index()].is_some() || self.xnor_pair[w.index()].is_some() {
                    match epoch {
                        Epoch::Base => s.rest_xor.push(w),
                        Epoch::Cur => s.cur_xor.push(w),
                    }
                }
            }
        }
        for &w in &self.forced0[i] {
            if self.use_conflict && s.in1(w) {
                return true;
            }
            if !s.in0(w) {
                s.stamp0[w.index()] = e;
            }
        }
        false
    }

    /// Applies the XOR/XNOR contradiction rules over every XOR-ish output
    /// currently forced to 1.
    fn xor_rules_fire(&self, s: &VanishScratch) -> bool {
        for &x in s.rest_xor.iter().chain(&s.cur_xor) {
            if let Some((a, b)) = self.xor_pair[x.index()] {
                if self.use_xor11 && s.in1(a) && s.in1(b) {
                    return true;
                }
                if self.use_xor00 && s.in0(a) && s.in0(b) {
                    return true;
                }
            }
            if self.use_xnor {
                if let Some((a, b)) = self.xnor_pair[x.index()] {
                    if (s.in1(a) && s.in0(b)) || (s.in0(a) && s.in1(b)) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Which epoch new stamps belong to.
enum Epoch {
    Base,
    Cur,
}

/// Unit-propagation closure of the single assumption `seed = 1`: the
/// variables forced to 1 and to 0, and whether the assumption is
/// self-contradictory. With `deep = false` only the seed's own gate
/// semantics are expanded (depth 1); with `deep = true` derived facts
/// propagate to a fixpoint, with XOR/XNOR gates re-examined as their input
/// values become known.
fn closure_of(
    gfs: &FastMap<Var, crate::model::GateFunction>,
    seed: Var,
    deep: bool,
) -> (Vec<Var>, Vec<Var>, bool) {
    let mut pos = vec![seed];
    let mut neg: Vec<Var> = Vec::new();
    let mut contradiction = false;
    // (variable, value, derived) — derived facts are only expanded in deep
    // mode.
    let mut queue: Vec<(Var, bool, bool)> = vec![(seed, true, false)];
    let add = |pos: &mut Vec<Var>,
               neg: &mut Vec<Var>,
               queue: &mut Vec<(Var, bool, bool)>,
               contradiction: &mut bool,
               w: Var,
               val: bool| {
        let (mine, other) = if val {
            (&mut *pos, &mut *neg)
        } else {
            (&mut *neg, &mut *pos)
        };
        if other.contains(&w) {
            *contradiction = true;
            return;
        }
        if mine.contains(&w) || mine.len() + other.len() >= CLOSURE_FACT_CAP {
            return;
        }
        mine.push(w);
        queue.push((w, val, true));
    };
    loop {
        while let Some((u, val, derived)) = queue.pop() {
            if contradiction {
                return (pos, neg, true);
            }
            if derived && !deep {
                continue;
            }
            let Some(gf) = gfs.get(&u) else { continue };
            match (gf.kind, val) {
                (GateKind::And, true) | (GateKind::Nand, false) | (GateKind::Buf, true) => {
                    for &i in &gf.inputs {
                        add(&mut pos, &mut neg, &mut queue, &mut contradiction, i, true);
                    }
                }
                (GateKind::Nor, true) | (GateKind::Or, false) | (GateKind::Buf, false) => {
                    for &i in &gf.inputs {
                        add(&mut pos, &mut neg, &mut queue, &mut contradiction, i, false);
                    }
                }
                (GateKind::Not, true) => {
                    add(
                        &mut pos,
                        &mut neg,
                        &mut queue,
                        &mut contradiction,
                        gf.inputs[0],
                        false,
                    );
                }
                (GateKind::Not, false) => {
                    add(
                        &mut pos,
                        &mut neg,
                        &mut queue,
                        &mut contradiction,
                        gf.inputs[0],
                        true,
                    );
                }
                (GateKind::Const0, true) | (GateKind::Const1, false) => contradiction = true,
                _ => {}
            }
        }
        if contradiction || !deep {
            break;
        }
        // Fixpoint pass for XOR/XNOR gates whose second input value arrived
        // after the output fact was first processed.
        let val_of = |pos: &Vec<Var>, neg: &Vec<Var>, w: Var| {
            if pos.contains(&w) {
                Some(true)
            } else if neg.contains(&w) {
                Some(false)
            } else {
                None
            }
        };
        let mut derived: Vec<(Var, bool)> = Vec::new();
        for (facts, out_val) in [(&pos, true), (&neg, false)] {
            for &u in facts.iter() {
                let Some(gf) = gfs.get(&u) else { continue };
                if gf.inputs.len() != 2 {
                    continue;
                }
                let parity = match gf.kind {
                    // out = a ⊕ b: a = out ⊕ b.
                    GateKind::Xor => out_val,
                    // out = ¬(a ⊕ b): a = ¬out ⊕ b.
                    GateKind::Xnor => !out_val,
                    _ => continue,
                };
                let (a, b) = (gf.inputs[0], gf.inputs[1]);
                for (known, unknown) in [(a, b), (b, a)] {
                    if let Some(kv) = val_of(&pos, &neg, known) {
                        if val_of(&pos, &neg, unknown).is_none() {
                            derived.push((unknown, parity ^ kv));
                        }
                    }
                }
            }
        }
        for (w, val) in derived {
            add(&mut pos, &mut neg, &mut queue, &mut contradiction, w, val);
        }
        if queue.is_empty() {
            break;
        }
    }
    (pos, neg, contradiction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_netlist::Netlist;
    use gbmv_poly::Int;

    /// A tiny parallel-prefix carry structure: X = a^b, D = a&b, N = a nor b.
    fn xd_netlist() -> (Netlist, Var, Var, Var, Var, Var) {
        let mut nl = Netlist::new("xd");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b, "x");
        let d = nl.and2(a, b, "d");
        let n = nl.add_gate(GateKind::Nor, &[a, b], "n");
        let z = nl.or2(x, d, "z");
        let z2 = nl.or2(z, n, "z2");
        nl.add_output("z2", z2);
        (nl.clone(), Var(a.0), Var(b.0), Var(x.0), Var(d.0), Var(n.0))
    }

    #[test]
    fn xor_and_monomial_vanishes() {
        let (nl, _a, _b, x, d, _n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert!(tracker.monomial_vanishes(&Monomial::from_vars(vec![x, d])));
        assert!(!tracker.monomial_vanishes(&Monomial::from_vars(vec![x])));
        assert!(!tracker.monomial_vanishes(&Monomial::from_vars(vec![d])));
    }

    #[test]
    fn extended_rules_only_when_enabled() {
        let (nl, a, b, x, _d, n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let default_tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert!(default_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        assert!(!default_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, n])));
        let paper_only = VanishingRules {
            xor_and: true,
            xor_both_inputs: false,
            xor_nor: false,
            closure: false,
        };
        let paper_tracker = VanishingTracker::new(&model, paper_only);
        assert!(!paper_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        let all_tracker = VanishingTracker::new(&model, VanishingRules::all());
        assert!(all_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        assert!(all_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, n])));
        let none_tracker = VanishingTracker::new(&model, VanishingRules::none());
        assert!(!none_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, _d])));
    }

    #[test]
    fn apply_removes_and_counts() {
        let (nl, a, _b, x, d, _n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let mut tracker = VanishingTracker::new(&model, VanishingRules::default());
        let mut p = Polynomial::from_terms(vec![
            (Monomial::from_vars(vec![x, d]), Int::from(7)),
            (Monomial::from_vars(vec![x, d, a]), Int::from(-3)),
            (Monomial::from_vars(vec![x, a]), Int::from(5)),
        ]);
        let removed = tracker.apply(&mut p);
        assert_eq!(removed, 2);
        assert_eq!(tracker.cancelled(), 2);
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coeff(&Monomial::from_vars(vec![x, a])), Int::from(5));
    }

    #[test]
    fn vanishing_is_semantically_sound() {
        // Exhaustively check that monomials flagged as vanishing indeed
        // evaluate to zero under every consistent circuit assignment.
        let (nl, a, b, x, d, n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::all());
        let candidates = [
            Monomial::from_vars(vec![x, d]),
            Monomial::from_vars(vec![x, a, b]),
            Monomial::from_vars(vec![x, n]),
            Monomial::from_vars(vec![x, d, n]),
        ];
        for m in &candidates {
            assert!(tracker.monomial_vanishes(m));
            for pattern in 0..4u32 {
                let av = pattern & 1 == 1;
                let bv = pattern & 2 != 0;
                let assignment = |v: Var| {
                    if v == a {
                        av
                    } else if v == b {
                        bv
                    } else if v == x {
                        av ^ bv
                    } else if v == d {
                        av && bv
                    } else if v == n {
                        !(av || bv)
                    } else {
                        false
                    }
                };
                assert!(
                    !m.eval_bool(&assignment),
                    "monomial {m} flagged as vanishing but evaluates to 1"
                );
            }
        }
    }

    /// A full adder exactly as `gbmv_genmul` builds it: `x = a⊕b`,
    /// `sum = x⊕c`, `d = a∧b`, `t = x∧c`, `carry = d∨t`.
    fn full_adder_netlist() -> (Netlist, [Var; 8]) {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.xor2(a, b, "x");
        let sum = nl.xor2(x, c, "sum");
        let d = nl.and2(a, b, "d");
        let t = nl.and2(x, c, "t");
        let carry = nl.or2(d, t, "carry");
        nl.add_output("sum", sum);
        nl.add_output("carry", carry);
        let vars = [a, b, c, x, sum, d, t, carry].map(|n| Var(n.0));
        (nl, vars)
    }

    #[test]
    fn closure_catches_the_full_adder_carry_product() {
        // `t·d` is created by every carry OR expansion (`carry = d + t - dt`)
        // and is the dominant vanishing pattern in adder trees: t forces
        // x = a⊕b to 1 while d forces both a and b to 1.
        let (nl, [a, b, c, x, _sum, d, t, _carry]) = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let closure = ClosureVanishing::new(&model, VanishingRules::default());
        let mut s = closure.scratch();
        assert!(closure.vanishes(&Monomial::from_vars(vec![t, d]), &mut s));
        // The fixed-pattern tracker misses it: t and d share no direct pair.
        let tracker = VanishingTracker::new(&model, VanishingRules::all());
        assert!(!tracker.monomial_vanishes(&Monomial::from_vars(vec![t, d])));
        // 3-input XOR chain: sum = (a⊕b)⊕c with both of x's inputs forced.
        assert!(closure.vanishes(&Monomial::from_vars(vec![_sum, x, c]), &mut s));
        // Non-vanishing products stay.
        assert!(!closure.vanishes(&Monomial::from_vars(vec![t, a]), &mut s));
        assert!(!closure.vanishes(&Monomial::from_vars(vec![d, c]), &mut s));
        assert!(!closure.vanishes(&Monomial::from_vars(vec![a, b, c]), &mut s));
    }

    #[test]
    fn closure_rest_union_queries_match_full_queries() {
        let (nl, [a, b, _c, x, _sum, d, t, carry]) = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let closure = ClosureVanishing::new(&model, VanishingRules::default());
        let mut s = closure.scratch();
        let mut s2 = closure.scratch();
        let rest = Monomial::from_vars(vec![t]);
        assert!(!closure.set_rest(&rest, &mut s));
        for tm in [
            Monomial::from_vars(vec![d]),
            Monomial::from_vars(vec![a]),
            Monomial::from_vars(vec![a, b]),
            Monomial::from_vars(vec![carry]),
            Monomial::from_vars(vec![x]),
        ] {
            assert_eq!(
                closure.rest_union_vanishes(&tm, &mut s),
                closure.vanishes(&tm.mul(&rest), &mut s2),
                "union query diverges for {tm}"
            );
        }
    }

    #[test]
    fn closure_catches_complement_pairs() {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input("a");
        let q = nl.add_gate(GateKind::Not, &[a], "q");
        let r = nl.add_gate(GateKind::Not, &[q], "r");
        let z = nl.or2(q, r, "z");
        nl.add_output("z", z);
        let (a, q, r) = (Var(a.0), Var(q.0), Var(r.0));
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let closure = ClosureVanishing::new(&model, VanishingRules::default());
        let mut s = closure.scratch();
        // q = ¬a, r = ¬q = a: q·a and q·r are contradictory.
        assert!(closure.vanishes(&Monomial::from_vars(vec![q, a]), &mut s));
        assert!(closure.vanishes(&Monomial::from_vars(vec![q, r]), &mut s));
        assert!(!closure.vanishes(&Monomial::from_vars(vec![r, a]), &mut s));
        // Depth-1 mode cannot see through the inverter chain q·r, and with
        // every rule off nothing fires.
        let shallow = ClosureVanishing::new(
            &model,
            VanishingRules {
                closure: false,
                ..VanishingRules::all()
            },
        );
        let mut s = shallow.scratch();
        assert!(!shallow.vanishes(&Monomial::from_vars(vec![q, r]), &mut s));
        let off = ClosureVanishing::new(&model, VanishingRules::none());
        assert!(!off.enabled());
        let mut s = off.scratch();
        assert!(!off.vanishes(&Monomial::from_vars(vec![q, a]), &mut s));
    }

    #[test]
    fn closure_subsumes_the_fixed_patterns_in_depth_one_mode() {
        let (nl, a, b, x, d, n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let shallow = ClosureVanishing::new(
            &model,
            VanishingRules {
                closure: false,
                ..VanishingRules::all()
            },
        );
        let mut s = shallow.scratch();
        assert!(shallow.vanishes(&Monomial::from_vars(vec![x, d]), &mut s));
        assert!(shallow.vanishes(&Monomial::from_vars(vec![x, a, b]), &mut s));
        assert!(shallow.vanishes(&Monomial::from_vars(vec![x, n]), &mut s));
        assert!(!shallow.vanishes(&Monomial::from_vars(vec![x, a]), &mut s));
        assert!(!shallow.vanishes(&Monomial::from_vars(vec![d, n]), &mut s));
    }

    #[test]
    fn closure_vanishing_is_semantically_sound() {
        // Every monomial the closure index flags must evaluate to zero
        // under every consistent assignment of the full adder's inputs —
        // checked exhaustively over all monomials of degree ≤ 3 and all
        // 8 input patterns.
        let (nl, vars) = full_adder_netlist();
        let [a, b, c, ..] = vars;
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let closure = ClosureVanishing::new(&model, VanishingRules::all());
        let mut s = closure.scratch();
        let mut flagged = 0u32;
        for i in 0..vars.len() {
            for j in i..vars.len() {
                for k in j..vars.len() {
                    let m = Monomial::from_vars(vec![vars[i], vars[j], vars[k]]);
                    if !closure.vanishes(&m, &mut s) {
                        continue;
                    }
                    flagged += 1;
                    for pattern in 0..8u32 {
                        let (av, bv, cv) = (pattern & 1 == 1, pattern & 2 != 0, pattern & 4 != 0);
                        let xv = av ^ bv;
                        let assignment = |v: Var| {
                            [
                                av,
                                bv,
                                cv,
                                xv,
                                xv ^ cv,
                                av && bv,
                                xv && cv,
                                (av && bv) || (xv && cv),
                            ][vars.iter().position(|&u| u == v).unwrap()]
                        };
                        assert!(
                            !m.eval_bool(&assignment),
                            "monomial {m} flagged as vanishing but evaluates to 1 \
                             at a={av} b={bv} c={cv}"
                        );
                    }
                }
            }
        }
        // The index does flag real patterns (t·d among them), and inputs
        // alone are never flagged.
        assert!(flagged > 0);
        assert!(!closure.vanishes(&Monomial::from_vars(vec![a, b, c]), &mut s));
    }

    #[test]
    fn xor_gate_count_reported() {
        let (nl, ..) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert_eq!(tracker.xor_gate_count(), 1);
    }
}
