use gbmv_netlist::GateKind;
use gbmv_poly::{FastMap, Monomial, Polynomial, Var};

use crate::model::AlgebraicModel;

/// Which structural zero-product rules are applied while rewriting.
///
/// The paper's rule is `xor_and`: a monomial containing both `a ⊕ b` and
/// `a ∧ b` always evaluates to zero. The `xor_both_inputs` extension
/// (`(a⊕b)·a·b = 0`) is enabled by default because at the synthesized gate
/// level the AND output is frequently substituted (inlined to `a·b`) before
/// the paired XOR variable enters the same monomial; matching the inlined
/// form is required to catch those vanishing monomials and is semantically
/// the same rule. The `xor_nor` extension is disabled by default and exposed
/// for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VanishingRules {
    /// `(a ⊕ b) · (a ∧ b) = 0` — the XOR-AND rule of the paper.
    pub xor_and: bool,
    /// `(a ⊕ b) · a · b = 0` — extension using the XOR inputs directly.
    pub xor_both_inputs: bool,
    /// `(a ⊕ b) · (a NOR b) = 0` — extension for NOR-based carry logic.
    pub xor_nor: bool,
}

impl Default for VanishingRules {
    fn default() -> Self {
        VanishingRules {
            xor_and: true,
            xor_both_inputs: true,
            xor_nor: false,
        }
    }
}

impl VanishingRules {
    /// Every rule enabled (used by the ablation benches).
    pub fn all() -> Self {
        VanishingRules {
            xor_and: true,
            xor_both_inputs: true,
            xor_nor: true,
        }
    }

    /// Every rule disabled (logic reduction off; degenerates MT-LR into plain
    /// XOR + common rewriting).
    pub fn none() -> Self {
        VanishingRules {
            xor_and: false,
            xor_both_inputs: false,
            xor_nor: false,
        }
    }
}

/// An index over the structural gate definitions that answers "does this
/// monomial contain a pair of variables that makes it vanish?" quickly.
///
/// The tracker also counts how many monomials it removed (`#CVM` in
/// Table III of the paper).
#[derive(Debug)]
pub struct VanishingTracker {
    rules: VanishingRules,
    /// AND outputs by their (sorted) input pair.
    and_outputs: FastMap<(Var, Var), Vec<Var>>,
    /// NOR outputs by their (sorted) input pair.
    nor_outputs: FastMap<(Var, Var), Vec<Var>>,
    /// For every variable that is the output of a 2-input XOR gate, its input
    /// pair.
    xor_inputs: FastMap<Var, (Var, Var)>,
    cancelled: u64,
}

impl VanishingTracker {
    /// Builds the tracker from the structural gate information of a model.
    pub fn new(model: &AlgebraicModel, rules: VanishingRules) -> Self {
        let mut and_outputs: FastMap<(Var, Var), Vec<Var>> = FastMap::default();
        let mut nor_outputs: FastMap<(Var, Var), Vec<Var>> = FastMap::default();
        let mut xor_inputs = FastMap::default();
        for (&out, gf) in model.gate_functions() {
            if gf.inputs.len() != 2 {
                continue;
            }
            let pair = (gf.inputs[0], gf.inputs[1]);
            match gf.kind {
                GateKind::Xor => {
                    xor_inputs.insert(out, pair);
                }
                GateKind::And => {
                    and_outputs.entry(pair).or_default().push(out);
                }
                GateKind::Nor => {
                    nor_outputs.entry(pair).or_default().push(out);
                }
                _ => {}
            }
        }
        VanishingTracker {
            rules,
            and_outputs,
            nor_outputs,
            xor_inputs,
            cancelled: 0,
        }
    }

    /// The number of monomials removed so far (`#CVM`).
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Returns `true` if the monomial is structurally guaranteed to evaluate
    /// to zero under every consistent circuit assignment.
    pub fn monomial_vanishes(&self, monomial: &Monomial) -> bool {
        if monomial.degree() < 2 {
            return false;
        }
        for v in monomial.vars() {
            if let Some(&(a, b)) = self.xor_inputs.get(&v) {
                if self.rules.xor_and {
                    if let Some(ands) = self.and_outputs.get(&(a, b)) {
                        if ands.iter().any(|w| *w != v && monomial.contains(*w)) {
                            return true;
                        }
                    }
                }
                if self.rules.xor_both_inputs && monomial.contains(a) && monomial.contains(b) {
                    return true;
                }
                if self.rules.xor_nor {
                    if let Some(nors) = self.nor_outputs.get(&(a, b)) {
                        if nors.iter().any(|w| *w != v && monomial.contains(*w)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Removes all vanishing monomials from the polynomial in place,
    /// returning the number of removed terms (`XORAND-Rule(r)` in
    /// Algorithm 2 of the paper).
    pub fn apply(&mut self, p: &mut Polynomial) -> usize {
        if !(self.rules.xor_and || self.rules.xor_both_inputs || self.rules.xor_nor) {
            return 0;
        }
        let removed = p.retain_terms(|m| !self.monomial_vanishes(m));
        self.cancelled += removed as u64;
        removed
    }

    /// Exposes the XOR pairs index size, useful for reporting.
    pub fn xor_gate_count(&self) -> usize {
        self.xor_inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_netlist::Netlist;
    use gbmv_poly::Int;

    /// A tiny parallel-prefix carry structure: X = a^b, D = a&b, N = a nor b.
    fn xd_netlist() -> (Netlist, Var, Var, Var, Var, Var) {
        let mut nl = Netlist::new("xd");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b, "x");
        let d = nl.and2(a, b, "d");
        let n = nl.add_gate(GateKind::Nor, &[a, b], "n");
        let z = nl.or2(x, d, "z");
        let z2 = nl.or2(z, n, "z2");
        nl.add_output("z2", z2);
        (nl.clone(), Var(a.0), Var(b.0), Var(x.0), Var(d.0), Var(n.0))
    }

    #[test]
    fn xor_and_monomial_vanishes() {
        let (nl, _a, _b, x, d, _n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert!(tracker.monomial_vanishes(&Monomial::from_vars(vec![x, d])));
        assert!(!tracker.monomial_vanishes(&Monomial::from_vars(vec![x])));
        assert!(!tracker.monomial_vanishes(&Monomial::from_vars(vec![d])));
    }

    #[test]
    fn extended_rules_only_when_enabled() {
        let (nl, a, b, x, _d, n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let default_tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert!(default_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        assert!(!default_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, n])));
        let paper_only = VanishingRules {
            xor_and: true,
            xor_both_inputs: false,
            xor_nor: false,
        };
        let paper_tracker = VanishingTracker::new(&model, paper_only);
        assert!(!paper_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        let all_tracker = VanishingTracker::new(&model, VanishingRules::all());
        assert!(all_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, a, b])));
        assert!(all_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, n])));
        let none_tracker = VanishingTracker::new(&model, VanishingRules::none());
        assert!(!none_tracker.monomial_vanishes(&Monomial::from_vars(vec![x, _d])));
    }

    #[test]
    fn apply_removes_and_counts() {
        let (nl, a, _b, x, d, _n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let mut tracker = VanishingTracker::new(&model, VanishingRules::default());
        let mut p = Polynomial::from_terms(vec![
            (Monomial::from_vars(vec![x, d]), Int::from(7)),
            (Monomial::from_vars(vec![x, d, a]), Int::from(-3)),
            (Monomial::from_vars(vec![x, a]), Int::from(5)),
        ]);
        let removed = tracker.apply(&mut p);
        assert_eq!(removed, 2);
        assert_eq!(tracker.cancelled(), 2);
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coeff(&Monomial::from_vars(vec![x, a])), Int::from(5));
    }

    #[test]
    fn vanishing_is_semantically_sound() {
        // Exhaustively check that monomials flagged as vanishing indeed
        // evaluate to zero under every consistent circuit assignment.
        let (nl, a, b, x, d, n) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::all());
        let candidates = [
            Monomial::from_vars(vec![x, d]),
            Monomial::from_vars(vec![x, a, b]),
            Monomial::from_vars(vec![x, n]),
            Monomial::from_vars(vec![x, d, n]),
        ];
        for m in &candidates {
            assert!(tracker.monomial_vanishes(m));
            for pattern in 0..4u32 {
                let av = pattern & 1 == 1;
                let bv = pattern & 2 != 0;
                let assignment = |v: Var| {
                    if v == a {
                        av
                    } else if v == b {
                        bv
                    } else if v == x {
                        av ^ bv
                    } else if v == d {
                        av && bv
                    } else if v == n {
                        !(av || bv)
                    } else {
                        false
                    }
                };
                assert!(
                    !m.eval_bool(&assignment),
                    "monomial {m} flagged as vanishing but evaluates to 1"
                );
            }
        }
    }

    #[test]
    fn xor_gate_count_reported() {
        let (nl, ..) = xd_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let tracker = VanishingTracker::new(&model, VanishingRules::default());
        assert_eq!(tracker.xor_gate_count(), 1);
    }
}
