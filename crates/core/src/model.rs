use gbmv_netlist::{analysis, cone, GateKind, NetId, Netlist};
use gbmv_poly::{FastMap, FastSet, Int, Monomial, Polynomial, Var};

/// Why model extraction (Step 1 of the MT algorithm) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The netlist contains a combinational cycle; the gate polynomials of
    /// the named nets cannot be ordered reverse-topologically, so the model
    /// would not be a Gröbner basis.
    CombinationalCycle {
        /// Names of the nets stuck on (or fed only through) a cycle, in net
        /// declaration order, truncated to the first 16.
        nets: Vec<String>,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::CombinationalCycle { nets } => {
                write!(
                    f,
                    "netlist contains a combinational cycle through: {}",
                    nets.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// The structural definition of a gate, kept alongside the algebraic model so
/// that the XOR-AND vanishing rule can recognise monomials that always
/// evaluate to zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateFunction {
    /// The gate kind driving the variable.
    pub kind: GateKind,
    /// The gate input variables, sorted by index.
    pub inputs: Vec<Var>,
}

/// The algebraic (Gröbner basis) model of a circuit.
///
/// Every net of the netlist becomes a variable; every gate becomes a
/// polynomial `g := -z + tail(g)` where `z` is the gate output variable and
/// `tail(g)` expresses the gate function over its input variables. With the
/// variables ordered by reverse topological level the leading monomials of
/// all polynomials are single distinct variables — relatively prime — so the
/// model is a Gröbner basis by construction (Definition 2 of the paper).
///
/// The model stores only the tails; the leading term `-z` is implicit. This
/// makes substitution (`Spoly` against a polynomial of this shape) a simple
/// call to [`Polynomial::substitute`].
#[derive(Debug, Clone)]
pub struct AlgebraicModel {
    /// Tail polynomial per gate-output variable.
    tails: FastMap<Var, Polynomial>,
    /// Gate-output variables in ascending topological order (inputs side
    /// first). The reverse is the substitution order of the GB reduction.
    topo_order: Vec<Var>,
    /// Logic level per variable index.
    levels: Vec<usize>,
    /// Primary input variables.
    inputs: Vec<Var>,
    /// Primary output variables in declaration order.
    outputs: Vec<Var>,
    /// O(1) membership indices over `inputs` / `outputs`; queried once per
    /// candidate variable in the rewrite inner loop.
    input_set: FastSet<Var>,
    output_set: FastSet<Var>,
    /// Fanout count per variable index (from the original netlist).
    fanout: Vec<usize>,
    /// Structural gate definitions for the vanishing rule.
    gate_functions: FastMap<Var, GateFunction>,
    /// Output-column support mask per variable index: bit `min(j, 63)` is
    /// set when the variable lies in the backward cone of primary output
    /// `j`. Drives the indexed engines' column-weight substitution order
    /// and their column-retirement accounting.
    column_reach: Vec<u64>,
    /// Net names, for diagnostics.
    names: Vec<String>,
}

impl AlgebraicModel {
    /// Extracts the algebraic model from a netlist (Step 1 of the MT
    /// algorithm).
    ///
    /// Returns [`ExtractError::CombinationalCycle`] if the netlist contains a
    /// combinational cycle (a cyclic model has no reverse-topological
    /// variable order and therefore is not a Gröbner basis by construction).
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, ExtractError> {
        let order = match analysis::topological_order_or_cycle(netlist) {
            Ok(order) => order,
            Err(stuck) => {
                return Err(ExtractError::CombinationalCycle {
                    nets: stuck
                        .iter()
                        .take(16)
                        .map(|&n| netlist.net_name(n).to_string())
                        .collect(),
                });
            }
        };
        let levels = analysis::logic_levels(netlist);
        let fanout = analysis::fanout_counts(netlist);
        let mut tails = FastMap::default();
        let mut gate_functions = FastMap::default();
        let mut topo_order = Vec::new();
        for net in order {
            if let Some(gate) = netlist.driver(net) {
                let out = Var(net.0);
                let input_vars: Vec<Var> = gate.inputs.iter().map(|n| Var(n.0)).collect();
                tails.insert(out, gate_tail(gate.kind, &input_vars));
                let mut sorted_inputs = input_vars.clone();
                sorted_inputs.sort();
                gate_functions.insert(
                    out,
                    GateFunction {
                        kind: gate.kind,
                        inputs: sorted_inputs,
                    },
                );
                topo_order.push(out);
            }
        }
        let inputs: Vec<Var> = netlist.inputs().iter().map(|n| Var(n.0)).collect();
        let outputs: Vec<Var> = netlist.outputs().iter().map(|(_, n)| Var(n.0)).collect();
        let input_set: FastSet<Var> = inputs.iter().copied().collect();
        let output_set: FastSet<Var> = outputs.iter().copied().collect();
        let names = (0..netlist.net_count())
            .map(|i| netlist.net_name(NetId(i as u32)).to_string())
            .collect();
        let column_reach = cone::output_column_masks(netlist);
        Ok(AlgebraicModel {
            tails,
            topo_order,
            levels,
            inputs,
            outputs,
            input_set,
            output_set,
            fanout,
            gate_functions,
            column_reach,
            names,
        })
    }

    /// Evaluates the circuit on a concrete input assignment by evaluating the
    /// gate tails in topological order, returning the primary output values
    /// in declaration order.
    ///
    /// On a pristine (unrewritten) model this reproduces the netlist
    /// simulation semantics; it is what grounds counterexamples without
    /// keeping the netlist alive. On a (fully) rewritten model the result is
    /// unchanged because substitution preserves the circuit function.
    pub fn evaluate(&self, assignment: &impl Fn(Var) -> bool) -> Vec<bool> {
        let mut values = vec![false; self.names.len()];
        for &v in &self.inputs {
            values[v.index()] = assignment(v);
        }
        for &v in &self.topo_order {
            if let Some(tail) = self.tails.get(&v) {
                values[v.index()] = !tail.eval_bool(&|u: Var| values[u.index()]).is_zero();
            }
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// The output-column support mask of `v`: bit `min(j, 63)` is set when
    /// `v` lies in the backward cone of primary output `j` (0 for variables
    /// the extraction never saw). See
    /// [`gbmv_netlist::cone::output_column_masks`].
    pub fn column_mask(&self, v: Var) -> u64 {
        self.column_reach.get(v.index()).copied().unwrap_or(0)
    }

    /// Per-variable output-column support masks, indexed by `Var::index`.
    pub fn column_masks(&self) -> &[u64] {
        &self.column_reach
    }

    /// The tail polynomial of the gate polynomial whose leading variable is
    /// `v`, if `v` is a gate output still present in the model.
    pub fn tail(&self, v: Var) -> Option<&Polynomial> {
        self.tails.get(&v)
    }

    /// Replaces the tail polynomial of `v`. Used by the rewriting schemes.
    pub fn set_tail(&mut self, v: Var, tail: Polynomial) {
        self.tails.insert(v, tail);
    }

    /// Removes the polynomial with leading variable `v` from the model
    /// (`UpdateModel` in Algorithm 2). Returns `true` if it was present.
    pub fn remove(&mut self, v: Var) -> bool {
        self.tails.remove(&v).is_some()
    }

    /// The number of polynomials currently in the model (`#P` of Table III).
    pub fn num_polynomials(&self) -> usize {
        self.tails.len()
    }

    /// The total number of monomials over all tails (`#M` of Table III,
    /// counting the implicit leading terms as well).
    pub fn num_monomials(&self) -> usize {
        self.tails.values().map(|p| p.num_terms() + 1).sum()
    }

    /// The maximum number of monomials of any polynomial (`#MP`).
    pub fn max_polynomial_terms(&self) -> usize {
        self.tails
            .values()
            .map(|p| p.num_terms() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The maximum number of variables in any monomial (`#VM`).
    pub fn max_monomial_vars(&self) -> usize {
        self.tails
            .values()
            .map(|p| p.max_degree())
            .max()
            .unwrap_or(0)
    }

    /// Gate-output variables in ascending topological order, restricted to
    /// polynomials still present in the model.
    pub fn polynomial_order(&self) -> Vec<Var> {
        self.topo_order
            .iter()
            .copied()
            .filter(|v| self.tails.contains_key(v))
            .collect()
    }

    /// The substitution order of the GB reduction: present polynomials in
    /// *reverse* topological order (outputs first), which together with the
    /// relatively-prime leading monomials realises the division of the
    /// specification polynomial (Algorithm 1 of the paper).
    pub fn substitution_order(&self) -> Vec<Var> {
        let mut order = self.polynomial_order();
        order.reverse();
        order
    }

    /// The logic level of a variable (0 for primary inputs).
    pub fn level(&self, v: Var) -> usize {
        self.levels[v.index()]
    }

    /// The number of variable slots of the model (one per net of the source
    /// netlist); variable indices are strictly below this bound. Used to size
    /// dense per-variable tables (levels, occurrence counts).
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// The fanout count of a variable in the original netlist.
    pub fn fanout(&self, v: Var) -> usize {
        self.fanout[v.index()]
    }

    /// Primary input variables in declaration order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// Primary output variables in declaration order.
    pub fn outputs(&self) -> &[Var] {
        &self.outputs
    }

    /// Returns `true` if `v` is a primary input.
    #[inline]
    pub fn is_input(&self, v: Var) -> bool {
        self.input_set.contains(&v)
    }

    /// Returns `true` if `v` is a primary output.
    #[inline]
    pub fn is_output(&self, v: Var) -> bool {
        self.output_set.contains(&v)
    }

    /// The structural gate definition of `v`, if `v` is a gate output.
    pub fn gate_function(&self, v: Var) -> Option<&GateFunction> {
        self.gate_functions.get(&v)
    }

    /// All structural gate definitions (used to build the vanishing-rule
    /// index).
    pub fn gate_functions(&self) -> &FastMap<Var, GateFunction> {
        &self.gate_functions
    }

    /// The net name of a variable (for diagnostics).
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// The set of variables that have fanout greater than one, plus primary
    /// inputs and outputs: the keep-set of *fanout rewriting* (MT-FO).
    pub fn fanout_keep_set(&self) -> FastSet<Var> {
        let mut set: FastSet<Var> = self
            .topo_order
            .iter()
            .copied()
            .filter(|v| self.fanout[v.index()] > 1)
            .collect();
        set.extend(self.inputs.iter().copied());
        set.extend(self.outputs.iter().copied());
        set
    }

    /// The set of variables that are inputs or outputs of XOR (or XNOR)
    /// gates, plus primary inputs and outputs: the keep-set of *XOR
    /// rewriting*.
    pub fn xor_keep_set(&self) -> FastSet<Var> {
        let mut set = FastSet::default();
        for (&out, gf) in &self.gate_functions {
            if matches!(gf.kind, GateKind::Xor | GateKind::Xnor) {
                set.insert(out);
                set.extend(gf.inputs.iter().copied());
            }
        }
        set.extend(self.inputs.iter().copied());
        set.extend(self.outputs.iter().copied());
        set
    }

    /// The set of variables used in more than one polynomial of the current
    /// model, plus primary inputs and outputs: the keep-set of *common
    /// rewriting*.
    pub fn common_keep_set(&self) -> FastSet<Var> {
        let mut counts: FastMap<Var, usize> = FastMap::default();
        for tail in self.tails.values() {
            for v in tail.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut set: FastSet<Var> = counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(v, _)| v)
            .collect();
        set.extend(self.inputs.iter().copied());
        set.extend(self.outputs.iter().copied());
        set
    }

    /// Renders a polynomial using net names, convenient for debugging and for
    /// reproducing the paper's worked examples.
    pub fn render(&self, p: &Polynomial) -> String {
        p.display_with(|v| self.names[v.index()].clone())
    }
}

/// The tail polynomial of a gate: `z = f(inputs)` is modeled as
/// `g := -z + tail`, and this returns `tail` such that `tail` evaluates to
/// `f(inputs)` over the Boolean domain.
pub(crate) fn gate_tail(kind: GateKind, inputs: &[Var]) -> Polynomial {
    match kind {
        GateKind::Buf => Polynomial::var(inputs[0]),
        GateKind::Not => &Polynomial::constant(Int::one()) - &Polynomial::var(inputs[0]),
        GateKind::And => Polynomial::from_terms(vec![(
            Monomial::from_vars(inputs.iter().copied()),
            Int::one(),
        )]),
        GateKind::Nand => {
            &Polynomial::constant(Int::one())
                - &Polynomial::from_terms(vec![(
                    Monomial::from_vars(inputs.iter().copied()),
                    Int::one(),
                )])
        }
        GateKind::Or => {
            // 1 - prod(1 - x_i)
            let mut prod = Polynomial::constant(Int::one());
            for &v in inputs {
                let factor = &Polynomial::constant(Int::one()) - &Polynomial::var(v);
                prod = &prod * &factor;
            }
            &Polynomial::constant(Int::one()) - &prod
        }
        GateKind::Nor => {
            let mut prod = Polynomial::constant(Int::one());
            for &v in inputs {
                let factor = &Polynomial::constant(Int::one()) - &Polynomial::var(v);
                prod = &prod * &factor;
            }
            prod
        }
        GateKind::Xor => {
            let mut acc = Polynomial::zero();
            for &v in inputs {
                // acc = acc + v - 2*acc*v
                let pv = Polynomial::var(v);
                let cross = &(&acc * &pv) * &Polynomial::constant(Int::from(-2));
                acc = &(&acc + &pv) + &cross;
            }
            acc
        }
        GateKind::Xnor => {
            let mut acc = Polynomial::zero();
            for &v in inputs {
                let pv = Polynomial::var(v);
                let cross = &(&acc * &pv) * &Polynomial::constant(Int::from(-2));
                acc = &(&acc + &pv) + &cross;
            }
            &Polynomial::constant(Int::one()) - &acc
        }
        GateKind::Const0 => Polynomial::zero(),
        GateKind::Const1 => Polynomial::constant(Int::one()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_netlist::Netlist;

    fn eval_tail(kind: GateKind, values: &[bool]) -> Int {
        let vars: Vec<Var> = (0..values.len() as u32).map(Var).collect();
        let tail = gate_tail(kind, &vars);
        tail.eval_bool(&|v: Var| values[v.index()])
    }

    #[test]
    fn gate_tails_match_gate_semantics() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
        ] {
            for pattern in 0..4u32 {
                let values = [pattern & 1 == 1, pattern & 2 != 0];
                let expected = kind.eval(&values);
                let got = eval_tail(kind, &values);
                assert_eq!(
                    got,
                    Int::from(expected as i64),
                    "{kind:?} tail mismatch on {values:?}"
                );
            }
        }
        for kind in [GateKind::Not, GateKind::Buf] {
            for v in [false, true] {
                assert_eq!(eval_tail(kind, &[v]), Int::from(kind.eval(&[v]) as i64));
            }
        }
        assert_eq!(eval_tail(GateKind::Const0, &[]), Int::zero());
        assert_eq!(eval_tail(GateKind::Const1, &[]), Int::one());
    }

    #[test]
    fn three_input_gate_tails() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            for pattern in 0..8u32 {
                let values = [pattern & 1 == 1, pattern & 2 != 0, pattern & 4 != 0];
                assert_eq!(
                    eval_tail(kind, &values),
                    Int::from(kind.eval(&values) as i64),
                    "{kind:?} on {values:?}"
                );
            }
        }
    }

    fn full_adder_netlist() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let x = nl.xor2(a, b, "x");
        let s = nl.xor2(x, cin, "s");
        let d = nl.and2(a, b, "d");
        let t = nl.and2(x, cin, "t");
        let c = nl.or2(d, t, "c");
        nl.add_output("s", s);
        nl.add_output("c", c);
        nl
    }

    #[test]
    fn model_extraction_full_adder() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        assert_eq!(model.num_polynomials(), 5);
        assert_eq!(model.inputs().len(), 3);
        assert_eq!(model.outputs().len(), 2);
        // The XOR gate x = a ^ b has tail a + b - 2ab.
        let x = Var(nl.find_net("x").unwrap().0);
        let tail = model.tail(x).unwrap();
        assert_eq!(tail.num_terms(), 3);
        // Substitution order lists the carry (deepest gate) first.
        let order = model.substitution_order();
        let c = Var(nl.find_net("c").unwrap().0);
        assert_eq!(order[0], c);
        // Leading variables are distinct gate outputs: Gröbner basis by
        // construction.
        let set: std::collections::HashSet<Var> = order.iter().copied().collect();
        assert_eq!(set.len(), order.len());
    }

    #[test]
    fn keep_sets_full_adder() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let x = Var(nl.find_net("x").unwrap().0);
        let a = Var(nl.find_net("a").unwrap().0);
        // x (the a^b XOR) has fanout 2, inputs/outputs always kept.
        let fanout = model.fanout_keep_set();
        assert!(fanout.contains(&x));
        assert!(fanout.contains(&a));
        let d = Var(nl.find_net("d").unwrap().0);
        assert!(!fanout.contains(&d), "single-fanout AND must not be kept");
        // XOR keep set contains the XOR gates, their inputs, and the PIs/POs.
        let xor = model.xor_keep_set();
        assert!(xor.contains(&x));
        let cin = Var(nl.find_net("cin").unwrap().0);
        assert!(xor.contains(&cin));
        assert!(!xor.contains(&d));
    }

    #[test]
    fn model_statistics_are_consistent() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        assert!(model.num_monomials() >= model.num_polynomials());
        assert!(model.max_polynomial_terms() <= model.num_monomials());
        assert!(model.max_monomial_vars() >= 2);
        assert_eq!(model.level(Var(nl.find_net("a").unwrap().0)), 0);
        assert!(model.level(Var(nl.find_net("c").unwrap().0)) >= 2);
    }

    #[test]
    fn render_uses_net_names() {
        let nl = full_adder_netlist();
        let model = AlgebraicModel::from_netlist(&nl).unwrap();
        let x = Var(nl.find_net("x").unwrap().0);
        let rendered = model.render(model.tail(x).unwrap());
        assert!(rendered.contains('a') && rendered.contains('b'));
    }
}
