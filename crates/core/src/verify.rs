//! The low-level verification surface: [`Verifier`] and [`VerifyConfig`].
//!
//! New code should use [`crate::Session`] (and [`crate::Portfolio`] for
//! multi-strategy runs); this module remains for callers that already hold a
//! raw specification [`Polynomial`] and want to drive the pipeline directly.
//! (The deprecated `verify_multiplier` / `verify_adder` shims over `Session`
//! were removed one release after their deprecation, as announced.)

use std::time::Duration;

use gbmv_netlist::Netlist;
use gbmv_poly::Polynomial;

use crate::budget::Budget;
use crate::model::{AlgebraicModel, ExtractError};
use crate::session::{run_pipeline, CexContext, Progress, Report};
use crate::strategy::{Method, PhaseContext};
use crate::vanishing::VanishingRules;

/// Resource limits and options of a verification run (the legacy analogue of
/// [`Budget`] plus strategy options, consumed by [`Verifier::run`]).
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Abort when any polynomial (tail or remainder) exceeds this many terms.
    /// This is the analogue of the paper's 100-hour timeout: diverging
    /// configurations stop with [`crate::Outcome::ResourceLimit`].
    pub max_terms: usize,
    /// Wall-clock budget for the whole run.
    pub timeout: Duration,
    /// Structural vanishing rules used during XOR rewriting.
    pub rules: VanishingRules,
    /// Whether to reduce the remainder modulo `2^(output bits)`. Required for
    /// Booth partial products and redundant binary trees; harmless otherwise.
    pub modular: bool,
    /// Whether to search for a counterexample when the remainder is non-zero.
    pub extract_counterexample: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_terms: 10_000_000,
            timeout: Duration::from_secs(600),
            rules: VanishingRules::default(),
            modular: true,
            extract_counterexample: true,
        }
    }
}

impl VerifyConfig {
    /// A configuration with a tight budget, used to demonstrate blow-ups
    /// without waiting for the full timeout.
    pub fn with_limits(max_terms: usize, timeout: Duration) -> Self {
        VerifyConfig {
            max_terms,
            timeout,
            ..VerifyConfig::default()
        }
    }

    /// The [`Budget`] this configuration stands for.
    pub fn budget(&self) -> Budget {
        Budget {
            max_terms: self.max_terms,
            deadline: Some(self.timeout),
            threads: 0,
        }
    }
}

/// A low-level verification handle bound to one netlist: extracts the
/// algebraic model once and runs methods against raw specification
/// polynomials.
///
/// Prefer [`crate::Session`] (typed [`crate::Spec`]s, pluggable strategies,
/// observers);
/// `Verifier` remains for flows that construct their own specification
/// polynomial.
#[derive(Debug, Clone)]
pub struct Verifier {
    model: AlgebraicModel,
    input_names: Vec<String>,
}

impl Verifier {
    /// Extracts the algebraic model of the netlist (Step 1 of the MT
    /// algorithm). Fails with [`ExtractError::CombinationalCycle`] on cyclic
    /// netlists (earlier versions panicked).
    pub fn new(netlist: &Netlist) -> Result<Self, ExtractError> {
        let (model, input_names) = crate::session::extract_model(netlist)?;
        Ok(Verifier { model, input_names })
    }

    /// The extracted algebraic model.
    pub fn model(&self) -> &AlgebraicModel {
        &self.model
    }

    /// Runs the membership testing algorithm: Step 2 (rewriting per `method`)
    /// followed by Step 3/4 (reduction and the zero test).
    ///
    /// `modulus_bits` enables the `mod 2^k` reduction of the remainder; for a
    /// multiplier it should be `Some(2 * width)` (the paper's `mod 2^(2n)`).
    pub fn run(
        &self,
        spec: &Polynomial,
        method: Method,
        config: &VerifyConfig,
        modulus_bits: Option<u32>,
    ) -> Report {
        let budget = config.budget();
        let ctx = PhaseContext {
            budget,
            token: budget.token(),
            rules: config.rules,
            modulus_bits: config.modular.then_some(modulus_bits).flatten(),
        };
        let cex_ctx = CexContext {
            model: &self.model,
            input_names: &self.input_names,
            spec: None,
        };
        let mut noop = |_: &Progress| {};
        run_pipeline(
            method.name().to_string(),
            &self.model,
            spec,
            config.modular.then_some(modulus_bits).flatten(),
            method.rewrite_strategy().as_ref(),
            method.reduction_strategy().as_ref(),
            &ctx,
            config.extract_counterexample.then_some(&cex_ctx),
            &mut noop,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Outcome;
    use crate::spec::Spec;
    use gbmv_genmul::MultiplierSpec;

    #[test]
    fn verifier_runs_raw_spec_polynomials() {
        let nl = MultiplierSpec::parse("SP-WT-CL", 4).unwrap().build();
        let verifier = Verifier::new(&nl).expect("acyclic");
        let (spec, modulus) = Spec::multiplier(4)
            .instantiate(verifier.model())
            .expect("interface");
        let report = verifier.run(&spec, Method::MtLr, &VerifyConfig::default(), modulus);
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.stats.model_polynomials > 0);
    }

    #[test]
    fn verifier_reports_cycles_as_errors() {
        use gbmv_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate_driving(GateKind::And, x, &[a, y]).unwrap();
        nl.add_gate_driving(GateKind::Or, y, &[a, x]).unwrap();
        let err = Verifier::new(&nl).unwrap_err();
        let ExtractError::CombinationalCycle { nets } = err;
        assert!(nets.contains(&"x".to_string()) && nets.contains(&"y".to_string()));
    }

    #[test]
    fn resource_limit_reported_for_tiny_budget() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 8).unwrap().build();
        let config = VerifyConfig::with_limits(100, Duration::from_secs(60));
        let verifier = Verifier::new(&nl).expect("acyclic");
        let (spec, modulus) = Spec::multiplier(8)
            .instantiate(verifier.model())
            .expect("interface");
        let report = verifier.run(&spec, Method::MtNaive, &config, modulus);
        assert!(report.outcome.is_resource_limit());
        assert!(!matches!(report.outcome, Outcome::Cancelled));
    }
}
