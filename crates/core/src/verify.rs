use std::collections::HashMap;
use std::time::{Duration, Instant};

use gbmv_netlist::Netlist;
use gbmv_poly::{debug_timer, spec, Polynomial, Var};

use crate::model::AlgebraicModel;
use crate::reduction::{GbReduction, ReductionOutcome, ReductionStats};
use crate::rewrite::{
    fanout_rewriting, logic_reduction_rewriting, xor_rewriting, RewriteConfig, RewriteStats,
};
use crate::vanishing::VanishingRules;

/// The verification method (which Step-2 rewriting is applied before the
/// Gröbner basis reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// No rewriting at all; reduce the raw gate-level model.
    MtNaive,
    /// Fanout rewriting — the MT-FO baseline of Farahmandi & Alizadeh [7].
    MtFo,
    /// XOR rewriting only (ablation; the paper argues this alone is
    /// inefficient).
    MtXorOnly,
    /// Logic reduction rewriting (XOR + common rewriting with the XOR-AND
    /// vanishing rule) — the paper's contribution.
    MtLr,
}

impl Method {
    /// All methods, in the order the paper's tables list them.
    pub fn all() -> [Method; 4] {
        [
            Method::MtNaive,
            Method::MtFo,
            Method::MtXorOnly,
            Method::MtLr,
        ]
    }

    /// Short display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::MtNaive => "MT",
            Method::MtFo => "MT-FO",
            Method::MtXorOnly => "MT-XOR",
            Method::MtLr => "MT-LR",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource limits and options of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Abort when any polynomial (tail or remainder) exceeds this many terms.
    /// This is the analogue of the paper's 100-hour timeout: diverging
    /// configurations stop with [`Outcome::ResourceLimit`].
    pub max_terms: usize,
    /// Wall-clock budget for the whole run.
    pub timeout: Duration,
    /// Structural vanishing rules used during XOR rewriting.
    pub rules: VanishingRules,
    /// Whether to reduce the remainder modulo `2^(output bits)`. Required for
    /// Booth partial products and redundant binary trees; harmless otherwise.
    pub modular: bool,
    /// Whether to search for a counterexample when the remainder is non-zero.
    pub extract_counterexample: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_terms: 10_000_000,
            timeout: Duration::from_secs(600),
            rules: VanishingRules::default(),
            modular: true,
            extract_counterexample: true,
        }
    }
}

impl VerifyConfig {
    /// A configuration with a tight budget, used to demonstrate blow-ups
    /// without waiting for the full timeout.
    pub fn with_limits(max_terms: usize, timeout: Duration) -> Self {
        VerifyConfig {
            max_terms,
            timeout,
            ..VerifyConfig::default()
        }
    }
}

/// The verdict of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The remainder is zero: the circuit implements the specification.
    Verified,
    /// The remainder is non-zero: the circuit does not implement the
    /// specification.
    Mismatch {
        /// Number of terms of the (modulo-reduced) remainder.
        remainder_terms: usize,
        /// A concrete input assignment exposing the mismatch, if one was
        /// found (`input name -> value`).
        counterexample: Option<HashMap<String, bool>>,
    },
    /// The run exceeded the term or time budget before finishing — the
    /// analogue of "TO" in the paper's tables.
    ResourceLimit {
        /// Which phase hit the limit.
        phase: &'static str,
    },
}

impl Outcome {
    /// Returns `true` for [`Outcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Outcome::Verified)
    }

    /// Returns `true` for [`Outcome::ResourceLimit`].
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, Outcome::ResourceLimit { .. })
    }
}

/// Detailed statistics of one verification run; the columns of Table III.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Rewriting statistics (includes `#CVM`, the cancelled vanishing
    /// monomials).
    pub rewrite: RewriteStats,
    /// Gröbner basis reduction statistics.
    pub reduction: ReductionStats,
    /// `#P`: polynomials in the model after rewriting.
    pub model_polynomials: usize,
    /// `#M`: monomials in the model after rewriting.
    pub model_monomials: usize,
    /// `#MP`: maximum polynomial size (monomials).
    pub max_polynomial_terms: usize,
    /// `#VM`: maximum monomial size (variables).
    pub max_monomial_vars: usize,
    /// End-to-end wall-clock time (model extraction + rewriting + reduction).
    pub total_time: Duration,
}

/// The result of a verification run: verdict plus statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// The method that produced this report.
    pub method: Method,
    /// The verdict.
    pub outcome: Outcome,
    /// Detailed statistics.
    pub stats: RunStats,
}

/// A verification session bound to one netlist: extracts the algebraic model
/// once and runs one or more methods/specifications against it.
#[derive(Debug, Clone)]
pub struct Verifier {
    model: AlgebraicModel,
    input_names: Vec<String>,
    num_outputs: usize,
}

impl Verifier {
    /// Extracts the algebraic model of the netlist (Step 1 of the MT
    /// algorithm).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle.
    pub fn new(netlist: &Netlist) -> Self {
        let model = AlgebraicModel::from_netlist(netlist);
        let input_names = netlist
            .inputs()
            .iter()
            .map(|&n| netlist.net_name(n).to_string())
            .collect();
        Verifier {
            model,
            input_names,
            num_outputs: netlist.outputs().len(),
        }
    }

    /// The extracted algebraic model.
    pub fn model(&self) -> &AlgebraicModel {
        &self.model
    }

    /// The specification polynomial of an unsigned `width x width` multiplier
    /// whose inputs are the first `width` primary inputs (`a`) followed by
    /// `width` primary inputs (`b`) and whose outputs are the `2*width`
    /// product bits in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the interface does not match (`2*width` inputs, `2*width`
    /// outputs).
    pub fn multiplier_spec(&self, width: usize) -> Polynomial {
        assert_eq!(
            self.model.inputs().len(),
            2 * width,
            "multiplier must have 2*width primary inputs"
        );
        assert_eq!(
            self.num_outputs,
            2 * width,
            "multiplier must have 2*width primary outputs"
        );
        let a = &self.model.inputs()[..width];
        let b = &self.model.inputs()[width..];
        spec::multiplier_spec(a, b, self.model.outputs())
    }

    /// The specification polynomial of an unsigned `width`-bit adder with
    /// outputs `s0..s_width` (carry out last) and optional carry-in as the
    /// last primary input.
    ///
    /// # Panics
    ///
    /// Panics if the interface does not match.
    pub fn adder_spec(&self, width: usize, with_carry_in: bool) -> Polynomial {
        let expected_inputs = 2 * width + usize::from(with_carry_in);
        assert_eq!(self.model.inputs().len(), expected_inputs);
        assert_eq!(self.num_outputs, width + 1);
        let a = &self.model.inputs()[..width];
        let b = &self.model.inputs()[width..2 * width];
        let cin = with_carry_in.then(|| self.model.inputs()[2 * width]);
        spec::adder_spec(a, b, self.model.outputs(), cin)
    }

    /// Runs the membership testing algorithm: Step 2 (rewriting per `method`)
    /// followed by Step 3/4 (reduction and the zero test).
    ///
    /// `modulus_bits` enables the `mod 2^k` reduction of the remainder; for a
    /// multiplier it should be `Some(2 * width)` (the paper's `mod 2^(2n)`).
    pub fn run(
        &self,
        spec: &Polynomial,
        method: Method,
        config: &VerifyConfig,
        modulus_bits: Option<u32>,
    ) -> Report {
        let start = Instant::now();
        let mut stats = RunStats::default();
        let mut model = self.model.clone();
        let rewrite_config = RewriteConfig {
            rules: config.rules,
            max_terms: config.max_terms,
            timeout: config.timeout,
        };
        stats.rewrite = match method {
            Method::MtNaive => RewriteStats::default(),
            Method::MtFo => fanout_rewriting(&mut model, &rewrite_config),
            Method::MtXorOnly => xor_rewriting(&mut model, &rewrite_config),
            Method::MtLr => logic_reduction_rewriting(&mut model, &rewrite_config),
        };
        stats.model_polynomials = model.num_polynomials();
        stats.model_monomials = model.num_monomials();
        stats.max_polynomial_terms = model.max_polynomial_terms();
        stats.max_monomial_vars = model.max_monomial_vars();
        if stats.rewrite.limit_exceeded {
            stats.total_time = start.elapsed();
            return Report {
                method,
                outcome: Outcome::ResourceLimit { phase: "rewriting" },
                stats,
            };
        }
        let remaining = config.timeout.saturating_sub(start.elapsed());
        let mut engine = GbReduction::new(config.max_terms, remaining);
        // When the specification is modular, drop coefficient multiples of
        // 2^k *during* the reduction as well (sound, and essential for Booth
        // and redundant-binary circuits; see `GbReduction::modulus_bits`).
        if config.modular {
            if let Some(k) = modulus_bits {
                engine = engine.with_modulus(k);
            }
        }
        // For the logic-reduction methods, keep removing vanishing monomials
        // during the reduction as well: the substitution of independent model
        // polynomials into the specification can re-create them (see
        // `GbReduction::reduce_with_vanishing`).
        let (remainder, outcome, reduction_stats) = match method {
            Method::MtLr | Method::MtXorOnly => {
                let mut tracker =
                    crate::vanishing::VanishingTracker::new(&self.model, config.rules);
                let result = debug_timer!(
                    "gb_reduction",
                    engine.reduce_with_vanishing(&model, spec, &mut tracker)
                );
                stats.rewrite.cancelled_vanishing += tracker.cancelled();
                result
            }
            _ => debug_timer!("gb_reduction", engine.reduce(&model, spec)),
        };
        stats.reduction = reduction_stats;
        stats.total_time = start.elapsed();
        match outcome {
            ReductionOutcome::Completed => {}
            ReductionOutcome::LimitExceeded { .. } | ReductionOutcome::TimedOut => {
                return Report {
                    method,
                    outcome: Outcome::ResourceLimit { phase: "reduction" },
                    stats,
                };
            }
        }
        let remainder = match (config.modular, modulus_bits) {
            (true, Some(k)) => remainder.drop_multiples_of_pow2(k),
            _ => remainder,
        };
        let outcome = if remainder.is_zero() {
            Outcome::Verified
        } else {
            let counterexample = if config.extract_counterexample {
                self.find_counterexample(&remainder, modulus_bits)
            } else {
                None
            };
            Outcome::Mismatch {
                remainder_terms: remainder.num_terms(),
                counterexample,
            }
        };
        stats.total_time = start.elapsed();
        Report {
            method,
            outcome,
            stats,
        }
    }

    /// Searches for an input assignment on which the remainder evaluates to a
    /// value that is non-zero (modulo `2^k` if given): a concrete
    /// counterexample to the specification.
    fn find_counterexample(
        &self,
        remainder: &Polynomial,
        modulus_bits: Option<u32>,
    ) -> Option<HashMap<String, bool>> {
        let inputs = self.model.inputs().to_vec();
        let nonzero = |value: &gbmv_poly::Int| match modulus_bits {
            Some(k) => !value.is_multiple_of_pow2(k),
            None => !value.is_zero(),
        };
        let to_map = |assignment: &dyn Fn(Var) -> bool| {
            let mut map = HashMap::new();
            for (&v, name) in inputs.iter().zip(&self.input_names) {
                map.insert(name.clone(), assignment(v));
            }
            map
        };
        // Heuristic 1: for each monomial (smallest degree first), set exactly
        // its variables to one.
        let mut monomials: Vec<_> = remainder.iter().map(|(m, _)| m.clone()).collect();
        monomials.sort_by_key(|m| m.degree());
        for m in monomials.iter().take(64) {
            let assignment = |v: Var| m.contains(v);
            if nonzero(&remainder.eval_bool(&assignment)) {
                return Some(to_map(&assignment));
            }
        }
        // Heuristic 2: deterministic pseudo-random assignments.
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..256 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = seed;
            let assignment = |v: Var| {
                let idx = inputs.iter().position(|&u| u == v).unwrap_or(0);
                (bits >> (idx % 64)) & 1 == 1
            };
            if nonzero(&remainder.eval_bool(&assignment)) {
                return Some(to_map(&assignment));
            }
        }
        // Heuristic 3: exhaustive for small interfaces.
        if inputs.len() <= 16 {
            for pattern in 0u32..(1u32 << inputs.len()) {
                let assignment = |v: Var| {
                    let idx = inputs.iter().position(|&u| u == v).unwrap_or(0);
                    (pattern >> idx) & 1 == 1
                };
                if nonzero(&remainder.eval_bool(&assignment)) {
                    return Some(to_map(&assignment));
                }
            }
        }
        None
    }
}

/// Verifies that `netlist` implements the unsigned `width x width` multiplier
/// specification `sum 2^i s_i = (sum 2^i a_i)(sum 2^i b_i) mod 2^(2*width)`.
///
/// The netlist interface must be `a0..a{n-1}, b0..b{n-1}` as primary inputs
/// (in that order) and the `2n` product bits as primary outputs, which is what
/// [`gbmv_genmul::MultiplierSpec::build`] produces.
///
/// # Panics
///
/// Panics if the interface does not match or the netlist is cyclic.
pub fn verify_multiplier(
    netlist: &Netlist,
    width: usize,
    method: Method,
    config: &VerifyConfig,
) -> Report {
    let verifier = Verifier::new(netlist);
    let spec = verifier.multiplier_spec(width);
    verifier.run(&spec, method, config, Some(2 * width as u32))
}

/// Verifies that `netlist` implements the unsigned `width`-bit adder
/// specification (sum plus carry out).
///
/// # Panics
///
/// Panics if the interface does not match or the netlist is cyclic.
pub fn verify_adder(
    netlist: &Netlist,
    width: usize,
    with_carry_in: bool,
    method: Method,
    config: &VerifyConfig,
) -> Report {
    let verifier = Verifier::new(netlist);
    let spec = verifier.adder_spec(width, with_carry_in);
    verifier.run(&spec, method, config, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};
    use gbmv_netlist::fault::distinguishable_mutant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mt_lr_verifies_simple_multiplier() {
        let nl = MultiplierSpec::parse("SP-AR-RC", 4).unwrap().build();
        let report = verify_multiplier(&nl, 4, Method::MtLr, &VerifyConfig::default());
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.stats.model_polynomials > 0);
    }

    #[test]
    fn mt_lr_verifies_booth_prefix_multiplier() {
        let nl = MultiplierSpec::parse("BP-WT-CL", 4).unwrap().build();
        let report = verify_multiplier(&nl, 4, Method::MtLr, &VerifyConfig::default());
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn mt_fo_verifies_array_multiplier() {
        let nl = MultiplierSpec::parse("SP-AR-RC", 4).unwrap().build();
        let report = verify_multiplier(&nl, 4, Method::MtFo, &VerifyConfig::default());
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn faulty_multiplier_is_rejected_with_counterexample() {
        let nl = MultiplierSpec::parse("SP-WT-BK", 4).unwrap().build();
        let mut rng = StdRng::seed_from_u64(99);
        let (_fault, mutant) = distinguishable_mutant(&nl, 100, &mut rng).expect("mutant");
        let report = verify_multiplier(&mutant, 4, Method::MtLr, &VerifyConfig::default());
        match &report.outcome {
            Outcome::Mismatch {
                remainder_terms,
                counterexample,
            } => {
                assert!(*remainder_terms > 0);
                let cex = counterexample.as_ref().expect("counterexample found");
                // Cross-check with simulation: the mutant must differ from the
                // true product on the counterexample.
                let mut a = 0u64;
                let mut b = 0u64;
                for i in 0..4 {
                    if cex[&format!("a{i}")] {
                        a |= 1 << i;
                    }
                    if cex[&format!("b{i}")] {
                        b |= 1 << i;
                    }
                }
                let got = mutant.evaluate_words(&[a as u128, b as u128], &[4, 4]);
                assert_ne!(got, (a * b) as u128, "counterexample must expose the bug");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn resource_limit_reported_for_tiny_budget() {
        let nl = MultiplierSpec::parse("SP-WT-KS", 8).unwrap().build();
        let config = VerifyConfig::with_limits(100, Duration::from_secs(60));
        let report = verify_multiplier(&nl, 8, Method::MtNaive, &config);
        assert!(report.outcome.is_resource_limit());
    }

    #[test]
    fn adder_verification_all_architectures() {
        for kind in AdderKind::all() {
            let nl = build_adder(6, kind, false);
            let report = verify_adder(&nl, 6, false, Method::MtLr, &VerifyConfig::default());
            assert!(
                report.outcome.is_verified(),
                "{kind:?} adder failed: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn adder_with_carry_in_verifies() {
        let nl = build_adder(4, AdderKind::BrentKung, true);
        let report = verify_adder(&nl, 4, true, Method::MtLr, &VerifyConfig::default());
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn stats_report_vanishing_monomials_for_prefix_architectures() {
        let nl = MultiplierSpec::parse("SP-CT-KS", 4).unwrap().build();
        let report = verify_multiplier(&nl, 4, Method::MtLr, &VerifyConfig::default());
        assert!(report.outcome.is_verified());
        assert!(
            report.stats.rewrite.cancelled_vanishing > 0,
            "Kogge-Stone multiplier must exhibit vanishing monomials"
        );
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::MtLr.name(), "MT-LR");
        assert_eq!(Method::MtFo.name(), "MT-FO");
        assert_eq!(Method::all().len(), 4);
        assert_eq!(format!("{}", Method::MtNaive), "MT");
    }
}
