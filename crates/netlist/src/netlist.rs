use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::{Gate, GateKind};

/// Identifier of a net (a wire) inside a [`Netlist`].
///
/// Net ids are dense indices assigned in creation order; primary inputs are
/// created first by convention but this is not required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors produced while constructing or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate refers to a net id that does not exist.
    UnknownNet(NetId),
    /// A net is driven by more than one gate.
    MultipleDrivers(NetId),
    /// A primary input is also driven by a gate.
    DrivenInput(NetId),
    /// The gate arity does not match its [`GateKind`].
    BadArity {
        /// The offending gate kind.
        kind: GateKind,
        /// The number of inputs that was supplied.
        got: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// An internal net is neither a primary input nor driven by a gate.
    UndrivenNet(NetId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet(n) => write!(f, "unknown net {n}"),
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::DrivenInput(n) => write!(f, "primary input {n} is driven by a gate"),
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate {kind} used with {got} inputs")
            }
            NetlistError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            NetlistError::UndrivenNet(n) => write!(f, "net {n} has no driver"),
        }
    }
}

impl Error for NetlistError {}

/// A combinational gate-level circuit.
///
/// A netlist owns a set of nets, a list of gates each driving one net, an
/// ordered list of primary inputs and an ordered list of primary outputs.
/// Output ports have names and refer to (possibly shared) nets.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    gates: Vec<Gate>,
    /// driver[net] = index into `gates` of the gate driving the net.
    driver: Vec<Option<usize>>,
    is_input: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// The number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs (name, net) in declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// The nets of the primary outputs in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().map(|(_, n)| *n).collect()
    }

    /// All gates in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Mutable access to the gates (used by fault injection).
    pub(crate) fn gates_mut(&mut self) -> &mut [Gate] {
        &mut self.gates
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// Returns `true` if the net is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.is_input[net.index()]
    }

    /// Returns the index of the gate driving `net`, if any.
    pub fn driver(&self, net: NetId) -> Option<&Gate> {
        self.driver[net.index()].map(|i| &self.gates[i])
    }

    /// Creates a fresh unnamed internal net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        self.driver.push(None);
        self.is_input.push(false);
        id
    }

    /// Declares a new primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.is_input[id.index()] = true;
        self.inputs.push(id);
        id
    }

    /// Declares an existing net as a primary output under `name`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Adds a gate driving a freshly created net and returns that net.
    ///
    /// # Panics
    ///
    /// Panics if the gate arity does not match the gate kind (e.g. a `Not`
    /// with two inputs); structural errors involving existing nets are caught
    /// by [`Netlist::validate`].
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId], name: impl Into<String>) -> NetId {
        if let Some(ar) = kind.arity() {
            assert_eq!(
                ar,
                inputs.len(),
                "gate {kind} requires {ar} inputs, got {}",
                inputs.len()
            );
        } else {
            assert!(
                inputs.len() >= 2,
                "gate {kind} requires at least two inputs"
            );
        }
        let out = self.add_net(name);
        let gate_idx = self.gates.len();
        self.gates.push(Gate::new(kind, out, inputs.to_vec()));
        self.driver[out.index()] = Some(gate_idx);
        out
    }

    /// Adds a gate driving an already existing net.
    ///
    /// This is used by the parser, where output nets may be referenced before
    /// their driver is declared.
    pub fn add_gate_driving(
        &mut self,
        kind: GateKind,
        output: NetId,
        inputs: &[NetId],
    ) -> Result<(), NetlistError> {
        if let Some(ar) = kind.arity() {
            if ar != inputs.len() {
                return Err(NetlistError::BadArity {
                    kind,
                    got: inputs.len(),
                });
            }
        } else if inputs.len() < 2 {
            return Err(NetlistError::BadArity {
                kind,
                got: inputs.len(),
            });
        }
        if output.index() >= self.net_count() {
            return Err(NetlistError::UnknownNet(output));
        }
        if self.is_input[output.index()] {
            return Err(NetlistError::DrivenInput(output));
        }
        if self.driver[output.index()].is_some() {
            return Err(NetlistError::MultipleDrivers(output));
        }
        let gate_idx = self.gates.len();
        self.gates.push(Gate::new(kind, output, inputs.to_vec()));
        self.driver[output.index()] = Some(gate_idx);
        Ok(())
    }

    /// Convenience: 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Xor, &[a, b], name)
    }

    /// Convenience: 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::And, &[a, b], name)
    }

    /// Convenience: 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Or, &[a, b], name)
    }

    /// Convenience: inverter.
    pub fn not1(&mut self, a: NetId, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Not, &[a], name)
    }

    /// Convenience: constant-zero net (one fresh gate per call).
    pub fn const0(&mut self, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Const0, &[], name)
    }

    /// Convenience: constant-one net (one fresh gate per call).
    pub fn const1(&mut self, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Const1, &[], name)
    }

    /// Checks structural well-formedness: every referenced net exists, every
    /// non-input net has exactly one driver, no combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for gate in &self.gates {
            for &inp in &gate.inputs {
                if inp.index() >= self.net_count() {
                    return Err(NetlistError::UnknownNet(inp));
                }
            }
            if gate.output.index() >= self.net_count() {
                return Err(NetlistError::UnknownNet(gate.output));
            }
        }
        for (_, out) in &self.outputs {
            if out.index() >= self.net_count() {
                return Err(NetlistError::UnknownNet(*out));
            }
        }
        // Every net referenced as a gate input or primary output must be driven
        // or be a primary input.
        let mut used: Vec<bool> = vec![false; self.net_count()];
        for gate in &self.gates {
            for &inp in &gate.inputs {
                used[inp.index()] = true;
            }
        }
        for (_, out) in &self.outputs {
            used[out.index()] = true;
        }
        for (id, &is_used) in used.iter().enumerate() {
            if is_used && !self.is_input[id] && self.driver[id].is_none() {
                return Err(NetlistError::UndrivenNet(NetId(id as u32)));
            }
        }
        // Cycle check via topological sort.
        if crate::analysis::topological_order(self).is_none() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(())
    }

    /// Evaluates the circuit on a single input assignment.
    ///
    /// `input_values[i]` is the value of `self.inputs()[i]`. Returns the
    /// values of the primary outputs in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs or if the netlist has a cycle.
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        crate::sim::evaluate(self, input_values)
    }

    /// Evaluates the circuit treating the inputs/outputs as little-endian
    /// binary numbers. Convenient for arithmetic circuits.
    ///
    /// The input words are mapped to the primary inputs in order, one bit per
    /// input (word 0 bit 0 first). Returns the output bits packed into a
    /// `u128` (at most 128 outputs).
    ///
    /// # Panics
    ///
    /// Panics if there are more than 128 primary outputs.
    pub fn evaluate_words(&self, words: &[u128], widths: &[usize]) -> u128 {
        assert_eq!(words.len(), widths.len());
        let total: usize = widths.iter().sum();
        assert_eq!(
            total,
            self.inputs.len(),
            "input widths must cover all primary inputs"
        );
        assert!(self.outputs.len() <= 128, "too many outputs for u128");
        let mut bits = Vec::with_capacity(total);
        for (&w, &width) in words.iter().zip(widths) {
            for i in 0..width {
                bits.push((w >> i) & 1 == 1);
            }
        }
        let out = self.evaluate(&bits);
        let mut result: u128 = 0;
        for (i, &b) in out.iter().enumerate() {
            if b {
                result |= 1 << i;
            }
        }
        result
    }

    /// A human readable one-line summary (gate/net counts).
    pub fn summary(&self) -> String {
        let mut by_kind: HashMap<GateKind, usize> = HashMap::new();
        for gate in &self.gates {
            *by_kind.entry(gate.kind).or_insert(0) += 1;
        }
        let mut kinds: Vec<_> = by_kind.into_iter().collect();
        kinds.sort();
        let kinds = kinds
            .iter()
            .map(|(k, c)| format!("{k}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "{}: {} inputs, {} outputs, {} gates ({})",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            kinds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("half_adder");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.xor2(a, b, "s");
        let c = nl.and2(a, b, "c");
        nl.add_output("s", s);
        nl.add_output("c", c);
        nl
    }

    #[test]
    fn build_and_evaluate_half_adder() {
        let nl = half_adder();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.net_count(), 4);
        nl.validate().unwrap();
        assert_eq!(nl.evaluate(&[false, false]), vec![false, false]);
        assert_eq!(nl.evaluate(&[true, false]), vec![true, false]);
        assert_eq!(nl.evaluate(&[false, true]), vec![true, false]);
        assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
    }

    #[test]
    fn evaluate_words_half_adder() {
        let nl = half_adder();
        assert_eq!(nl.evaluate_words(&[1, 1], &[1, 1]), 0b10);
        assert_eq!(nl.evaluate_words(&[1, 0], &[1, 1]), 0b01);
    }

    #[test]
    fn find_net_by_name() {
        let nl = half_adder();
        let s = nl.find_net("s").unwrap();
        assert_eq!(nl.net_name(s), "s");
        assert!(nl.find_net("does_not_exist").is_none());
    }

    #[test]
    fn validate_detects_undriven_net() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let floating = nl.add_net("floating");
        let z = nl.and2(a, floating, "z");
        nl.add_output("z", z);
        assert_eq!(
            nl.validate(),
            Err(NetlistError::UndrivenNet(floating)),
            "undriven internal net must be rejected"
        );
    }

    #[test]
    fn validate_detects_multiple_drivers() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.and2(a, b, "z");
        let err = nl.add_gate_driving(GateKind::Or, z, &[a, b]);
        assert_eq!(err, Err(NetlistError::MultipleDrivers(z)));
    }

    #[test]
    fn validate_detects_driven_input() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let err = nl.add_gate_driving(GateKind::And, a, &[a, b]);
        assert_eq!(err, Err(NetlistError::DrivenInput(a)));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        let err = nl.add_gate_driving(GateKind::Not, z, &[a, a]);
        assert!(matches!(err, Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new("consts");
        let zero = nl.const0("zero");
        let one = nl.const1("one");
        nl.add_output("zero", zero);
        nl.add_output("one", one);
        assert_eq!(nl.evaluate(&[]), vec![false, true]);
    }

    #[test]
    fn summary_mentions_counts() {
        let nl = half_adder();
        let s = nl.summary();
        assert!(s.contains("2 inputs"));
        assert!(s.contains("2 gates"));
    }
}
