//! Gate-level netlist representation and analysis.
//!
//! This crate is the structural substrate of the `gbmv` workspace. It provides:
//!
//! * [`Netlist`]: a combinational gate-level circuit with named nets, primary
//!   inputs and primary outputs.
//! * [`GateKind`] / [`Gate`]: the basic Boolean gate library used by the
//!   arithmetic module generators and the algebraic verifier.
//! * Structural analysis: topological ordering, logic levels, fanout counts and
//!   transitive fan-in cones ([`analysis`]).
//! * Bit-parallel simulation for validating generated circuits ([`sim`]).
//! * A small BLIF-like textual exchange format ([`mod@format`]).
//! * Fault injection used by the negative verification tests ([`fault`]).
//!
//! # Example
//!
//! Build and simulate a full adder:
//!
//! ```
//! use gbmv_netlist::{GateKind, Netlist};
//!
//! let mut nl = Netlist::new("full_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let cin = nl.add_input("cin");
//! let axb = nl.add_gate(GateKind::Xor, &[a, b], "axb");
//! let sum = nl.add_gate(GateKind::Xor, &[axb, cin], "sum");
//! let ab = nl.add_gate(GateKind::And, &[a, b], "ab");
//! let axb_c = nl.add_gate(GateKind::And, &[axb, cin], "axb_c");
//! let cout = nl.add_gate(GateKind::Or, &[ab, axb_c], "cout");
//! nl.add_output("sum", sum);
//! nl.add_output("cout", cout);
//!
//! // 1 + 1 + 1 = 3 -> sum = 1, cout = 1
//! let out = nl.evaluate(&[true, true, true]);
//! assert_eq!(out, vec![true, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cone;
pub mod fault;
pub mod format;
mod gate;
mod netlist;
pub mod sim;

pub use cone::{ConeDecomposition, OutputCone};
pub use fault::{Fault, FaultKind};
pub use format::{parse_netlist, write_netlist, ParseNetlistError};
pub use gate::{Gate, GateKind};
pub use netlist::{NetId, Netlist, NetlistError};
