//! A small line-oriented textual netlist format.
//!
//! The paper obtains its benchmarks as Verilog netlists synthesised by Yosys.
//! We substitute a minimal, unambiguous exchange format so circuits can be
//! stored on disk, diffed and re-loaded. The format is:
//!
//! ```text
//! # comment
//! module <name>
//! input <net> [<net> ...]
//! output <port>=<net> [<port>=<net> ...]
//! gate <kind> <output> <input> [<input> ...]
//! endmodule
//! ```
//!
//! Net names are free-form identifiers without whitespace. Gates may appear in
//! any order; forward references are allowed.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist, NetlistError};

/// Error produced while parsing the textual netlist format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human readable description.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetlistError {}

impl ParseNetlistError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseNetlistError {
            line,
            message: message.into(),
        }
    }
}

/// Serialises a netlist into the textual format described in the module docs.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {}\n", netlist.name()));
    if !netlist.inputs().is_empty() {
        out.push_str("input");
        for &i in netlist.inputs() {
            out.push(' ');
            out.push_str(netlist.net_name(i));
        }
        out.push('\n');
    }
    if !netlist.outputs().is_empty() {
        out.push_str("output");
        for (name, net) in netlist.outputs() {
            out.push(' ');
            out.push_str(&format!("{}={}", name, netlist.net_name(*net)));
        }
        out.push('\n');
    }
    for gate in netlist.gates() {
        out.push_str("gate ");
        out.push_str(gate.kind.mnemonic());
        out.push(' ');
        out.push_str(netlist.net_name(gate.output));
        for &inp in &gate.inputs {
            out.push(' ');
            out.push_str(netlist.net_name(inp));
        }
        out.push('\n');
    }
    out.push_str("endmodule\n");
    out
}

/// Parses the textual netlist format described in the module docs.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] describing the first syntactic or
/// structural problem (unknown gate kind, duplicate driver, missing module
/// header, …).
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut netlist: Option<Netlist> = None;
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut ended = false;

    // Resolve a name to a net id, creating an internal net on first use.
    fn resolve(nl: &mut Netlist, nets: &mut HashMap<String, NetId>, name: &str) -> NetId {
        if let Some(&id) = nets.get(name) {
            id
        } else {
            let id = nl.add_net(name);
            nets.insert(name.to_string(), id);
            id
        }
    }

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(ParseNetlistError::new(lineno, "content after endmodule"));
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "module" => {
                if netlist.is_some() {
                    return Err(ParseNetlistError::new(lineno, "duplicate module header"));
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "module requires a name"))?;
                netlist = Some(Netlist::new(name));
            }
            "input" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "input before module"))?;
                for name in tokens {
                    if nets.contains_key(name) {
                        return Err(ParseNetlistError::new(
                            lineno,
                            format!("net {name} declared twice"),
                        ));
                    }
                    let id = nl.add_input(name);
                    nets.insert(name.to_string(), id);
                }
            }
            "output" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "output before module"))?;
                for spec in tokens {
                    let (port, net_name) = spec.split_once('=').ok_or_else(|| {
                        ParseNetlistError::new(lineno, format!("expected port=net, got {spec}"))
                    })?;
                    let id = resolve(nl, &mut nets, net_name);
                    nl.add_output(port, id);
                }
            }
            "gate" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "gate before module"))?;
                let kind_str = tokens
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "gate requires a kind"))?;
                let kind = GateKind::from_mnemonic(kind_str).ok_or_else(|| {
                    ParseNetlistError::new(lineno, format!("unknown gate kind {kind_str}"))
                })?;
                let out_name = tokens
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(lineno, "gate requires an output net"))?;
                let output = resolve(nl, &mut nets, out_name);
                let inputs: Vec<NetId> = tokens.map(|t| resolve(nl, &mut nets, t)).collect();
                nl.add_gate_driving(kind, output, &inputs).map_err(|e| {
                    let msg = match e {
                        NetlistError::MultipleDrivers(_) => {
                            format!("net {out_name} already has a driver")
                        }
                        NetlistError::DrivenInput(_) => {
                            format!("primary input {out_name} cannot be driven")
                        }
                        other => other.to_string(),
                    };
                    ParseNetlistError::new(lineno, msg)
                })?;
            }
            "endmodule" => {
                if netlist.is_none() {
                    return Err(ParseNetlistError::new(lineno, "endmodule before module"));
                }
                ended = true;
            }
            other => {
                return Err(ParseNetlistError::new(
                    lineno,
                    format!("unknown keyword {other}"),
                ));
            }
        }
    }
    let netlist = netlist.ok_or_else(|| ParseNetlistError::new(1, "missing module header"))?;
    if !ended {
        return Err(ParseNetlistError::new(
            text.lines().count().max(1),
            "missing endmodule",
        ));
    }
    netlist
        .validate()
        .map_err(|e| ParseNetlistError::new(0, format!("invalid netlist: {e}")))?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let axb = nl.xor2(a, b, "axb");
        let s = nl.xor2(axb, c, "s");
        let ab = nl.and2(a, b, "ab");
        let t = nl.and2(axb, c, "t");
        let co = nl.or2(ab, t, "co");
        nl.add_output("s", s);
        nl.add_output("co", co);
        nl
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let original = full_adder();
        let text = write_netlist(&original);
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.name(), "fa");
        assert_eq!(parsed.inputs().len(), 3);
        assert_eq!(parsed.outputs().len(), 2);
        for pattern in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(original.evaluate(&bits), parsed.evaluate(&bits));
        }
    }

    #[test]
    fn parse_simple_module() {
        let text = "\
# a tiny module
module tiny
input a b
output z=zz
gate and zz a b
endmodule
";
        let nl = parse_netlist(text).unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gates()[0].kind, GateKind::And);
        assert_eq!(nl.evaluate(&[true, true]), vec![true]);
    }

    #[test]
    fn forward_references_allowed() {
        let text = "\
module fwd
input a b
output z=z
gate or z t a
gate and t a b
endmodule
";
        let nl = parse_netlist(text).unwrap();
        assert_eq!(nl.evaluate(&[true, false]), vec![true]);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = parse_netlist("module m\ngate foo z a b\nendmodule\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown gate kind"));

        let err = parse_netlist("input a\n").unwrap_err();
        assert!(err.message.contains("before module"));

        let err = parse_netlist("module m\ninput a\n").unwrap_err();
        assert!(err.message.contains("missing endmodule"));

        let err = parse_netlist("module m\ninput a\ngate not a a\nendmodule\n").unwrap_err();
        assert!(err.message.contains("cannot be driven"));

        let err = parse_netlist("module m\ninput a b\ngate and z a b\ngate or z a b\nendmodule\n")
            .unwrap_err();
        assert!(err.message.contains("already has a driver"));
    }

    #[test]
    fn missing_module_header() {
        let err = parse_netlist("# nothing here\n").unwrap_err();
        assert!(err.message.contains("missing module"));
    }
}
