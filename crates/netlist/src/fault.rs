//! Fault injection for negative testing.
//!
//! Verification engines must not only prove correct circuits correct but also
//! *reject* incorrect ones. The fault injector produces structurally valid but
//! functionally (usually) different mutants of a netlist: a gate kind swap, a
//! swapped input pair or an input rewired to another net of equal or lower
//! logic level (to keep the circuit acyclic).

use rand::Rng;

use crate::analysis::logic_levels;
use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Replace the function of a gate (e.g. XOR -> OR).
    GateSwap {
        /// The new gate kind.
        new_kind: GateKind,
    },
    /// Rewire one input of a gate to a different net.
    WrongWire {
        /// Which input position is rewired.
        input_index: usize,
        /// The replacement net.
        new_net: NetId,
    },
    /// Negate the gate function (And -> Nand, Xor -> Xnor, ...).
    OutputNegation,
}

/// A fault: a mutation applied to one gate of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Index into [`Netlist::gates`] of the mutated gate.
    pub gate_index: usize,
    /// What was changed.
    pub kind: FaultKind,
}

impl Fault {
    /// Applies the fault to a copy of `netlist` and returns the mutant.
    ///
    /// # Panics
    ///
    /// Panics if the gate index or input index is out of range.
    pub fn apply(&self, netlist: &Netlist) -> Netlist {
        let mut mutant = netlist.clone();
        let gate = &mut mutant.gates_mut()[self.gate_index];
        match self.kind {
            FaultKind::GateSwap { new_kind } => {
                gate.kind = new_kind;
            }
            FaultKind::WrongWire {
                input_index,
                new_net,
            } => {
                gate.inputs[input_index] = new_net;
            }
            FaultKind::OutputNegation => {
                gate.kind = negate_kind(gate.kind);
            }
        }
        mutant.set_name(format!("{}_faulty", netlist.name()));
        mutant
    }
}

fn negate_kind(kind: GateKind) -> GateKind {
    match kind {
        GateKind::And => GateKind::Nand,
        GateKind::Nand => GateKind::And,
        GateKind::Or => GateKind::Nor,
        GateKind::Nor => GateKind::Or,
        GateKind::Xor => GateKind::Xnor,
        GateKind::Xnor => GateKind::Xor,
        GateKind::Not => GateKind::Buf,
        GateKind::Buf => GateKind::Not,
        GateKind::Const0 => GateKind::Const1,
        GateKind::Const1 => GateKind::Const0,
    }
}

/// Draws a random fault that keeps the netlist structurally valid (acyclic,
/// correct arities). The resulting mutant is *usually* functionally different;
/// callers that need a guaranteed difference should check with simulation.
///
/// Returns `None` if the netlist has no gates.
pub fn random_fault<R: Rng>(netlist: &Netlist, rng: &mut R) -> Option<Fault> {
    if netlist.gate_count() == 0 {
        return None;
    }
    let gate_index = rng.gen_range(0..netlist.gate_count());
    let gate = &netlist.gates()[gate_index];
    let choice = rng.gen_range(0..3u8);
    let kind = match choice {
        0 => {
            // Swap to a different kind with the same arity class.
            let candidates: Vec<GateKind> = match gate.kind.arity() {
                Some(1) => vec![GateKind::Not, GateKind::Buf],
                Some(0) => vec![GateKind::Const0, GateKind::Const1],
                _ => vec![
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Xor,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xnor,
                ],
            };
            let candidates: Vec<GateKind> =
                candidates.into_iter().filter(|&k| k != gate.kind).collect();
            if candidates.is_empty() {
                FaultKind::OutputNegation
            } else {
                FaultKind::GateSwap {
                    new_kind: candidates[rng.gen_range(0..candidates.len())],
                }
            }
        }
        1 => {
            // Rewire an input to a net with strictly lower level than the gate
            // output to preserve acyclicity.
            let levels = logic_levels(netlist);
            let out_level = levels[gate.output.index()];
            let candidates: Vec<NetId> = (0..netlist.net_count() as u32)
                .map(NetId)
                .filter(|n| levels[n.index()] < out_level && !gate.inputs.contains(n))
                .collect();
            if candidates.is_empty() || gate.inputs.is_empty() {
                FaultKind::OutputNegation
            } else {
                FaultKind::WrongWire {
                    input_index: rng.gen_range(0..gate.inputs.len()),
                    new_net: candidates[rng.gen_range(0..candidates.len())],
                }
            }
        }
        _ => FaultKind::OutputNegation,
    };
    Some(Fault { gate_index, kind })
}

/// Generates a mutant that is *guaranteed* to differ from the original on at
/// least one of `tries * 64` random patterns, retrying different faults.
///
/// Returns `None` if no distinguishable mutant was found (e.g. the netlist has
/// no gates or is heavily redundant).
pub fn distinguishable_mutant<R: Rng>(
    netlist: &Netlist,
    tries: usize,
    rng: &mut R,
) -> Option<(Fault, Netlist)> {
    for _ in 0..tries {
        let fault = random_fault(netlist, rng)?;
        let mutant = fault.apply(netlist);
        if mutant.validate().is_err() {
            continue;
        }
        if crate::sim::random_equivalence_check(netlist, &mutant, 4, rng).is_some() {
            return Some((fault, mutant));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder2() -> Netlist {
        // 2-bit ripple carry adder, enough structure for fault injection.
        let mut nl = Netlist::new("add2");
        let a0 = nl.add_input("a0");
        let a1 = nl.add_input("a1");
        let b0 = nl.add_input("b0");
        let b1 = nl.add_input("b1");
        let s0 = nl.xor2(a0, b0, "s0");
        let c0 = nl.and2(a0, b0, "c0");
        let x1 = nl.xor2(a1, b1, "x1");
        let s1 = nl.xor2(x1, c0, "s1");
        let d1 = nl.and2(a1, b1, "d1");
        let t1 = nl.and2(x1, c0, "t1");
        let c1 = nl.or2(d1, t1, "c1");
        nl.add_output("s0", s0);
        nl.add_output("s1", s1);
        nl.add_output("c1", c1);
        nl
    }

    #[test]
    fn gate_swap_changes_function() {
        let nl = adder2();
        let fault = Fault {
            gate_index: 0,
            kind: FaultKind::GateSwap {
                new_kind: GateKind::Or,
            },
        };
        let mutant = fault.apply(&nl);
        mutant.validate().unwrap();
        // a0=1,b0=1: XOR gives 0, OR gives 1.
        assert_ne!(
            nl.evaluate(&[true, false, true, false]),
            mutant.evaluate(&[true, false, true, false])
        );
    }

    #[test]
    fn output_negation_round_trip() {
        for kind in GateKind::all() {
            assert_eq!(negate_kind(negate_kind(kind)), kind);
        }
    }

    #[test]
    fn random_faults_are_structurally_valid() {
        let nl = adder2();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let fault = random_fault(&nl, &mut rng).unwrap();
            let mutant = fault.apply(&nl);
            assert!(mutant.validate().is_ok(), "fault {fault:?} broke validity");
        }
    }

    #[test]
    fn distinguishable_mutant_differs() {
        let nl = adder2();
        let mut rng = StdRng::seed_from_u64(5);
        let (fault, mutant) = distinguishable_mutant(&nl, 50, &mut rng).expect("mutant found");
        let cex = crate::sim::random_equivalence_check(&nl, &mutant, 8, &mut rng)
            .expect("mutant must differ");
        assert_ne!(nl.evaluate(&cex), mutant.evaluate(&cex), "fault {fault:?}");
        assert!(mutant.name().ends_with("_faulty"));
    }

    #[test]
    fn empty_netlist_has_no_faults() {
        let nl = Netlist::new("empty");
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_fault(&nl, &mut rng).is_none());
    }
}
