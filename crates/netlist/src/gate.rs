use std::fmt;

use crate::netlist::NetId;

/// The kind of a combinational logic gate.
///
/// The gate library intentionally matches what a synthesis tool emits for the
/// arithmetic circuits considered by the paper: inverters/buffers, the basic
/// two-input gates and constants. Multi-input `And`/`Or`/`Xor` gates are
/// supported (the generators only emit 2-input gates, but parsers may not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Logical negation of a single input.
    Not,
    /// Identity function of a single input.
    Buf,
    /// Conjunction of all inputs.
    And,
    /// Disjunction of all inputs.
    Or,
    /// Exclusive-or of all inputs.
    Xor,
    /// Negated conjunction of all inputs.
    Nand,
    /// Negated disjunction of all inputs.
    Nor,
    /// Negated exclusive-or of all inputs.
    Xnor,
    /// Constant false; takes no inputs.
    Const0,
    /// Constant true; takes no inputs.
    Const1,
}

impl GateKind {
    /// Returns the number of inputs this gate kind requires, or `None` if it
    /// accepts any number of inputs (>= 2).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Not | GateKind::Buf => Some(1),
            GateKind::Const0 | GateKind::Const1 => Some(0),
            _ => None,
        }
    }

    /// Evaluates the gate over Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is inconsistent with [`GateKind::arity`].
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT gate takes exactly one input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF gate takes exactly one input");
                inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Const0 => {
                assert!(inputs.is_empty(), "CONST0 takes no inputs");
                false
            }
            GateKind::Const1 => {
                assert!(inputs.is_empty(), "CONST1 takes no inputs");
                true
            }
        }
    }

    /// Evaluates the gate over 64 test patterns packed into `u64` words.
    pub fn eval_packed(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
        }
    }

    /// The short lowercase mnemonic used by the textual netlist format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
        }
    }

    /// Parses a mnemonic written by [`GateKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "not" => GateKind::Not,
            "buf" => GateKind::Buf,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "xor" => GateKind::Xor,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xnor" => GateKind::Xnor,
            "const0" => GateKind::Const0,
            "const1" => GateKind::Const1,
            _ => return None,
        })
    }

    /// Returns every supported gate kind.
    pub fn all() -> [GateKind; 10] {
        [
            GateKind::Not,
            GateKind::Buf,
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
            GateKind::Const0,
            GateKind::Const1,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single gate instance: an output net driven by a Boolean function of the
/// input nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The function computed by the gate.
    pub kind: GateKind,
    /// The net driven by the gate.
    pub output: NetId,
    /// The nets read by the gate, in order.
    pub inputs: Vec<NetId>,
}

impl Gate {
    /// Creates a new gate.
    pub fn new(kind: GateKind, output: NetId, inputs: Vec<NetId>) -> Self {
        Gate {
            kind,
            output,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::And.eval(&[true, true]));
        assert!(GateKind::Or.eval(&[true, false]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
    }

    #[test]
    fn packed_matches_scalar() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
        ] {
            for a in [false, true] {
                for b in [false, true] {
                    let scalar = kind.eval(&[a, b]);
                    let wa = if a { u64::MAX } else { 0 };
                    let wb = if b { u64::MAX } else { 0 };
                    let packed = kind.eval_packed(&[wa, wb]);
                    assert_eq!(packed == u64::MAX, scalar, "{kind} {a} {b}");
                    assert!(packed == 0 || packed == u64::MAX);
                }
            }
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for kind in GateKind::all() {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("mux"), None);
    }

    #[test]
    fn arity() {
        assert_eq!(GateKind::Not.arity(), Some(1));
        assert_eq!(GateKind::Const1.arity(), Some(0));
        assert_eq!(GateKind::And.arity(), None);
    }
}
