//! Netlist simulation.
//!
//! Two entry points are provided: single-pattern evaluation ([`evaluate`]) and
//! 64-way bit-parallel simulation ([`simulate_packed`]) used by the generator
//! validation tests and by the random equivalence smoke checks.

use rand::Rng;

use crate::analysis::topological_order;
use crate::netlist::{NetId, Netlist};

/// Evaluates the netlist on one input assignment.
///
/// See [`Netlist::evaluate`] for the user-facing wrapper.
///
/// # Panics
///
/// Panics if `input_values.len()` differs from the number of primary inputs or
/// if the netlist is cyclic.
pub fn evaluate(netlist: &Netlist, input_values: &[bool]) -> Vec<bool> {
    assert_eq!(
        input_values.len(),
        netlist.inputs().len(),
        "one value per primary input is required"
    );
    let order = topological_order(netlist).expect("netlist must be acyclic");
    let mut values = vec![false; netlist.net_count()];
    for (&net, &val) in netlist.inputs().iter().zip(input_values) {
        values[net.index()] = val;
    }
    let mut buf: Vec<bool> = Vec::new();
    for net in order {
        if let Some(gate) = netlist.driver(net) {
            buf.clear();
            buf.extend(gate.inputs.iter().map(|i| values[i.index()]));
            values[net.index()] = gate.kind.eval(&buf);
        }
    }
    netlist
        .outputs()
        .iter()
        .map(|(_, n)| values[n.index()])
        .collect()
}

/// Simulates 64 patterns at once: `input_words[i]` holds 64 values for primary
/// input `i`, one per bit position. Returns one word per primary output.
///
/// # Panics
///
/// Panics if `input_words.len()` differs from the number of primary inputs or
/// if the netlist is cyclic.
pub fn simulate_packed(netlist: &Netlist, input_words: &[u64]) -> Vec<u64> {
    assert_eq!(input_words.len(), netlist.inputs().len());
    let order = topological_order(netlist).expect("netlist must be acyclic");
    let mut values = vec![0u64; netlist.net_count()];
    for (&net, &w) in netlist.inputs().iter().zip(input_words) {
        values[net.index()] = w;
    }
    let mut buf: Vec<u64> = Vec::new();
    for net in order {
        if let Some(gate) = netlist.driver(net) {
            buf.clear();
            buf.extend(gate.inputs.iter().map(|i| values[i.index()]));
            values[net.index()] = gate.kind.eval_packed(&buf);
        }
    }
    netlist
        .outputs()
        .iter()
        .map(|(_, n)| values[n.index()])
        .collect()
}

/// Checks with `rounds * 64` random patterns whether two netlists with the
/// same interface compute the same outputs. Returns `Some(pattern)` with a
/// distinguishing input assignment if a mismatch is found, `None` otherwise.
///
/// This is *testing*, not verification — it is used to sanity-check the
/// circuit generators and the fault injector.
///
/// # Panics
///
/// Panics if the two netlists have different numbers of inputs or outputs.
pub fn random_equivalence_check<R: Rng>(
    a: &Netlist,
    b: &Netlist,
    rounds: usize,
    rng: &mut R,
) -> Option<Vec<bool>> {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input count mismatch");
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output count mismatch"
    );
    for _ in 0..rounds {
        let words: Vec<u64> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
        let out_a = simulate_packed(a, &words);
        let out_b = simulate_packed(b, &words);
        let mut diff: u64 = 0;
        for (wa, wb) in out_a.iter().zip(&out_b) {
            diff |= wa ^ wb;
        }
        if diff != 0 {
            let bit = diff.trailing_zeros();
            let pattern = words.iter().map(|w| (w >> bit) & 1 == 1).collect();
            return Some(pattern);
        }
    }
    None
}

/// Exhaustively compares a netlist against a reference function over all input
/// assignments (feasible for small circuits only).
///
/// The reference receives the input assignment and must return the expected
/// output assignment. Returns the first failing input assignment, if any.
///
/// # Panics
///
/// Panics if the netlist has more than 24 primary inputs.
pub fn exhaustive_check<F>(netlist: &Netlist, mut reference: F) -> Option<Vec<bool>>
where
    F: FnMut(&[bool]) -> Vec<bool>,
{
    let n = netlist.inputs().len();
    assert!(n <= 24, "exhaustive check limited to 24 inputs");
    for pattern in 0u32..(1u32 << n) {
        let bits: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
        let got = evaluate(netlist, &bits);
        let want = reference(&bits);
        if got != want {
            return Some(bits);
        }
    }
    None
}

/// Returns the value of a specific internal net for one input assignment.
/// Useful in tests that inspect intermediate signals.
///
/// # Panics
///
/// Panics if the netlist is cyclic or input counts mismatch.
pub fn probe_net(netlist: &Netlist, input_values: &[bool], net: NetId) -> bool {
    assert_eq!(input_values.len(), netlist.inputs().len());
    let order = topological_order(netlist).expect("netlist must be acyclic");
    let mut values = vec![false; netlist.net_count()];
    for (&n, &val) in netlist.inputs().iter().zip(input_values) {
        values[n.index()] = val;
    }
    let mut buf: Vec<bool> = Vec::new();
    for n in order {
        if let Some(gate) = netlist.driver(n) {
            buf.clear();
            buf.extend(gate.inputs.iter().map(|i| values[i.index()]));
            values[n.index()] = gate.kind.eval(&buf);
        }
    }
    values[net.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mux() -> Netlist {
        // z = s ? b : a
        let mut nl = Netlist::new("mux");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_input("s");
        let ns = nl.not1(s, "ns");
        let t0 = nl.and2(a, ns, "t0");
        let t1 = nl.and2(b, s, "t1");
        let z = nl.or2(t0, t1, "z");
        nl.add_output("z", z);
        nl
    }

    #[test]
    fn evaluate_mux() {
        let nl = mux();
        assert_eq!(nl.evaluate(&[true, false, false]), vec![true]);
        assert_eq!(nl.evaluate(&[true, false, true]), vec![false]);
        assert_eq!(nl.evaluate(&[false, true, true]), vec![true]);
    }

    #[test]
    fn packed_simulation_matches_scalar() {
        let nl = mux();
        let mut rng = StdRng::seed_from_u64(7);
        let words: Vec<u64> = (0..3).map(|_| rng.gen()).collect();
        let packed = simulate_packed(&nl, &words);
        for bit in 0..64 {
            let pattern: Vec<bool> = words.iter().map(|w| (w >> bit) & 1 == 1).collect();
            let scalar = evaluate(&nl, &pattern);
            assert_eq!(scalar[0], (packed[0] >> bit) & 1 == 1);
        }
    }

    #[test]
    fn random_equivalence_detects_difference() {
        let good = mux();
        let mut bad = mux();
        // Replace the OR with XOR; differs when both operands are 1 — but for a
        // mux the products are disjoint, so instead break a product term.
        bad.gates_mut()[1].kind = GateKind::Or; // t0 = a | !s, differs from AND
        let mut rng = StdRng::seed_from_u64(3);
        assert!(random_equivalence_check(&good, &good, 4, &mut rng).is_none());
        let cex = random_equivalence_check(&good, &bad, 16, &mut rng);
        assert!(cex.is_some(), "mutated mux must be distinguishable");
        let cex = cex.unwrap();
        assert_ne!(evaluate(&good, &cex), evaluate(&bad, &cex));
    }

    #[test]
    fn exhaustive_check_mux() {
        let nl = mux();
        let fail = exhaustive_check(&nl, |bits| {
            let (a, b, s) = (bits[0], bits[1], bits[2]);
            vec![if s { b } else { a }]
        });
        assert!(fail.is_none());
    }

    #[test]
    fn probe_internal_net() {
        let nl = mux();
        let ns = nl.find_net("ns").unwrap();
        assert!(probe_net(&nl, &[false, false, false], ns));
        assert!(!probe_net(&nl, &[false, false, true], ns));
    }
}
