//! Structural analysis of netlists: topological ordering, logic levels,
//! fanout counts and transitive fan-in cones.
//!
//! These analyses drive the variable ordering and substitution ordering of the
//! algebraic verifier: variables are ordered by *reverse topological level*
//! and the rewriting keep-sets are derived from fanout counts and gate kinds.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};

/// Computes a topological order of all nets (inputs first, outputs last).
///
/// Returns `None` if the netlist contains a combinational cycle. Use
/// [`topological_order_or_cycle`] to learn which nets are stuck on a cycle.
pub fn topological_order(netlist: &Netlist) -> Option<Vec<NetId>> {
    topological_order_or_cycle(netlist).ok()
}

/// Like [`topological_order`], but on failure returns the nets that could not
/// be ordered: every net on (or fed only through) a combinational cycle.
pub fn topological_order_or_cycle(netlist: &Netlist) -> Result<Vec<NetId>, Vec<NetId>> {
    let n = netlist.net_count();
    // in-degree per net: number of distinct input nets of its driver.
    let mut indeg = vec![0usize; n];
    let mut fanout_edges: Vec<Vec<NetId>> = vec![Vec::new(); n];
    for gate in netlist.gates() {
        let mut seen: HashSet<NetId> = HashSet::new();
        for &inp in &gate.inputs {
            if seen.insert(inp) {
                indeg[gate.output.index()] += 1;
                fanout_edges[inp.index()].push(gate.output);
            }
        }
    }
    let mut queue: VecDeque<NetId> = VecDeque::new();
    for (id, &deg) in indeg.iter().enumerate() {
        if deg == 0 {
            queue.push_back(NetId(id as u32));
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(net) = queue.pop_front() {
        order.push(net);
        for &succ in &fanout_edges[net.index()] {
            indeg[succ.index()] -= 1;
            if indeg[succ.index()] == 0 {
                queue.push_back(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let placed: HashSet<NetId> = order.into_iter().collect();
        let stuck: Vec<NetId> = (0..n as u32)
            .map(NetId)
            .filter(|id| !placed.contains(id))
            .collect();
        Err(stuck)
    }
}

/// Computes the logic level of every net.
///
/// Primary inputs and constant gates have level 0; every other driven net has
/// level `1 + max(level of driver inputs)`. Undriven non-input nets get level
/// 0 as well (they are rejected by validation anyway).
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle.
pub fn logic_levels(netlist: &Netlist) -> Vec<usize> {
    let order = topological_order(netlist).expect("netlist must be acyclic");
    let mut level = vec![0usize; netlist.net_count()];
    for net in order {
        if let Some(gate) = netlist.driver(net) {
            let max_in = gate
                .inputs
                .iter()
                .map(|i| level[i.index()])
                .max()
                .unwrap_or(0);
            level[net.index()] = if gate.inputs.is_empty() {
                0
            } else {
                max_in + 1
            };
        }
    }
    level
}

/// Counts, for every net, the number of gate inputs and primary outputs it
/// feeds (its fanout).
pub fn fanout_counts(netlist: &Netlist) -> Vec<usize> {
    let mut counts = vec![0usize; netlist.net_count()];
    for gate in netlist.gates() {
        for &inp in &gate.inputs {
            counts[inp.index()] += 1;
        }
    }
    for (_, out) in netlist.outputs() {
        counts[out.index()] += 1;
    }
    counts
}

/// Returns the set of nets with fanout greater than one.
pub fn multi_fanout_nets(netlist: &Netlist) -> HashSet<NetId> {
    fanout_counts(netlist)
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 1)
        .map(|(i, _)| NetId(i as u32))
        .collect()
}

/// Computes the transitive fan-in cone of `roots`: every net on a path from a
/// primary input (or constant) to any of the roots, including the roots.
pub fn fanin_cone(netlist: &Netlist, roots: &[NetId]) -> HashSet<NetId> {
    let mut cone: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = roots.to_vec();
    while let Some(net) = stack.pop() {
        if !cone.insert(net) {
            continue;
        }
        if let Some(gate) = netlist.driver(net) {
            for &inp in &gate.inputs {
                if !cone.contains(&inp) {
                    stack.push(inp);
                }
            }
        }
    }
    cone
}

/// Returns the primary-input support of `roots` (the primary inputs inside
/// the fan-in cone).
pub fn input_support(netlist: &Netlist, roots: &[NetId]) -> HashSet<NetId> {
    fanin_cone(netlist, roots)
        .into_iter()
        .filter(|&n| netlist.is_input(n))
        .collect()
}

/// Per-gate-kind histogram, useful for reporting circuit statistics.
pub fn gate_histogram(netlist: &Netlist) -> HashMap<GateKind, usize> {
    let mut hist = HashMap::new();
    for gate in netlist.gates() {
        *hist.entry(gate.kind).or_insert(0) += 1;
    }
    hist
}

/// The depth of the circuit: the maximum logic level over the primary outputs.
pub fn depth(netlist: &Netlist) -> usize {
    let levels = logic_levels(netlist);
    netlist
        .outputs()
        .iter()
        .map(|(_, n)| levels[n.index()])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn two_level() -> Netlist {
        let mut nl = Netlist::new("two_level");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.and2(a, b, "ab");
        let z = nl.or2(ab, c, "z");
        nl.add_output("z", z);
        nl
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let nl = two_level();
        let order = topological_order(&nl).unwrap();
        let pos: Vec<usize> = (0..nl.net_count())
            .map(|i| order.iter().position(|n| n.index() == i).unwrap())
            .collect();
        let ab = nl.find_net("ab").unwrap();
        let z = nl.find_net("z").unwrap();
        let a = nl.find_net("a").unwrap();
        assert!(pos[a.index()] < pos[ab.index()]);
        assert!(pos[ab.index()] < pos[z.index()]);
    }

    #[test]
    fn levels_and_depth() {
        let nl = two_level();
        let levels = logic_levels(&nl);
        assert_eq!(levels[nl.find_net("a").unwrap().index()], 0);
        assert_eq!(levels[nl.find_net("ab").unwrap().index()], 1);
        assert_eq!(levels[nl.find_net("z").unwrap().index()], 2);
        assert_eq!(depth(&nl), 2);
    }

    #[test]
    fn fanout_counts_and_multi_fanout() {
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b, "x");
        let y = nl.and2(x, a, "y");
        let z = nl.or2(x, y, "z");
        nl.add_output("z", z);
        let counts = fanout_counts(&nl);
        assert_eq!(counts[x.index()], 2);
        assert_eq!(counts[a.index()], 2);
        assert_eq!(counts[z.index()], 1);
        let multi = multi_fanout_nets(&nl);
        assert!(multi.contains(&x));
        assert!(multi.contains(&a));
        assert!(!multi.contains(&z));
    }

    #[test]
    fn cone_and_support() {
        let nl = two_level();
        let z = nl.find_net("z").unwrap();
        let cone = fanin_cone(&nl, &[z]);
        assert_eq!(cone.len(), 5);
        let support = input_support(&nl, &[nl.find_net("ab").unwrap()]);
        assert_eq!(support.len(), 2);
    }

    #[test]
    fn histogram_counts_kinds() {
        let nl = two_level();
        let hist = gate_histogram(&nl);
        assert_eq!(hist[&GateKind::And], 1);
        assert_eq!(hist[&GateKind::Or], 1);
    }

    #[test]
    fn cycle_detected() {
        // Build a cyclic netlist manually via add_gate_driving.
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate_driving(GateKind::And, x, &[a, y]).unwrap();
        nl.add_gate_driving(GateKind::Or, y, &[a, x]).unwrap();
        assert!(topological_order(&nl).is_none());
        assert!(nl.validate().is_err());
        let stuck = topological_order_or_cycle(&nl).unwrap_err();
        assert!(stuck.contains(&x) && stuck.contains(&y));
        assert!(
            !stuck.contains(&a),
            "acyclic inputs are not part of the cycle"
        );
    }
}
