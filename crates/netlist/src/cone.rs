//! Output-cone decomposition with shared-prefix analysis.
//!
//! The algebraic verifier's Step-3 reduction is decomposable per output bit:
//! each primary output's backward (fan-in) cone can be reduced independently
//! and the partial remainders recombined. That only pays off when the cones
//! are (mostly) disjoint, though — for carry-propagate arithmetic the cones of
//! adjacent output bits overlap almost completely, and splitting them forfeits
//! the word-level cancellation between columns that keeps the reduction
//! tractable. This module therefore pairs the cone extraction with a
//! *shared-prefix analysis*: cones whose net sets overlap beyond a threshold
//! are merged into one group, so carry-coupled outputs stay together while
//! genuinely independent output clusters (bit-sliced logic, side-by-side
//! units) split into parallel work items.
//!
//! The grouping core ([`group_overlapping_cones`]) is expressed over plain
//! index sets so the verifier can reuse it on its algebraic model, whose
//! variables parallel the netlist's nets.

use std::collections::HashSet;

use crate::analysis::{fanin_cone, topological_order_or_cycle};
use crate::netlist::{NetId, Netlist};

/// The default overlap threshold of [`decompose_output_cones`]: two cones
/// sharing at least half of the smaller cone's nets are merged. This keeps
/// carry-chained output columns (which share nearly everything) in a single
/// group while splitting disjoint output clusters.
pub const DEFAULT_MERGE_OVERLAP: f64 = 0.5;

/// One group of primary outputs plus their combined backward slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputCone {
    /// The primary outputs of this group, in declaration order.
    pub outputs: Vec<NetId>,
    /// Every net in the transitive fan-in of the outputs (including the
    /// outputs themselves), ascending.
    pub nets: Vec<NetId>,
    /// The primary-input support of the group, ascending.
    pub support: Vec<NetId>,
}

/// The result of [`decompose_output_cones`]: merged output cones plus the
/// shared prefix (nets claimed by more than one cone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeDecomposition {
    /// The merged cones, ordered by their first output's declaration order.
    pub cones: Vec<OutputCone>,
    /// Nets that belong to more than one cone *after* merging — the residual
    /// shared prefix that independent reductions will re-traverse.
    pub shared: Vec<NetId>,
}

impl ConeDecomposition {
    /// The index of the cone owning output `net`, if any.
    pub fn cone_of_output(&self, net: NetId) -> Option<usize> {
        self.cones.iter().position(|c| c.outputs.contains(&net))
    }
}

/// Groups per-output index sets by overlap: scanning in order, each cone is
/// merged into the first existing group that shares at least
/// `merge_overlap · min(|cone|, |group|)` elements, otherwise it starts a new
/// group. Returns the member cone indices of each group, in first-member
/// order.
///
/// The scan is deterministic, so the grouping (and everything derived from
/// it, e.g. the parallel reduction's recombination order) is reproducible
/// regardless of how many worker threads later process the groups.
pub fn group_overlapping_cones(cones: &[Vec<u32>], merge_overlap: f64) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_sets: Vec<HashSet<u32>> = Vec::new();
    for (i, cone) in cones.iter().enumerate() {
        let cone_set: HashSet<u32> = cone.iter().copied().collect();
        let mut placed = false;
        for (g, set) in group_sets.iter_mut().enumerate() {
            let smaller = cone_set.len().min(set.len());
            let needed = (merge_overlap * smaller as f64).ceil().max(1.0) as usize;
            let overlap = cone_set.iter().filter(|n| set.contains(n)).count();
            if overlap >= needed {
                set.extend(cone_set.iter().copied());
                groups[g].push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![i]);
            group_sets.push(cone_set);
        }
    }
    groups
}

/// Per-net output-column support masks: bit `min(j, 63)` of `masks[net.0]`
/// is set exactly when `net` lies in the backward (fan-in) cone of primary
/// output `j` (in declaration order, which for the generated multipliers is
/// ascending column weight). Outputs beyond 63 saturate onto bit 63.
///
/// The indexed reduction engines use the masks two ways: the substitution
/// order prefers nets that only reach low output columns (their terms retire
/// into the input-only accumulator sooner), and a column counts as *retired*
/// once every tracked net carrying its bit has been substituted.
pub fn output_column_masks(netlist: &Netlist) -> Vec<u64> {
    let mut masks = vec![0u64; netlist.net_count()];
    for (j, &(_, out)) in netlist.outputs().iter().enumerate() {
        let bit = 1u64 << j.min(63);
        for net in fanin_cone(netlist, &[out]) {
            masks[net.0 as usize] |= bit;
        }
    }
    masks
}

/// Decomposes a netlist into per-output backward cones, merging cones that
/// overlap by at least `merge_overlap` of the smaller cone (see
/// [`DEFAULT_MERGE_OVERLAP`]).
///
/// Returns `Err` with the nets stuck on (or fed only through) a combinational
/// cycle when the netlist is cyclic — a cyclic cone has no reverse-topological
/// substitution order, so downstream extraction would fail anyway and the
/// decomposition surfaces the problem eagerly.
pub fn decompose_output_cones(
    netlist: &Netlist,
    merge_overlap: f64,
) -> Result<ConeDecomposition, Vec<NetId>> {
    topological_order_or_cycle(netlist)?;
    let outputs: Vec<NetId> = netlist.outputs().iter().map(|&(_, n)| n).collect();
    let per_output: Vec<Vec<u32>> = outputs
        .iter()
        .map(|&out| {
            let mut nets: Vec<u32> = fanin_cone(netlist, &[out]).iter().map(|n| n.0).collect();
            nets.sort_unstable();
            nets
        })
        .collect();
    let groups = group_overlapping_cones(&per_output, merge_overlap);
    let mut claimed: HashSet<NetId> = HashSet::new();
    let mut shared: HashSet<NetId> = HashSet::new();
    let mut cones = Vec::with_capacity(groups.len());
    for members in &groups {
        let group_outputs: Vec<NetId> = members.iter().map(|&i| outputs[i]).collect();
        let mut nets: Vec<NetId> = fanin_cone(netlist, &group_outputs).into_iter().collect();
        nets.sort_unstable();
        for &net in &nets {
            if !claimed.insert(net) {
                shared.insert(net);
            }
        }
        let support: Vec<NetId> = nets
            .iter()
            .copied()
            .filter(|&n| netlist.is_input(n))
            .collect();
        cones.push(OutputCone {
            outputs: group_outputs,
            nets,
            support,
        });
    }
    let mut shared: Vec<NetId> = shared.into_iter().collect();
    shared.sort_unstable();
    Ok(ConeDecomposition { cones, shared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// A hand-built 2-bit multiplier: s0 = a0·b0, s1/s2 from the cross terms.
    fn two_bit_multiplier() -> Netlist {
        let mut nl = Netlist::new("mul2");
        let a0 = nl.add_input("a0");
        let a1 = nl.add_input("a1");
        let b0 = nl.add_input("b0");
        let b1 = nl.add_input("b1");
        let p00 = nl.and2(a0, b0, "p00");
        let p01 = nl.and2(a0, b1, "p01");
        let p10 = nl.and2(a1, b0, "p10");
        let p11 = nl.and2(a1, b1, "p11");
        let s1 = nl.xor2(p01, p10, "s1");
        let c1 = nl.and2(p01, p10, "c1");
        let s2 = nl.xor2(p11, c1, "s2");
        let c2 = nl.and2(p11, c1, "c2");
        nl.add_output("s0", p00);
        nl.add_output("s1", s1);
        nl.add_output("s2", s2);
        nl.add_output("s3", c2);
        nl
    }

    #[test]
    fn cone_supports_on_hand_built_multiplier() {
        let nl = two_bit_multiplier();
        // merge_overlap > 1.0 disables merging entirely: one cone per output.
        let d = decompose_output_cones(&nl, 1.1).unwrap();
        assert_eq!(d.cones.len(), 4);
        let name = |n: NetId| nl.net_name(n).to_string();
        let support_names =
            |c: &OutputCone| -> Vec<String> { c.support.iter().map(|&n| name(n)).collect() };
        // s0 = a0 & b0 depends on exactly {a0, b0}.
        assert_eq!(support_names(&d.cones[0]), vec!["a0", "b0"]);
        // s1 = p01 ^ p10 depends on all four inputs.
        assert_eq!(support_names(&d.cones[1]), vec!["a0", "a1", "b0", "b1"]);
        // s2's cone contains the carry c1 and both cross partial products.
        let s2_nets: Vec<String> = d.cones[2].nets.iter().map(|&n| name(n)).collect();
        assert!(s2_nets.contains(&"c1".to_string()));
        assert!(s2_nets.contains(&"p01".to_string()));
        assert!(!s2_nets.contains(&"p00".to_string()), "{s2_nets:?}");
        // The cross partial products are shared between s1/s2/s3 cones.
        assert!(d.shared.iter().any(|&n| name(n) == "p01"));
    }

    #[test]
    fn column_masks_track_output_reach() {
        let nl = two_bit_multiplier();
        let masks = output_column_masks(&nl);
        let find = |name: &str| {
            (0..nl.net_count())
                .map(|i| NetId(i as u32))
                .find(|&n| nl.net_name(n) == name)
                .unwrap()
        };
        // p00 is the s0 output itself and feeds nothing else.
        assert_eq!(masks[find("p00").0 as usize], 0b0001);
        // a0 reaches every output column: s0 directly, s1/s2/s3 via p01.
        assert_eq!(masks[find("a0").0 as usize], 0b1111);
        // The first carry c1 feeds s2 and s3 only.
        assert_eq!(masks[find("c1").0 as usize], 0b1100);
        // a1 misses only the lowest column.
        assert_eq!(masks[find("a1").0 as usize], 0b1110);
    }

    #[test]
    fn overlapping_cones_merge_on_shared_prefix_adders() {
        // A 4-bit Kogge-Stone-style shared-prefix carry structure: all sum
        // bits hang off the same generate/propagate prefix nets, so their
        // cones overlap almost completely and must merge into one group.
        let mut nl = Netlist::new("prefix_adder");
        let a: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let g: Vec<NetId> = (0..4)
            .map(|i| nl.and2(a[i], b[i], format!("g{i}")))
            .collect();
        let p: Vec<NetId> = (0..4)
            .map(|i| nl.xor2(a[i], b[i], format!("p{i}")))
            .collect();
        // Prefix carries: c1 = g0, c2 = g1 | p1 g0, c3 = g2 | p2 c2.
        let t1 = nl.and2(p[1], g[0], "t1");
        let c2 = nl.or2(g[1], t1, "c2");
        let t2 = nl.and2(p[2], c2, "t2");
        let c3 = nl.or2(g[2], t2, "c3");
        let s0 = nl.add_gate(GateKind::Buf, &[p[0]], "s0");
        let s1 = nl.xor2(p[1], g[0], "s1");
        let s2 = nl.xor2(p[2], c2, "s2");
        let s3 = nl.xor2(p[3], c3, "s3");
        for (i, s) in [s0, s1, s2, s3].into_iter().enumerate() {
            nl.add_output(format!("s{i}"), s);
        }
        let merged = decompose_output_cones(&nl, DEFAULT_MERGE_OVERLAP).unwrap();
        assert_eq!(
            merged.cones.len(),
            1,
            "shared-prefix sum cones must merge: {merged:?}"
        );
        assert_eq!(merged.cones[0].outputs.len(), 4);
        assert!(merged.shared.is_empty(), "a single group shares nothing");
        // With merging disabled the prefix nets are shared between cones.
        let split = decompose_output_cones(&nl, 1.1).unwrap();
        assert_eq!(split.cones.len(), 4);
        assert!(split.shared.contains(&g[0]));
    }

    #[test]
    fn disjoint_cones_stay_separate() {
        // Two independent AND gates: nothing overlaps, nothing merges.
        let mut nl = Netlist::new("disjoint");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x = nl.and2(a, b, "x");
        let y = nl.and2(c, d, "y");
        nl.add_output("x", x);
        nl.add_output("y", y);
        let dec = decompose_output_cones(&nl, DEFAULT_MERGE_OVERLAP).unwrap();
        assert_eq!(dec.cones.len(), 2);
        assert!(dec.shared.is_empty());
        assert_eq!(dec.cone_of_output(x), Some(0));
        assert_eq!(dec.cone_of_output(y), Some(1));
        assert_eq!(dec.cone_of_output(a), None);
    }

    #[test]
    fn cyclic_netlist_is_an_error() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate_driving(GateKind::And, x, &[a, y]).unwrap();
        nl.add_gate_driving(GateKind::Or, y, &[a, x]).unwrap();
        nl.add_output("y", y);
        let stuck = decompose_output_cones(&nl, DEFAULT_MERGE_OVERLAP).unwrap_err();
        assert!(stuck.contains(&x) && stuck.contains(&y));
    }

    #[test]
    fn grouping_is_order_deterministic() {
        let cones = vec![vec![0, 1, 2], vec![2, 3, 4], vec![10, 11], vec![11, 12]];
        let groups = group_overlapping_cones(&cones, 0.3);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
        let strict = group_overlapping_cones(&cones, 0.9);
        assert_eq!(strict.len(), 4);
    }
}
