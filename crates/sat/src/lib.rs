//! A CDCL SAT solver with Tseitin encoding and miter-based combinational
//! equivalence checking.
//!
//! The paper compares its algebraic verifier against SAT-based equivalence
//! checking (a commercial checker and ABC's `cec` command), reporting that
//! miter-based CEC times out on medium and large multipliers. Neither tool is
//! available offline, so this crate provides the same *kind* of baseline:
//!
//! * [`Cnf`], [`Lit`] — clause database in DIMACS-like conventions.
//! * [`Solver`] — a conflict-driven clause-learning solver with two-watched
//!   literals, first-UIP learning, activity-based branching and geometric
//!   restarts, plus a conflict budget so hopeless instances stop early.
//! * [`tseitin`] — CNF encoding of a [`gbmv_netlist::Netlist`].
//! * [`miter`] — miter construction and [`check_equivalence`] /
//!   [`check_against_product`] drivers.
//!
//! # Example
//!
//! ```
//! use gbmv_sat::{Cnf, Lit, Solver, SolveResult};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause(vec![Lit::neg(a)]);
//! let mut solver = Solver::new(cnf);
//! match solver.solve(None) {
//!     SolveResult::Sat(model) => {
//!         assert!(!model[a.index()]);
//!         assert!(model[b.index()]);
//!     }
//!     _ => unreachable!("the formula is satisfiable"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod miter;
mod solver;
pub mod tseitin;

pub use cnf::{Cnf, Lit, VarId};
pub use miter::{
    check_against_product, check_against_product_with, check_equivalence, check_equivalence_with,
    EquivalenceResult,
};
pub use solver::{SolveResult, Solver};
