use crate::cnf::{Cnf, Lit, VarId};

/// The result of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; the vector holds one Boolean per variable.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl SolveResult {
    /// Returns the model if the result is SAT.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

const UNASSIGNED: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct VarState {
    /// 0 = false, 1 = true, 2 = unassigned.
    value: u8,
    level: u32,
    /// Index of the reason clause, or usize::MAX for decisions/unset.
    reason: usize,
    activity: f64,
    /// Phase saving.
    phase: bool,
}

/// A conflict-driven clause-learning SAT solver.
///
/// The implementation follows the classic MiniSat recipe: two-watched
/// literals, first-UIP conflict analysis, activity-based decision heuristic
/// with exponential decay, phase saving and geometric restarts. Learned
/// clauses are kept forever (no clause deletion), which is adequate for the
/// circuit-equivalence workloads in this workspace.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// watches[lit.code()] = clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    vars: Vec<VarState>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    propagate_head: usize,
    var_inc: f64,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    ok: bool,
}

impl Solver {
    /// Builds a solver from a clause database.
    pub fn new(cnf: Cnf) -> Self {
        let num_vars = cnf.num_vars();
        let mut solver = Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            vars: vec![
                VarState {
                    value: UNASSIGNED,
                    level: 0,
                    reason: usize::MAX,
                    activity: 0.0,
                    phase: false,
                };
                num_vars
            ],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagate_head: 0,
            var_inc: 1.0,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            ok: true,
        };
        for clause in cnf.clauses() {
            solver.add_clause_internal(clause.clone());
        }
        solver
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        let v = self.vars[lit.var().index()].value;
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            1 - v
        }
    }

    fn add_clause_internal(&mut self, mut lits: Vec<Lit>) {
        if !self.ok {
            return;
        }
        // Remove duplicates; detect tautologies.
        lits.sort_by_key(|l| l.code());
        lits.dedup();
        for i in 1..lits.len() {
            if lits[i].var() == lits[i - 1].var() {
                return; // tautology: contains x and !x
            }
        }
        // Drop literals already false at level 0, satisfied clauses are kept
        // as-is (only called before solving, so everything is level 0).
        lits.retain(|&l| !(self.lit_value(l) == 0 && self.vars[l.var().index()].level == 0));
        match lits.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                if self.lit_value(lits[0]) == UNASSIGNED {
                    self.enqueue(lits[0], usize::MAX);
                } else if self.lit_value(lits[0]) == 0 {
                    self.ok = false;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[lits[0].code()].push(idx);
                self.watches[lits[1].code()].push(idx);
                self.clauses.push(lits);
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: usize) {
        let var = lit.var().index();
        debug_assert_eq!(self.vars[var].value, UNASSIGNED);
        self.vars[var].value = u8::from(lit.is_positive());
        self.vars[var].level = self.trail_lim.len() as u32;
        self.vars[var].reason = reason;
        self.vars[var].phase = lit.is_positive();
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.propagations += 1;
            let falsified = lit.negate();
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_idx = watch_list[i];
                // Ensure the falsified literal is at position 1.
                let (w0, w1) = {
                    let clause = &mut self.clauses[clause_idx];
                    if clause[0] == falsified {
                        clause.swap(0, 1);
                    }
                    (clause[0], clause[1])
                };
                debug_assert_eq!(w1, falsified);
                if self.lit_value(w0) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = None;
                {
                    let clause = &self.clauses[clause_idx];
                    for (pos, &cand) in clause.iter().enumerate().skip(2) {
                        if self.lit_value(cand) != 0 {
                            found = Some(pos);
                            break;
                        }
                    }
                }
                if let Some(pos) = found {
                    let clause = &mut self.clauses[clause_idx];
                    clause.swap(1, pos);
                    let new_watch = clause[1];
                    self.watches[new_watch.code()].push(clause_idx);
                    watch_list.swap_remove(i);
                    continue;
                }
                // No new watch: the clause is unit or conflicting.
                if self.lit_value(w0) == 0 {
                    // Conflict: restore remaining watches and report.
                    self.watches[falsified.code()].extend_from_slice(&watch_list[i..]);
                    watch_list.truncate(i);
                    self.watches[falsified.code()].append(&mut watch_list);
                    return Some(clause_idx);
                }
                self.enqueue(w0, clause_idx);
                i += 1;
            }
            self.watches[falsified.code()].append(&mut watch_list);
        }
        None
    }

    fn bump_var(&mut self, v: VarId) {
        self.vars[v.index()].activity += self.var_inc;
        if self.vars[v.index()].activity > 1e100 {
            for state in &mut self.vars {
                state.activity *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause and the level
    /// to backtrack to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.vars.len()];
        let mut counter = 0usize;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let mut asserting_lit: Option<Lit> = None;

        loop {
            // `asserting_lit` is the literal resolved on (skip it in the clause).
            let clause = self.clauses[clause_idx].clone();
            for &lit in &clause {
                if Some(lit) == asserting_lit {
                    continue;
                }
                let v = lit.var();
                if seen[v.index()] || self.vars[v.index()].level == 0 {
                    continue;
                }
                seen[v.index()] = true;
                self.bump_var(v);
                if self.vars[v.index()].level == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Find the next literal on the trail (highest level) to resolve.
            loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if seen[lit.var().index()] {
                    seen[lit.var().index()] = false;
                    counter -= 1;
                    if counter == 0 {
                        // First UIP found.
                        learned.insert(0, lit.negate());
                        let backtrack_level = learned
                            .iter()
                            .skip(1)
                            .map(|l| self.vars[l.var().index()].level)
                            .max()
                            .unwrap_or(0);
                        return (learned, backtrack_level);
                    }
                    clause_idx = self.vars[lit.var().index()].reason;
                    debug_assert_ne!(clause_idx, usize::MAX);
                    asserting_lit = Some(lit);
                    break;
                }
            }
        }
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-empty trail_lim");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("non-empty trail");
                let v = lit.var().index();
                self.vars[v].value = UNASSIGNED;
                self.vars[v].reason = usize::MAX;
            }
        }
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(f64, usize)> = None;
        for (i, state) in self.vars.iter().enumerate() {
            if state.value == UNASSIGNED {
                match best {
                    Some((act, _)) if act >= state.activity => {}
                    _ => best = Some((state.activity, i)),
                }
            }
        }
        best.map(|(_, i)| Lit::new(VarId(i as u32), self.vars[i].phase))
    }

    /// Solves the formula.
    ///
    /// `conflict_budget` bounds the number of conflicts; when exhausted the
    /// result is [`SolveResult::Unknown`] (the analogue of a timeout in the
    /// paper's experiments). `None` means unlimited.
    pub fn solve(&mut self, conflict_budget: Option<u64>) -> SolveResult {
        self.solve_with_interrupt(conflict_budget, &|| false)
    }

    /// Like [`Solver::solve`], but additionally polls `interrupt` every few
    /// hundred search steps and returns [`SolveResult::Unknown`] as soon as it
    /// reports `true`.
    ///
    /// This is the hook used for cooperative cancellation (shared deadline
    /// tokens) when the SAT baseline runs inside a verification portfolio.
    pub fn solve_with_interrupt(
        &mut self,
        conflict_budget: Option<u64>,
        interrupt: &dyn Fn() -> bool,
    ) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            return SolveResult::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        let mut steps = 0u64;
        loop {
            steps += 1;
            if steps & 0x1ff == 0 && interrupt() {
                return SolveResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    return SolveResult::Unsat;
                }
                if let Some(budget) = conflict_budget {
                    if self.conflicts >= budget {
                        return SolveResult::Unknown;
                    }
                }
                let (learned, backtrack_level) = self.analyze(conflict);
                self.backtrack(backtrack_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    self.enqueue(asserting, usize::MAX);
                } else {
                    let idx = self.clauses.len();
                    self.watches[learned[0].code()].push(idx);
                    // Watch a literal from the backtrack level as the second watch.
                    let mut second = 1;
                    for (pos, &l) in learned.iter().enumerate().skip(1) {
                        if self.vars[l.var().index()].level == backtrack_level {
                            second = pos;
                            break;
                        }
                    }
                    let mut learned = learned;
                    learned.swap(1, second);
                    self.watches[learned[1].code()].push(idx);
                    self.clauses.push(learned.clone());
                    self.enqueue(asserting, idx);
                }
                self.var_inc /= 0.95;
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.backtrack(0);
                }
            } else {
                match self.decide() {
                    None => {
                        let model = self
                            .vars
                            .iter()
                            .map(|s| s.value == 1)
                            .collect::<Vec<bool>>();
                        return SolveResult::Sat(model);
                    }
                    Some(lit) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, usize::MAX);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos(VarId((v - 1) as u32))
        } else {
            Lit::neg(VarId((-v - 1) as u32))
        }
    }

    fn cnf_from(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        let mut cnf = Cnf::new();
        for _ in 0..num_vars {
            cnf.new_var();
        }
        for clause in clauses {
            cnf.add_clause(clause.iter().map(|&v| lit(v)).collect());
        }
        cnf
    }

    fn check_model(clauses: &[&[i32]], model: &[bool]) {
        for clause in clauses {
            assert!(
                clause.iter().any(|&v| {
                    let val = model[(v.unsigned_abs() - 1) as usize];
                    if v > 0 {
                        val
                    } else {
                        !val
                    }
                }),
                "clause {clause:?} not satisfied by {model:?}"
            );
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1]];
        let mut solver = Solver::new(cnf_from(2, clauses));
        match solver.solve(None) {
            SolveResult::Sat(model) => check_model(clauses, &model),
            other => panic!("expected SAT, got {other:?}"),
        }
        let mut solver = Solver::new(cnf_from(1, &[&[1], &[-1]]));
        assert_eq!(solver.solve(None), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.new_var();
        cnf.add_clause(vec![]);
        assert_eq!(Solver::new(cnf).solve(None), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j. i in 0..3, j in 0..2.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let clause_refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut solver = Solver::new(cnf_from(6, &clause_refs));
        assert_eq!(solver.solve(None), SolveResult::Unsat);
        assert!(solver.conflicts() > 0);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5a7);
        for round in 0..60 {
            let num_vars = rng.gen_range(3..9usize);
            let num_clauses = rng.gen_range(2..(4 * num_vars));
            let clauses: Vec<Vec<i32>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=num_vars) as i32;
                            if rng.gen() {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for assignment in 0u32..(1 << num_vars) {
                for clause in &clauses {
                    let ok = clause.iter().any(|&v| {
                        let val = (assignment >> (v.unsigned_abs() - 1)) & 1 == 1;
                        if v > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let clause_refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut solver = Solver::new(cnf_from(num_vars, &clause_refs));
            match solver.solve(None) {
                SolveResult::Sat(model) => {
                    assert!(brute_sat, "round {round}: solver SAT but brute force UNSAT");
                    check_model(&clause_refs, &model);
                }
                SolveResult::Unsat => {
                    assert!(
                        !brute_sat,
                        "round {round}: solver UNSAT but brute force SAT"
                    );
                }
                SolveResult::Unknown => panic!("no budget was set"),
            }
        }
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A moderately hard pigeonhole instance with a budget of one conflict.
        let var = |i: usize, j: usize, holes: usize| (i * holes + j + 1) as i32;
        let pigeons = 6;
        let holes = 5;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| var(i, j, holes)).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    clauses.push(vec![-var(i1, j, holes), -var(i2, j, holes)]);
                }
            }
        }
        let clause_refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut solver = Solver::new(cnf_from(pigeons * holes, &clause_refs));
        assert_eq!(solver.solve(Some(1)), SolveResult::Unknown);
    }
}
