//! Tseitin encoding of gate-level netlists into CNF.

use std::collections::HashMap;

use gbmv_netlist::{GateKind, NetId, Netlist};

use crate::cnf::{Cnf, Lit, VarId};

/// The result of encoding a netlist: the CNF together with the mapping from
/// nets to CNF variables.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The clause database (to be extended by the caller, e.g. with miter
    /// constraints, before solving).
    pub cnf: Cnf,
    /// CNF variable of every net.
    pub net_vars: HashMap<NetId, VarId>,
}

impl Encoding {
    /// The CNF variable of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net was not part of the encoded netlist.
    pub fn var(&self, net: NetId) -> VarId {
        self.net_vars[&net]
    }
}

/// Encodes the netlist into CNF with one variable per net and the standard
/// Tseitin clauses per gate. Constants become unit clauses.
pub fn encode(netlist: &Netlist) -> Encoding {
    let mut cnf = Cnf::new();
    let mut net_vars = HashMap::new();
    for i in 0..netlist.net_count() {
        let net = NetId(i as u32);
        net_vars.insert(net, cnf.new_var());
    }
    for gate in netlist.gates() {
        let out = net_vars[&gate.output];
        let ins: Vec<VarId> = gate.inputs.iter().map(|n| net_vars[n]).collect();
        encode_gate(&mut cnf, gate.kind, out, &ins);
    }
    Encoding { cnf, net_vars }
}

/// Adds the Tseitin clauses of one gate `out = kind(ins)` to the CNF.
pub fn encode_gate(cnf: &mut Cnf, kind: GateKind, out: VarId, ins: &[VarId]) {
    let o = Lit::pos(out);
    let no = Lit::neg(out);
    match kind {
        GateKind::Buf => {
            cnf.add_clause(vec![no, Lit::pos(ins[0])]);
            cnf.add_clause(vec![o, Lit::neg(ins[0])]);
        }
        GateKind::Not => {
            cnf.add_clause(vec![no, Lit::neg(ins[0])]);
            cnf.add_clause(vec![o, Lit::pos(ins[0])]);
        }
        GateKind::And | GateKind::Nand => {
            let (t, nt) = if kind == GateKind::And {
                (o, no)
            } else {
                (no, o)
            };
            // t -> every input; (all inputs) -> t
            let mut long = vec![t];
            for &i in ins {
                cnf.add_clause(vec![nt, Lit::pos(i)]);
                long.push(Lit::neg(i));
            }
            cnf.add_clause(long);
        }
        GateKind::Or | GateKind::Nor => {
            let (t, nt) = if kind == GateKind::Or {
                (o, no)
            } else {
                (no, o)
            };
            // every input -> t; t -> some input
            let mut long = vec![nt];
            for &i in ins {
                cnf.add_clause(vec![t, Lit::neg(i)]);
                long.push(Lit::pos(i));
            }
            cnf.add_clause(long);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain XORs for arity > 2 using auxiliary variables.
            let mut acc = ins[0];
            for (idx, &next) in ins.iter().enumerate().skip(1) {
                let target = if idx == ins.len() - 1 {
                    out
                } else {
                    cnf.new_var()
                };
                let invert = idx == ins.len() - 1 && kind == GateKind::Xnor;
                encode_xor2(cnf, target, acc, next, invert);
                acc = target;
            }
            if ins.len() == 1 {
                // Degenerate: out = in (or its negation for XNOR).
                if kind == GateKind::Xor {
                    cnf.add_clause(vec![no, Lit::pos(ins[0])]);
                    cnf.add_clause(vec![o, Lit::neg(ins[0])]);
                } else {
                    cnf.add_clause(vec![no, Lit::neg(ins[0])]);
                    cnf.add_clause(vec![o, Lit::pos(ins[0])]);
                }
            }
        }
        GateKind::Const0 => {
            cnf.add_clause(vec![no]);
        }
        GateKind::Const1 => {
            cnf.add_clause(vec![o]);
        }
    }
}

/// Encodes `z = a XOR b` (or `z = NOT(a XOR b)` when `invert`).
fn encode_xor2(cnf: &mut Cnf, z: VarId, a: VarId, b: VarId, invert: bool) {
    let (zp, zn) = if invert {
        (Lit::neg(z), Lit::pos(z))
    } else {
        (Lit::pos(z), Lit::neg(z))
    };
    cnf.add_clause(vec![zn, Lit::pos(a), Lit::pos(b)]);
    cnf.add_clause(vec![zn, Lit::neg(a), Lit::neg(b)]);
    cnf.add_clause(vec![zp, Lit::pos(a), Lit::neg(b)]);
    cnf.add_clause(vec![zp, Lit::neg(a), Lit::pos(b)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};
    use gbmv_netlist::Netlist;

    /// For each gate kind, encode a one-gate netlist and check that the set
    /// of satisfying assignments matches the gate's truth table.
    #[test]
    fn single_gate_encodings_match_truth_tables() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
        ] {
            for pattern in 0..4u32 {
                for out_val in [false, true] {
                    let mut nl = Netlist::new("g");
                    let a = nl.add_input("a");
                    let b = nl.add_input("b");
                    let z = nl.add_gate(kind, &[a, b], "z");
                    nl.add_output("z", z);
                    let enc = encode(&nl);
                    let mut cnf = enc.cnf.clone();
                    let av = pattern & 1 == 1;
                    let bv = pattern & 2 != 0;
                    cnf.add_clause(vec![Lit::new(enc.var(a), av)]);
                    cnf.add_clause(vec![Lit::new(enc.var(b), bv)]);
                    cnf.add_clause(vec![Lit::new(enc.var(z), out_val)]);
                    let expected = kind.eval(&[av, bv]) == out_val;
                    let result = Solver::new(cnf).solve(None);
                    let sat = matches!(result, SolveResult::Sat(_));
                    assert_eq!(
                        sat,
                        expected,
                        "{kind:?} a={av} b={bv} z={out_val} must be {}",
                        if expected { "SAT" } else { "UNSAT" }
                    );
                }
            }
        }
    }

    #[test]
    fn three_input_gates_encode_correctly() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            for pattern in 0..8u32 {
                let bits = [pattern & 1 == 1, pattern & 2 != 0, pattern & 4 != 0];
                let mut nl = Netlist::new("g3");
                let ins: Vec<_> = (0..3).map(|i| nl.add_input(format!("i{i}"))).collect();
                let z = nl.add_gate(kind, &ins, "z");
                nl.add_output("z", z);
                let enc = encode(&nl);
                let mut cnf = enc.cnf.clone();
                for (net, &val) in ins.iter().zip(&bits) {
                    cnf.add_clause(vec![Lit::new(enc.var(*net), val)]);
                }
                cnf.add_clause(vec![Lit::new(enc.var(z), kind.eval(&bits))]);
                assert!(
                    matches!(Solver::new(cnf).solve(None), SolveResult::Sat(_)),
                    "{kind:?} with {bits:?}"
                );
            }
        }
    }

    #[test]
    fn constants_become_units() {
        let mut nl = Netlist::new("c");
        let zero = nl.const0("zero");
        let one = nl.const1("one");
        nl.add_output("zero", zero);
        nl.add_output("one", one);
        let enc = encode(&nl);
        let mut cnf = enc.cnf.clone();
        cnf.add_clause(vec![Lit::pos(enc.var(zero))]);
        assert_eq!(Solver::new(cnf).solve(None), SolveResult::Unsat);
        let mut cnf = enc.cnf.clone();
        cnf.add_clause(vec![Lit::neg(enc.var(one))]);
        assert_eq!(Solver::new(cnf).solve(None), SolveResult::Unsat);
    }

    #[test]
    fn inverter_and_buffer() {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input("a");
        let n = nl.not1(a, "n");
        let b = nl.add_gate(GateKind::Buf, &[n], "b");
        nl.add_output("b", b);
        let enc = encode(&nl);
        let mut cnf = enc.cnf.clone();
        // a = 1 and b = 1 must be impossible (b = !a).
        cnf.add_clause(vec![Lit::pos(enc.var(a))]);
        cnf.add_clause(vec![Lit::pos(enc.var(b))]);
        assert_eq!(Solver::new(cnf).solve(None), SolveResult::Unsat);
    }
}
