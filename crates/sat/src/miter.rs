//! Miter construction and combinational equivalence checking.
//!
//! Equivalence of two circuits with the same interface is checked by building
//! a *miter*: both circuits share the primary inputs, corresponding outputs
//! are XOR-ed and the OR of all XORs is asserted. The miter is satisfiable iff
//! the circuits differ on some input. This is the classic SAT-based CEC flow
//! the paper uses as its "one big miter" baseline (ABC `cec`), which times out
//! on non-trivial multipliers — reproduced here with a conflict budget.

use gbmv_netlist::Netlist;

use crate::cnf::Lit;
use crate::solver::{SolveResult, Solver};
use crate::tseitin::encode_gate;
use crate::Cnf;

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The two circuits agree on every input.
    Equivalent,
    /// The circuits differ; the vector is a distinguishing input assignment
    /// (one value per primary input, in declaration order).
    NotEquivalent(Vec<bool>),
    /// The conflict budget was exhausted before a verdict (the "TO" analogue).
    Unknown,
}

impl EquivalenceResult {
    /// Returns `true` for [`EquivalenceResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent)
    }
}

/// Builds the miter CNF of two netlists with identical interfaces and solves
/// it.
///
/// `conflict_budget` bounds the solver effort; `None` means unlimited.
///
/// # Panics
///
/// Panics if the interfaces differ (number of inputs or outputs).
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    conflict_budget: Option<u64>,
) -> EquivalenceResult {
    check_equivalence_with(a, b, conflict_budget, &|| false)
}

/// Like [`check_equivalence`], but polls `interrupt` during the SAT search and
/// returns [`EquivalenceResult::Unknown`] as soon as it reports `true`.
///
/// This is the cooperative-cancellation hook used when the miter baseline runs
/// inside a verification portfolio racing against the algebraic engines.
///
/// # Panics
///
/// Panics if the interfaces differ (number of inputs or outputs).
pub fn check_equivalence_with(
    a: &Netlist,
    b: &Netlist,
    conflict_budget: Option<u64>,
    interrupt: &dyn Fn() -> bool,
) -> EquivalenceResult {
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "input counts must match"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output counts must match"
    );
    let mut cnf = Cnf::new();
    // Shared primary inputs.
    let shared_inputs: Vec<_> = (0..a.inputs().len()).map(|_| cnf.new_var()).collect();
    let a_vars = encode_into(&mut cnf, a, &shared_inputs);
    let b_vars = encode_into(&mut cnf, b, &shared_inputs);
    // XOR each output pair, OR them all, assert the OR.
    let mut diff_lits = Vec::new();
    for (oa, ob) in a_vars.outputs.iter().zip(&b_vars.outputs) {
        let x = cnf.new_var();
        encode_gate(&mut cnf, gbmv_netlist::GateKind::Xor, x, &[*oa, *ob]);
        diff_lits.push(Lit::pos(x));
    }
    cnf.add_clause(diff_lits);
    let mut solver = Solver::new(cnf);
    match solver.solve_with_interrupt(conflict_budget, interrupt) {
        SolveResult::Unsat => EquivalenceResult::Equivalent,
        SolveResult::Unknown => EquivalenceResult::Unknown,
        SolveResult::Sat(model) => {
            let pattern = shared_inputs.iter().map(|v| model[v.index()]).collect();
            EquivalenceResult::NotEquivalent(pattern)
        }
    }
}

/// Checks a multiplier netlist against a freshly built golden array
/// multiplier of the same width (the typical CEC setup: implementation vs
/// trusted reference).
///
/// # Panics
///
/// Panics if the netlist interface is not `2*width` inputs / `2*width`
/// outputs.
pub fn check_against_product(
    netlist: &Netlist,
    width: usize,
    conflict_budget: Option<u64>,
) -> EquivalenceResult {
    check_against_product_with(netlist, width, conflict_budget, &|| false)
}

/// Like [`check_against_product`], but polls `interrupt` during the SAT search
/// (see [`check_equivalence_with`]).
///
/// # Panics
///
/// Panics if the netlist interface is not `2*width` inputs / `2*width`
/// outputs.
pub fn check_against_product_with(
    netlist: &Netlist,
    width: usize,
    conflict_budget: Option<u64>,
    interrupt: &dyn Fn() -> bool,
) -> EquivalenceResult {
    let golden = golden_array_multiplier(width);
    check_equivalence_with(netlist, &golden, conflict_budget, interrupt)
}

/// Builds the golden reference multiplier: a simple-partial-product array
/// multiplier with a ripple-carry final adder, constructed gate by gate here
/// (without `gbmv-genmul`) to keep the reference independent from the
/// generator crate under test.
fn golden_array_multiplier(width: usize) -> Netlist {
    use gbmv_netlist::NetId;
    let mut nl = Netlist::new(format!("golden_mul_{width}"));
    let a: Vec<NetId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    // Accumulate partial products with a school-book shift-and-add structure.
    let out_width = 2 * width;
    // acc holds the current sum as a vector of nets (None = constant zero).
    let mut acc: Vec<Option<NetId>> = vec![None; out_width];
    for (i, &bi) in b.iter().enumerate() {
        // Row: a_j & b_i at position i+j.
        let row: Vec<Option<NetId>> = (0..out_width)
            .map(|pos| {
                if pos >= i && pos - i < width {
                    Some(nl.and2(a[pos - i], bi, format!("pp_{i}_{}", pos - i)))
                } else {
                    None
                }
            })
            .collect();
        // Ripple-carry add row into acc.
        let mut carry: Option<NetId> = None;
        let mut next: Vec<Option<NetId>> = vec![None; out_width];
        for pos in 0..out_width {
            let mut operands: Vec<NetId> = Vec::new();
            if let Some(x) = acc[pos] {
                operands.push(x);
            }
            if let Some(x) = row[pos] {
                operands.push(x);
            }
            if let Some(x) = carry {
                operands.push(x);
            }
            match operands.len() {
                0 => {
                    next[pos] = None;
                    carry = None;
                }
                1 => {
                    next[pos] = Some(operands[0]);
                    carry = None;
                }
                2 => {
                    let s = nl.xor2(operands[0], operands[1], format!("s_{i}_{pos}"));
                    let c = nl.and2(operands[0], operands[1], format!("c_{i}_{pos}"));
                    next[pos] = Some(s);
                    carry = Some(c);
                }
                _ => {
                    let x = nl.xor2(operands[0], operands[1], format!("x_{i}_{pos}"));
                    let s = nl.xor2(x, operands[2], format!("s_{i}_{pos}"));
                    let d = nl.and2(operands[0], operands[1], format!("d_{i}_{pos}"));
                    let t = nl.and2(x, operands[2], format!("t_{i}_{pos}"));
                    let c = nl.or2(d, t, format!("c_{i}_{pos}"));
                    next[pos] = Some(s);
                    carry = Some(c);
                }
            }
        }
        acc = next;
    }
    let zero = nl.const0("zero");
    for (pos, bit) in acc.iter().enumerate() {
        nl.add_output(format!("s{pos}"), bit.unwrap_or(zero));
    }
    nl
}

/// Per-netlist encoding produced by [`encode_into`].
struct NetVars {
    outputs: Vec<crate::cnf::VarId>,
}

/// Encodes a netlist into an existing CNF, mapping its primary inputs onto
/// `shared_inputs` so two circuits can share the same input variables.
fn encode_into(cnf: &mut Cnf, netlist: &Netlist, shared_inputs: &[crate::cnf::VarId]) -> NetVars {
    use std::collections::HashMap;
    let mut map: HashMap<gbmv_netlist::NetId, crate::cnf::VarId> = HashMap::new();
    for (net, &var) in netlist.inputs().iter().zip(shared_inputs) {
        map.insert(*net, var);
    }
    for i in 0..netlist.net_count() {
        let net = gbmv_netlist::NetId(i as u32);
        map.entry(net).or_insert_with(|| cnf.new_var());
    }
    for gate in netlist.gates() {
        let out = map[&gate.output];
        let ins: Vec<_> = gate.inputs.iter().map(|n| map[n]).collect();
        encode_gate(cnf, gate.kind, out, &ins);
    }
    NetVars {
        outputs: netlist.outputs().iter().map(|(_, n)| map[n]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_genmul::{build_adder, AdderKind, MultiplierSpec};
    use gbmv_netlist::fault::distinguishable_mutant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn golden_multiplier_is_correct() {
        let golden = golden_array_multiplier(4);
        golden.validate().unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    golden.evaluate_words(&[a as u128, b as u128], &[4, 4]),
                    (a * b) as u128
                );
            }
        }
    }

    #[test]
    fn equivalent_adders_are_proved_equivalent() {
        let rc = build_adder(4, AdderKind::RippleCarry, false);
        let ks = build_adder(4, AdderKind::KoggeStone, false);
        assert!(check_equivalence(&rc, &ks, None).is_equivalent());
    }

    #[test]
    fn different_adders_yield_counterexample() {
        let rc = build_adder(4, AdderKind::RippleCarry, false);
        let mut rng = StdRng::seed_from_u64(17);
        let (_, mutant) = distinguishable_mutant(&rc, 100, &mut rng).expect("mutant");
        match check_equivalence(&rc, &mutant, None) {
            EquivalenceResult::NotEquivalent(pattern) => {
                assert_ne!(rc.evaluate(&pattern), mutant.evaluate(&pattern));
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn small_multipliers_check_against_golden() {
        for arch in ["SP-WT-CL", "BP-AR-RC", "SP-CT-BK"] {
            let nl = MultiplierSpec::parse(arch, 4).unwrap().build();
            assert!(
                check_against_product(&nl, 4, None).is_equivalent(),
                "{arch} must be equivalent to the golden multiplier"
            );
        }
    }

    #[test]
    fn faulty_multiplier_detected() {
        let nl = MultiplierSpec::parse("SP-WT-CL", 4).unwrap().build();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, mutant) = distinguishable_mutant(&nl, 100, &mut rng).expect("mutant");
        match check_against_product(&mutant, 4, None) {
            EquivalenceResult::NotEquivalent(pattern) => {
                let mut a = 0u128;
                let mut b = 0u128;
                for i in 0..4 {
                    if pattern[i] {
                        a |= 1 << i;
                    }
                    if pattern[4 + i] {
                        b |= 1 << i;
                    }
                }
                assert_ne!(mutant.evaluate_words(&[a, b], &[4, 4]), a * b);
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn conflict_budget_gives_unknown_on_hard_miter() {
        // A Booth multiplier against the golden array multiplier at 8 bits is
        // already hard for a tiny conflict budget.
        let nl = MultiplierSpec::parse("BP-WT-KS", 8).unwrap().build();
        let result = check_against_product(&nl, 8, Some(50));
        assert_eq!(result, EquivalenceResult::Unknown);
    }
}
