use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: VarId) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: VarId) -> Self {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(v: VarId, positive: bool) -> Self {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> VarId {
        VarId(self.0 >> 1)
    }

    /// Returns `true` if this is a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negation of this literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code of the literal (2*var + sign), used for watch lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var().0 + 1)
        } else {
            write!(f, "-{}", self.var().0 + 1)
        }
    }
}

/// A clause database: a set of variables and a list of clauses (disjunctions
/// of literals).
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> VarId {
        let v = VarId(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// formula trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Serialises the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                out.push_str(&lit.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = VarId(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert_eq!(Lit::new(v, true), p);
        assert_eq!(Lit::new(v, false), n);
        assert_ne!(p.code(), n.code());
    }

    #[test]
    fn cnf_building_and_dimacs() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause(vec![Lit::neg(a)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        let dimacs = cnf.to_dimacs();
        assert!(dimacs.starts_with("p cnf 2 2"));
        assert!(dimacs.contains("1 -2 0"));
        assert!(dimacs.contains("-1 0"));
    }

    #[test]
    fn display_uses_dimacs_convention() {
        assert_eq!(Lit::pos(VarId(0)).to_string(), "1");
        assert_eq!(Lit::neg(VarId(2)).to_string(), "-3");
    }
}
