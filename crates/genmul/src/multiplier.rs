use gbmv_netlist::{NetId, Netlist};

use crate::accumulator::{
    reduce_array, reduce_compressor42, reduce_dadda, reduce_redundant_binary, reduce_wallace,
    ReducedRows,
};
use crate::adder::{add_words, AdderKind};
use crate::partial::{booth_partial_products, simple_partial_products, PartialProducts};

/// The partial product generator family (`SP` or `BP` in the paper's
/// benchmark names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartialProduct {
    /// Simple AND-matrix partial products (`SP`).
    Simple,
    /// Radix-4 Booth-recoded partial products (`BP`).
    Booth,
}

impl PartialProduct {
    /// The two-letter abbreviation used in the paper.
    pub fn abbrev(self) -> &'static str {
        match self {
            PartialProduct::Simple => "SP",
            PartialProduct::Booth => "BP",
        }
    }

    /// All partial product generators.
    pub fn all() -> [PartialProduct; 2] {
        [PartialProduct::Simple, PartialProduct::Booth]
    }
}

/// The partial product accumulator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Accumulator {
    /// Array accumulation (`AR`).
    Array,
    /// Wallace tree (`WT`).
    Wallace,
    /// Dadda tree (`DT`).
    Dadda,
    /// (4,2)-compressor tree (`CT`).
    Compressor42,
    /// Redundant-binary addition tree (`RT`).
    RedundantBinary,
}

impl Accumulator {
    /// The two-letter abbreviation used in the paper.
    pub fn abbrev(self) -> &'static str {
        match self {
            Accumulator::Array => "AR",
            Accumulator::Wallace => "WT",
            Accumulator::Dadda => "DT",
            Accumulator::Compressor42 => "CT",
            Accumulator::RedundantBinary => "RT",
        }
    }

    /// All accumulator kinds.
    pub fn all() -> [Accumulator; 5] {
        [
            Accumulator::Array,
            Accumulator::Wallace,
            Accumulator::Dadda,
            Accumulator::Compressor42,
            Accumulator::RedundantBinary,
        ]
    }
}

/// The final-stage adder family. Alias of [`AdderKind`] to keep multiplier
/// specifications self-describing.
pub type FinalAdder = AdderKind;

/// A complete multiplier architecture description, e.g. `SP-WT-CL 16x16`.
///
/// # Example
///
/// ```
/// use gbmv_genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
///
/// let spec = MultiplierSpec::new(8, PartialProduct::Booth, Accumulator::Compressor42,
///                                FinalAdder::KoggeStone);
/// assert_eq!(spec.name(), "BP-CT-KS-8");
/// let netlist = spec.build();
/// assert_eq!(netlist.evaluate_words(&[200, 155], &[8, 8]), 200 * 155);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiplierSpec {
    /// Operand width `n` (the multiplier computes `a*b mod 2^(2n)` with `2n`
    /// output bits).
    pub width: usize,
    /// Partial product generator.
    pub pp: PartialProduct,
    /// Partial product accumulator.
    pub acc: Accumulator,
    /// Final-stage carry-propagate adder.
    pub fsa: FinalAdder,
}

impl MultiplierSpec {
    /// Creates a new multiplier specification.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, pp: PartialProduct, acc: Accumulator, fsa: FinalAdder) -> Self {
        assert!(width > 0, "multiplier width must be positive");
        MultiplierSpec {
            width,
            pp,
            acc,
            fsa,
        }
    }

    /// The benchmark name in the paper's convention, e.g. `SP-AR-RC-16`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.pp.abbrev(),
            self.acc.abbrev(),
            self.fsa.abbrev(),
            self.width
        )
    }

    /// The architecture name without the width, e.g. `SP-AR-RC`.
    pub fn architecture(&self) -> String {
        format!(
            "{}-{}-{}",
            self.pp.abbrev(),
            self.acc.abbrev(),
            self.fsa.abbrev()
        )
    }

    /// Parses an architecture string like `"SP-WT-CL"` together with a width.
    ///
    /// Returns `None` if any component is unknown.
    pub fn parse(architecture: &str, width: usize) -> Option<Self> {
        let parts: Vec<&str> = architecture.split('-').collect();
        if parts.len() != 3 {
            return None;
        }
        let pp = match parts[0] {
            "SP" => PartialProduct::Simple,
            "BP" => PartialProduct::Booth,
            _ => return None,
        };
        let acc = match parts[1] {
            "AR" => Accumulator::Array,
            "WT" => Accumulator::Wallace,
            "DT" => Accumulator::Dadda,
            "CT" => Accumulator::Compressor42,
            "RT" => Accumulator::RedundantBinary,
            _ => return None,
        };
        let fsa = match parts[2] {
            "RC" => AdderKind::RippleCarry,
            "CL" => AdderKind::CarryLookAhead,
            "BK" => AdderKind::BrentKung,
            "KS" => AdderKind::KoggeStone,
            "HC" => AdderKind::HanCarlson,
            _ => return None,
        };
        Some(MultiplierSpec::new(width, pp, acc, fsa))
    }

    /// Builds the gate-level netlist: inputs `a0..a{n-1}`, `b0..b{n-1}`,
    /// outputs `s0..s{2n-1}` computing `a*b mod 2^(2n)`.
    pub fn build(&self) -> Netlist {
        let n = self.width;
        let mut nl = Netlist::new(self.name());
        let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
        let pps: PartialProducts = match self.pp {
            PartialProduct::Simple => simple_partial_products(&mut nl, &a, &b),
            PartialProduct::Booth => booth_partial_products(&mut nl, &a, &b),
        };
        let rows: ReducedRows = match self.acc {
            Accumulator::Array => reduce_array(&mut nl, &pps),
            Accumulator::Wallace => reduce_wallace(&mut nl, &pps),
            Accumulator::Dadda => reduce_dadda(&mut nl, &pps),
            Accumulator::Compressor42 => reduce_compressor42(&mut nl, &pps),
            Accumulator::RedundantBinary => reduce_redundant_binary(&mut nl, &pps),
        };
        let (sums, _cout) = add_words(&mut nl, self.fsa, &rows.row_a, &rows.row_b, None, "fsa");
        for (i, &s) in sums.iter().enumerate() {
            nl.add_output(format!("s{i}"), s);
        }
        nl
    }
}

impl std::fmt::Display for MultiplierSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn all_architectures() -> Vec<(PartialProduct, Accumulator, FinalAdder)> {
        let mut v = Vec::new();
        for pp in PartialProduct::all() {
            for acc in Accumulator::all() {
                for fsa in AdderKind::all() {
                    v.push((pp, acc, fsa));
                }
            }
        }
        v
    }

    #[test]
    fn every_architecture_exhaustive_3bit() {
        for (pp, acc, fsa) in all_architectures() {
            let spec = MultiplierSpec::new(3, pp, acc, fsa);
            let nl = spec.build();
            nl.validate().unwrap();
            let modulus = 1u128 << 6;
            for a in 0..8u64 {
                for b in 0..8u64 {
                    let got = nl.evaluate_words(&[a as u128, b as u128], &[3, 3]);
                    assert_eq!(
                        got,
                        (a as u128 * b as u128) % modulus,
                        "{}: {a}*{b}",
                        spec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_architecture_random_8bit() {
        let mut rng = StdRng::seed_from_u64(0x8b17);
        for (pp, acc, fsa) in all_architectures() {
            let spec = MultiplierSpec::new(8, pp, acc, fsa);
            let nl = spec.build();
            nl.validate().unwrap();
            for _ in 0..20 {
                let a = rng.gen_range(0..256u64);
                let b = rng.gen_range(0..256u64);
                let got = nl.evaluate_words(&[a as u128, b as u128], &[8, 8]);
                assert_eq!(got, a as u128 * b as u128, "{}: {a}*{b}", spec.name());
            }
        }
    }

    #[test]
    fn selected_architectures_random_16bit() {
        let mut rng = StdRng::seed_from_u64(16);
        for arch in ["SP-AR-RC", "SP-WT-CL", "BP-CT-BK", "BP-RT-KS", "SP-DT-HC"] {
            let spec = MultiplierSpec::parse(arch, 16).unwrap();
            let nl = spec.build();
            nl.validate().unwrap();
            for _ in 0..10 {
                let a = rng.gen_range(0..65536u64);
                let b = rng.gen_range(0..65536u64);
                let got = nl.evaluate_words(&[a as u128, b as u128], &[16, 16]);
                assert_eq!(got, a as u128 * b as u128, "{arch}: {a}*{b}");
            }
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        for (pp, acc, fsa) in all_architectures() {
            let spec = MultiplierSpec::new(4, pp, acc, fsa);
            let parsed = MultiplierSpec::parse(&spec.architecture(), 4).unwrap();
            assert_eq!(parsed, spec);
        }
        assert!(MultiplierSpec::parse("XX-YY-ZZ", 4).is_none());
        assert!(MultiplierSpec::parse("SP-AR", 4).is_none());
    }

    #[test]
    fn name_format_matches_paper_convention() {
        let spec = MultiplierSpec::new(
            16,
            PartialProduct::Simple,
            Accumulator::Wallace,
            FinalAdder::CarryLookAhead,
        );
        assert_eq!(spec.name(), "SP-WT-CL-16");
        assert_eq!(spec.architecture(), "SP-WT-CL");
        assert_eq!(spec.to_string(), "SP-WT-CL-16");
    }

    #[test]
    fn booth_multiplier_has_fewer_pp_rows_but_works() {
        // Structural sanity: the Booth multiplier at width 8 should have a
        // different gate count from the simple one, and both must be correct
        // (correctness covered above).
        let sp = MultiplierSpec::parse("SP-WT-RC", 8).unwrap().build();
        let bp = MultiplierSpec::parse("BP-WT-RC", 8).unwrap().build();
        assert_ne!(sp.gate_count(), bp.gate_count());
    }
}
