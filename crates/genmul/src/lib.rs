//! Gate-level generators for integer adders and multipliers.
//!
//! The paper evaluates multipliers produced by the Arithmetic Module Generator
//! (AMG) and synthesised with Yosys. Neither tool is available offline, so this
//! crate rebuilds the same architecture space directly at the gate level:
//!
//! * **Partial product generators** — simple AND matrix (`SP`) and radix-4
//!   Booth recoding (`BP`).
//! * **Partial product accumulators** — array (`AR`), Wallace tree (`WT`),
//!   Dadda tree (`DT`), (4,2)-compressor tree (`CT`) and a redundant-binary
//!   addition tree (`RT`).
//! * **Final stage adders** — ripple-carry (`RC`), block carry-lookahead
//!   (`CL`), Brent-Kung (`BK`), Kogge-Stone (`KS`) and Han-Carlson (`HC`).
//!
//! A multiplier is described by a [`MultiplierSpec`] and built into a
//! [`gbmv_netlist::Netlist`] whose outputs are the `2n` product bits of the
//! unsigned product `a * b mod 2^(2n)`.
//!
//! Every generator is validated against the arithmetic ground truth by
//! exhaustive simulation at small widths and randomised simulation at larger
//! widths (see the unit tests and the crate's integration tests).
//!
//! # Example
//!
//! ```
//! use gbmv_genmul::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
//!
//! let spec = MultiplierSpec::new(4, PartialProduct::Simple, Accumulator::Wallace,
//!                                FinalAdder::BrentKung);
//! let netlist = spec.build();
//! assert_eq!(netlist.inputs().len(), 8);
//! assert_eq!(netlist.outputs().len(), 8);
//! // 5 * 7 = 35
//! assert_eq!(netlist.evaluate_words(&[5, 7], &[4, 4]), 35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod adder;
pub mod cells;
pub mod partial;

mod multiplier;

pub use adder::{build_adder, AdderKind};
pub use multiplier::{Accumulator, FinalAdder, MultiplierSpec, PartialProduct};
