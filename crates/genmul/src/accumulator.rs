//! Partial product accumulators.
//!
//! An accumulator reduces the partial product matrix to two rows that are then
//! summed by the final-stage adder. The architectures match the AMG families
//! used in the paper:
//!
//! * [`reduce_array`] — a linear chain of carry-save adders (array multiplier).
//! * [`reduce_wallace`] — Wallace tree (group every three bits per column).
//! * [`reduce_dadda`] — Dadda tree (reduce to the Dadda height sequence).
//! * [`reduce_compressor42`] — a tree of (4,2) compressors.
//! * [`reduce_redundant_binary`] — a redundant-binary (carry-free) addition
//!   tree over (plus, minus) digit vectors with a final conversion that is
//!   only congruent to the true sum modulo `2^(2n)` (see `DESIGN.md` for the
//!   substitution notes).

use gbmv_netlist::{GateKind, NetId, Netlist};

use crate::cells::{compressor42, full_adder, half_adder};
use crate::partial::PartialProducts;

/// The result of accumulation: two rows of `2n` bits each (missing positions
/// filled with a shared constant-zero net) to be added by the final adder.
#[derive(Debug, Clone)]
pub struct ReducedRows {
    /// First addend row, `2n` bits, LSB first.
    pub row_a: Vec<NetId>,
    /// Second addend row, `2n` bits, LSB first.
    pub row_b: Vec<NetId>,
}

/// Shared constant nets used while filling incomplete rows.
struct Consts {
    zero: Option<NetId>,
    one: Option<NetId>,
}

impl Consts {
    fn new() -> Self {
        Consts {
            zero: None,
            one: None,
        }
    }
    fn zero(&mut self, nl: &mut Netlist) -> NetId {
        *self
            .zero
            .get_or_insert_with(|| nl.add_gate(GateKind::Const0, &[], "const_zero"))
    }
    fn one(&mut self, nl: &mut Netlist) -> NetId {
        *self
            .one
            .get_or_insert_with(|| nl.add_gate(GateKind::Const1, &[], "const_one"))
    }
}

/// Reduces per-column bit lists until every column holds at most two bits,
/// using full/half adders according to `wallace` (true: group aggressively
/// every stage; false: Dadda-style, reduce only down to the next target
/// height).
fn reduce_columns(
    nl: &mut Netlist,
    mut columns: Vec<Vec<NetId>>,
    dadda: bool,
    tag: &str,
) -> Vec<Vec<NetId>> {
    // Dadda height sequence: 2, 3, 4, 6, 9, 13, 19, 28, ...
    let mut dadda_heights = vec![2usize];
    while *dadda_heights.last().expect("non-empty") < 1024 {
        let last = *dadda_heights.last().expect("non-empty");
        dadda_heights.push(last * 3 / 2);
    }
    let mut stage = 0;
    loop {
        let max_height = columns.iter().map(|c| c.len()).max().unwrap_or(0);
        if max_height <= 2 {
            return columns;
        }
        let target = if dadda {
            // Largest Dadda height strictly below the current height.
            *dadda_heights
                .iter()
                .rev()
                .find(|&&h| h < max_height)
                .expect("sequence starts at 2")
        } else {
            // Wallace: reduce as much as possible this stage (ceil(h * 2/3)).
            2
        };
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len()];
        for (col, bits) in columns.iter().enumerate() {
            let mut idx = 0;
            let remaining_ok = |len: usize, next_len: usize, target: usize| {
                // For Dadda, stop compressing once the bits left in this
                // column (plus carries already scheduled into it) fit the
                // target height.
                len + next_len <= target
            };
            while bits.len() - idx >= 3 {
                if dadda && remaining_ok(bits.len() - idx, next[col].len(), target) {
                    break;
                }
                let fa = full_adder(
                    nl,
                    bits[idx],
                    bits[idx + 1],
                    bits[idx + 2],
                    &format!("{tag}_s{stage}_fa{col}_{idx}"),
                );
                next[col].push(fa.sum);
                if col + 1 < next.len() {
                    next[col + 1].push(fa.carry);
                }
                idx += 3;
            }
            if bits.len() - idx == 2 {
                let compress = if dadda {
                    !remaining_ok(2, next[col].len(), target)
                } else {
                    // Wallace also compresses pairs when the column is taller
                    // than the target.
                    bits.len() > 2
                };
                if compress {
                    let ha = half_adder(
                        nl,
                        bits[idx],
                        bits[idx + 1],
                        &format!("{tag}_s{stage}_ha{col}"),
                    );
                    next[col].push(ha.sum);
                    if col + 1 < next.len() {
                        next[col + 1].push(ha.carry);
                    }
                    idx += 2;
                }
            }
            // Pass through whatever is left.
            for &bit in &bits[idx..] {
                next[col].push(bit);
            }
        }
        columns = next;
        stage += 1;
        assert!(stage < 1000, "column reduction did not converge");
    }
}

fn columns_to_rows(nl: &mut Netlist, columns: Vec<Vec<NetId>>, consts: &mut Consts) -> ReducedRows {
    let mut row_a = Vec::with_capacity(columns.len());
    let mut row_b = Vec::with_capacity(columns.len());
    for col in columns {
        assert!(col.len() <= 2, "columns must be reduced to height <= 2");
        row_a.push(col.first().copied().unwrap_or_else(|| consts.zero(nl)));
        row_b.push(col.get(1).copied().unwrap_or_else(|| consts.zero(nl)));
    }
    ReducedRows { row_a, row_b }
}

/// Wallace-tree accumulation (`WT`).
pub fn reduce_wallace(nl: &mut Netlist, pps: &PartialProducts) -> ReducedRows {
    let mut consts = Consts::new();
    let columns = reduce_columns(nl, pps.to_columns(), false, "wt");
    columns_to_rows(nl, columns, &mut consts)
}

/// Dadda-tree accumulation (`DT`).
pub fn reduce_dadda(nl: &mut Netlist, pps: &PartialProducts) -> ReducedRows {
    let mut consts = Consts::new();
    let columns = reduce_columns(nl, pps.to_columns(), true, "dt");
    columns_to_rows(nl, columns, &mut consts)
}

/// Array accumulation (`AR`): partial product rows are folded one after the
/// other into a carry-save accumulator, giving a linear reduction chain just
/// like the classic array multiplier.
pub fn reduce_array(nl: &mut Netlist, pps: &PartialProducts) -> ReducedRows {
    let mut consts = Consts::new();
    let width = 2 * pps.width;
    // The accumulator holds, per column, at most two bits (sum row + carry row).
    let mut acc: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for (r, row) in pps.rows.iter().enumerate() {
        for &(col, bit) in row {
            if col < width {
                acc[col].push(bit);
            }
        }
        // Compress every column back to height <= 2 with a linear CSA stage.
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for col in 0..width {
            let bits = &acc[col];
            let mut idx = 0;
            while bits.len() - idx + next[col].len() > 2 {
                if bits.len() - idx >= 3 {
                    let fa = full_adder(
                        nl,
                        bits[idx],
                        bits[idx + 1],
                        bits[idx + 2],
                        &format!("ar_r{r}_fa{col}_{idx}"),
                    );
                    next[col].push(fa.sum);
                    if col + 1 < width {
                        next[col + 1].push(fa.carry);
                    }
                    idx += 3;
                } else if bits.len() - idx == 2 {
                    let ha = half_adder(nl, bits[idx], bits[idx + 1], &format!("ar_r{r}_ha{col}"));
                    next[col].push(ha.sum);
                    if col + 1 < width {
                        next[col + 1].push(ha.carry);
                    }
                    idx += 2;
                } else {
                    break;
                }
            }
            for &bit in &bits[idx..] {
                next[col].push(bit);
            }
        }
        acc = next;
    }
    // A final clean-up pass in case carries pushed a column above two bits.
    let columns = reduce_columns(nl, acc, false, "ar_fix");
    columns_to_rows(nl, columns, &mut consts)
}

/// (4,2)-compressor-tree accumulation (`CT`).
///
/// Rows are reduced four at a time by a column-wise chain of (4,2)
/// compressors; the tree repeats until at most two rows remain. Leftover rows
/// (fewer than four) fall back to carry-save adders.
pub fn reduce_compressor42(nl: &mut Netlist, pps: &PartialProducts) -> ReducedRows {
    let mut consts = Consts::new();
    let width = 2 * pps.width;
    // Represent the working set as rows of optional bits (None = zero).
    let mut rows: Vec<Vec<Option<NetId>>> = pps
        .rows
        .iter()
        .map(|row| {
            let mut bits = vec![None; width];
            for &(col, bit) in row {
                if col < width {
                    // A row may carry two bits in one column (Booth correction);
                    // push the extra bit into a separate row below.
                    if bits[col].is_none() {
                        bits[col] = Some(bit);
                    } else {
                        // handled after the loop by creating overflow rows
                    }
                }
            }
            bits
        })
        .collect();
    // Booth correction bits that collided with an existing bit get their own rows.
    for (r, row) in pps.rows.iter().enumerate() {
        let mut seen = vec![false; width];
        let mut overflow: Vec<Option<NetId>> = vec![None; width];
        let mut has_overflow = false;
        for &(col, bit) in row {
            if col < width {
                if seen[col] {
                    overflow[col] = Some(bit);
                    has_overflow = true;
                } else {
                    seen[col] = true;
                    // ensure rows[r] actually holds the first bit
                    let _ = &rows[r];
                }
            }
        }
        if has_overflow {
            rows.push(overflow);
        }
    }
    let mut level = 0;
    while rows.len() > 2 {
        let mut next: Vec<Vec<Option<NetId>>> = Vec::new();
        let mut chunk_index = 0;
        let mut iter = rows.chunks(4);
        for chunk in &mut iter {
            match chunk.len() {
                4 => {
                    let mut out_sum: Vec<Option<NetId>> = vec![None; width];
                    let mut out_carry: Vec<Option<NetId>> = vec![None; width];
                    let mut cin: Option<NetId> = None;
                    for col in 0..width {
                        let bits: Vec<NetId> = (0..4).filter_map(|r| chunk[r][col]).collect();
                        let cin_net = cin.take();
                        let present = bits.len() + usize::from(cin_net.is_some());
                        match present {
                            0 => {}
                            1 => {
                                out_sum[col] = bits.first().copied().or(cin_net);
                            }
                            2 => {
                                let x = bits[0];
                                let y = bits.get(1).copied().or(cin_net).expect("two bits");
                                let ha = half_adder(
                                    nl,
                                    x,
                                    y,
                                    &format!("ct{level}_{chunk_index}_ha{col}"),
                                );
                                out_sum[col] = Some(ha.sum);
                                if col + 1 < width {
                                    out_carry[col + 1] = Some(ha.carry);
                                }
                            }
                            3 => {
                                let mut all = bits.clone();
                                if let Some(c) = cin_net {
                                    all.push(c);
                                }
                                let fa = full_adder(
                                    nl,
                                    all[0],
                                    all[1],
                                    all[2],
                                    &format!("ct{level}_{chunk_index}_fa{col}"),
                                );
                                out_sum[col] = Some(fa.sum);
                                if col + 1 < width {
                                    out_carry[col + 1] = Some(fa.carry);
                                }
                            }
                            _ => {
                                // 4 or 5 inputs: use the (4,2) compressor with a
                                // constant zero for any missing operand.
                                let mut all = bits.clone();
                                while all.len() < 4 {
                                    all.push(consts.zero(nl));
                                }
                                let cin_net = cin_net.unwrap_or_else(|| consts.zero(nl));
                                let comp = compressor42(
                                    nl,
                                    all[0],
                                    all[1],
                                    all[2],
                                    all[3],
                                    cin_net,
                                    &format!("ct{level}_{chunk_index}_c{col}"),
                                );
                                out_sum[col] = Some(comp.sum);
                                if col + 1 < width {
                                    out_carry[col + 1] = Some(comp.carry);
                                }
                                cin = Some(comp.cout);
                                continue;
                            }
                        }
                        // For the non-compressor cases no new chain carry is produced.
                    }
                    next.push(out_sum);
                    next.push(out_carry);
                }
                3 => {
                    let mut out_sum: Vec<Option<NetId>> = vec![None; width];
                    let mut out_carry: Vec<Option<NetId>> = vec![None; width];
                    for col in 0..width {
                        let bits: Vec<NetId> = (0..3).filter_map(|r| chunk[r][col]).collect();
                        match bits.len() {
                            0 => {}
                            1 => out_sum[col] = Some(bits[0]),
                            2 => {
                                let ha = half_adder(
                                    nl,
                                    bits[0],
                                    bits[1],
                                    &format!("ct{level}_{chunk_index}_ha3_{col}"),
                                );
                                out_sum[col] = Some(ha.sum);
                                if col + 1 < width {
                                    out_carry[col + 1] = Some(ha.carry);
                                }
                            }
                            _ => {
                                let fa = full_adder(
                                    nl,
                                    bits[0],
                                    bits[1],
                                    bits[2],
                                    &format!("ct{level}_{chunk_index}_fa3_{col}"),
                                );
                                out_sum[col] = Some(fa.sum);
                                if col + 1 < width {
                                    out_carry[col + 1] = Some(fa.carry);
                                }
                            }
                        }
                    }
                    next.push(out_sum);
                    next.push(out_carry);
                }
                _ => {
                    for row in chunk {
                        next.push(row.clone());
                    }
                }
            }
            chunk_index += 1;
        }
        rows = next;
        level += 1;
        assert!(level < 100, "compressor tree did not converge");
    }
    // Convert the remaining one or two rows into column lists.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for row in &rows {
        for (col, bit) in row.iter().enumerate() {
            if let Some(b) = bit {
                columns[col].push(*b);
            }
        }
    }
    columns_to_rows(nl, columns, &mut consts)
}

/// Redundant-binary addition tree (`RT`).
///
/// Every redundant-binary (RB) number is a pair of bit vectors `(P, M)` with
/// value `P - M`. Partial product rows are paired into RB leaves
/// `(P = r1, M = ~r2)` and RB numbers are added pairwise in a balanced binary
/// tree; each tree node compresses `P1, P2, ~M1, ~M2` with carry-save logic
/// into `(S, C)` and outputs the RB number `(S, ~C)`. All `+1`/`-1`
/// corrections of the complement arithmetic are accumulated numerically and
/// injected as a single constant vector before the final conversion
/// `P - M = P + ~M + 1 (mod 2^(2n))`, which the final-stage adder performs.
///
/// The returned rows are the `P` vector and the bitwise complement of `M`
/// together with the correction constant already carry-saved in, so the
/// caller only needs one carry-propagate addition — mirroring how RB
/// multipliers use a single fast adder for the RB-to-binary conversion. The
/// result is congruent to the true sum modulo `2^(2n)`.
pub fn reduce_redundant_binary(nl: &mut Netlist, pps: &PartialProducts) -> ReducedRows {
    let mut consts = Consts::new();
    let width = 2 * pps.width;
    // Expand rows into dense vectors of column bits (with possible extra rows
    // for Booth correction bits that share a column).
    let mut dense_rows: Vec<Vec<Option<NetId>>> = Vec::new();
    for row in &pps.rows {
        let mut main = vec![None; width];
        let mut extra = vec![None; width];
        let mut has_extra = false;
        for &(col, bit) in row {
            if col >= width {
                continue;
            }
            if main[col].is_none() {
                main[col] = Some(bit);
            } else {
                extra[col] = Some(bit);
                has_extra = true;
            }
        }
        dense_rows.push(main);
        if has_extra {
            dense_rows.push(extra);
        }
    }
    // Correction (value to subtract at the end), accumulated modulo 2^width.
    let mut correction: u128 = 0;
    let modulus_mask: u128 = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };

    /// A redundant binary number: value = P - M (mod 2^width).
    struct Rb {
        p: Vec<NetId>,
        m: Vec<NetId>,
    }

    let to_filled = |nl: &mut Netlist, consts: &mut Consts, row: &[Option<NetId>]| -> Vec<NetId> {
        row.iter()
            .map(|b| b.unwrap_or_else(|| consts.zero(nl)))
            .collect()
    };

    // Build leaves: pair rows (r1, r2) -> (P = r1, M = ~r2) with value
    // r1 + r2 + 1 - 2^width  ==  r1 + r2 + 1 (mod), so correction += 1.
    // A leftover unpaired row becomes (P = r, M = 0) with no correction.
    let mut nodes: Vec<Rb> = Vec::new();
    let mut i = 0;
    let mut leaf = 0;
    while i < dense_rows.len() {
        if i + 1 < dense_rows.len() {
            let p = to_filled(nl, &mut consts, &dense_rows[i]);
            let m: Vec<NetId> = dense_rows[i + 1]
                .iter()
                .enumerate()
                .map(|(col, b)| match b {
                    Some(bit) => nl.not1(*bit, format!("rt_leaf{leaf}_n{col}")),
                    None => consts.one(nl),
                })
                .collect();
            nodes.push(Rb { p, m });
            correction = (correction + 1) & modulus_mask;
            i += 2;
        } else {
            let p = to_filled(nl, &mut consts, &dense_rows[i]);
            let m: Vec<NetId> = (0..width).map(|_| consts.zero(nl)).collect();
            nodes.push(Rb { p, m });
            i += 1;
        }
        leaf += 1;
    }

    // Combine nodes pairwise: value(P1-M1) + (P2-M2) = S + C + 1 where
    // (S, C) = carry-save compression of (P1, P2, ~M1, ~M2) minus 2 (from the
    // two complements). Output (S, ~C) has value S + C + 1; so the node is
    // exact except for bookkeeping handled through `correction`:
    //   out = (P1-M1)+(P2-M2) + 1   =>  correction += 1 per node.
    let mut level = 0;
    while nodes.len() > 1 {
        let mut next: Vec<Rb> = Vec::new();
        let mut iter = nodes.into_iter();
        let mut pair_index = 0;
        while let Some(first) = iter.next() {
            let second = match iter.next() {
                Some(x) => x,
                None => {
                    next.push(first);
                    break;
                }
            };
            let tag = format!("rt_n{level}_{pair_index}");
            // Complement the M vectors.
            let nm1: Vec<NetId> = first
                .m
                .iter()
                .enumerate()
                .map(|(c, &b)| nl.not1(b, format!("{tag}_nm1_{c}")))
                .collect();
            let nm2: Vec<NetId> = second
                .m
                .iter()
                .enumerate()
                .map(|(c, &b)| nl.not1(b, format!("{tag}_nm2_{c}")))
                .collect();
            // Carry-save compress the four vectors into (S, C).
            // First layer: FA(p1, p2, nm1) -> (s1, c1<<1)
            // Second layer: FA(s1, nm2, c1) column-wise -> (S, C<<1)
            let mut s1 = Vec::with_capacity(width);
            let mut c1: Vec<Option<NetId>> = vec![None; width + 1];
            for col in 0..width {
                let fa = full_adder(
                    nl,
                    first.p[col],
                    second.p[col],
                    nm1[col],
                    &format!("{tag}_l1_{col}"),
                );
                s1.push(fa.sum);
                c1[col + 1] = Some(fa.carry);
            }
            let mut s2 = Vec::with_capacity(width);
            let mut c2: Vec<Option<NetId>> = vec![None; width + 1];
            for col in 0..width {
                let carry_in = c1[col];
                match carry_in {
                    Some(c) => {
                        let fa = full_adder(nl, s1[col], nm2[col], c, &format!("{tag}_l2_{col}"));
                        s2.push(fa.sum);
                        c2[col + 1] = Some(fa.carry);
                    }
                    None => {
                        let ha = half_adder(nl, s1[col], nm2[col], &format!("{tag}_l2h_{col}"));
                        s2.push(ha.sum);
                        c2[col + 1] = Some(ha.carry);
                    }
                }
            }
            // The complements contributed (2^width - 1 - M1) + (2^width - 1 - M2),
            // i.e. an excess of 2*(2^width - 1) + ... ; together with reading the
            // output as (S, ~C) the net effect per node is a "+1" (see module
            // docs); account for it numerically.
            // S + C == P1 + P2 + ~M1 + ~M2 == (P1 - M1) + (P2 - M2) - 2 (mod 2^w)
            // out = S - ~C == S + C + 1 == (P1-M1)+(P2-M2) - 1 (mod 2^w)
            // so the output is one LESS than the sum of inputs: correction -= 1.
            let c_vec: Vec<NetId> = (0..width)
                .map(|col| c2[col].unwrap_or_else(|| consts.zero(nl)))
                .collect();
            let nm_out: Vec<NetId> = c_vec
                .iter()
                .enumerate()
                .map(|(c, &b)| nl.not1(b, format!("{tag}_outm_{c}")))
                .collect();
            next.push(Rb { p: s2, m: nm_out });
            correction = correction.wrapping_sub(1) & modulus_mask;
            pair_index += 1;
        }
        nodes = next;
        level += 1;
        assert!(level < 64, "redundant binary tree did not converge");
    }

    let final_rb = nodes.pop().expect("at least one partial product row");
    // Final value: P - M == P + ~M + 1 (mod 2^width). Together with the
    // accumulated `correction` (tree value == true value + correction), the
    // true sum is P + ~M + 1 - correction (mod 2^width).
    let nm_final: Vec<NetId> = final_rb
        .m
        .iter()
        .enumerate()
        .map(|(c, &b)| nl.not1(b, format!("rt_final_nm_{c}")))
        .collect();
    let const_value = (1u128.wrapping_sub(correction)) & modulus_mask;
    let const_bits: Vec<NetId> = (0..width)
        .map(|i| {
            if (const_value >> i) & 1 == 1 {
                consts.one(nl)
            } else {
                consts.zero(nl)
            }
        })
        .collect();
    // Carry-save the three vectors (P, ~M, const) into two rows for the final adder.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for col in 0..width {
        columns[col].push(final_rb.p[col]);
        columns[col].push(nm_final[col]);
        columns[col].push(const_bits[col]);
    }
    let columns = reduce_columns(nl, columns, false, "rt_conv");
    columns_to_rows(nl, columns, &mut consts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::{add_words, AdderKind};
    use crate::partial::{booth_partial_products, simple_partial_products};

    /// Builds a full multiplier with the given accumulator and checks it
    /// exhaustively at 3 and 4 bits against `a*b mod 2^(2n)`.
    fn check_accumulator(
        reduce: fn(&mut Netlist, &PartialProducts) -> ReducedRows,
        booth: bool,
        widths: &[usize],
    ) {
        for &n in widths {
            let mut nl = Netlist::new("acc_test");
            let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
            let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
            let pps = if booth {
                booth_partial_products(&mut nl, &a, &b)
            } else {
                simple_partial_products(&mut nl, &a, &b)
            };
            let rows = reduce(&mut nl, &pps);
            let (sums, _cout) = add_words(
                &mut nl,
                AdderKind::RippleCarry,
                &rows.row_a,
                &rows.row_b,
                None,
                "final",
            );
            for (i, &s) in sums.iter().enumerate() {
                nl.add_output(format!("s{i}"), s);
            }
            nl.validate().unwrap();
            let modulus = 1u128 << (2 * n);
            for av in 0..(1u64 << n) {
                for bv in 0..(1u64 << n) {
                    let got = nl.evaluate_words(&[av as u128, bv as u128], &[n, n]);
                    assert_eq!(
                        got,
                        (av as u128 * bv as u128) % modulus,
                        "{}x{} {} accumulator: {av}*{bv}",
                        n,
                        n,
                        if booth { "booth" } else { "simple" }
                    );
                }
            }
        }
    }

    #[test]
    fn wallace_simple_exhaustive() {
        check_accumulator(reduce_wallace, false, &[3, 4]);
    }

    #[test]
    fn wallace_booth_exhaustive() {
        check_accumulator(reduce_wallace, true, &[3, 4]);
    }

    #[test]
    fn dadda_simple_exhaustive() {
        check_accumulator(reduce_dadda, false, &[3, 4]);
    }

    #[test]
    fn dadda_booth_exhaustive() {
        check_accumulator(reduce_dadda, true, &[4]);
    }

    #[test]
    fn array_simple_exhaustive() {
        check_accumulator(reduce_array, false, &[3, 4]);
    }

    #[test]
    fn array_booth_exhaustive() {
        check_accumulator(reduce_array, true, &[4]);
    }

    #[test]
    fn compressor42_simple_exhaustive() {
        check_accumulator(reduce_compressor42, false, &[3, 4]);
    }

    #[test]
    fn compressor42_booth_exhaustive() {
        check_accumulator(reduce_compressor42, true, &[4]);
    }

    #[test]
    fn redundant_binary_simple_exhaustive() {
        check_accumulator(reduce_redundant_binary, false, &[3, 4]);
    }

    #[test]
    fn redundant_binary_booth_exhaustive() {
        check_accumulator(reduce_redundant_binary, true, &[4]);
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        use gbmv_netlist::analysis::depth;
        let n = 16;
        let build = |reduce: fn(&mut Netlist, &PartialProducts) -> ReducedRows| {
            let mut nl = Netlist::new("depth_test");
            let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
            let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
            let pps = simple_partial_products(&mut nl, &a, &b);
            let rows = reduce(&mut nl, &pps);
            let (sums, _) = add_words(
                &mut nl,
                AdderKind::KoggeStone,
                &rows.row_a,
                &rows.row_b,
                None,
                "final",
            );
            for (i, &s) in sums.iter().enumerate() {
                nl.add_output(format!("s{i}"), s);
            }
            nl
        };
        let wallace = build(reduce_wallace);
        let array = build(reduce_array);
        assert!(depth(&wallace) < depth(&array));
    }
}
