//! Basic arithmetic cells: half adders, full adders and (4,2) compressors.
//!
//! All cells are built from 2-input gates in the XOR/AND/OR decomposition the
//! paper assumes: the sum path uses XOR gates and the carry path uses AND/OR
//! gates, so the `XOR`-`AND` structural pairing needed by the vanishing rule is
//! present in every generated circuit.

use gbmv_netlist::{NetId, Netlist};

/// Output of a half adder: `a + b = 2*carry + sum`.
#[derive(Debug, Clone, Copy)]
pub struct HalfAdderOut {
    /// The sum bit (weight 1).
    pub sum: NetId,
    /// The carry bit (weight 2).
    pub carry: NetId,
}

/// Output of a full adder: `a + b + c = 2*carry + sum`.
#[derive(Debug, Clone, Copy)]
pub struct FullAdderOut {
    /// The sum bit (weight 1).
    pub sum: NetId,
    /// The carry bit (weight 2).
    pub carry: NetId,
}

/// Output of a (4,2) compressor: `x1+x2+x3+x4+cin = sum + 2*(carry+cout)`.
#[derive(Debug, Clone, Copy)]
pub struct Compressor42Out {
    /// The sum bit (weight 1).
    pub sum: NetId,
    /// The carry bit (weight 2), depends on `cin`.
    pub carry: NetId,
    /// The intermediate carry (weight 2), independent of `cin`; feeds the
    /// `cin` of the next column's compressor.
    pub cout: NetId,
}

/// Instantiates a half adder.
pub fn half_adder(nl: &mut Netlist, a: NetId, b: NetId, tag: &str) -> HalfAdderOut {
    let sum = nl.xor2(a, b, format!("{tag}_s"));
    let carry = nl.and2(a, b, format!("{tag}_c"));
    HalfAdderOut { sum, carry }
}

/// Instantiates a full adder in the standard two-half-adder decomposition:
/// `x = a ^ b`, `sum = x ^ c`, `carry = (a & b) | (x & c)`.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, c: NetId, tag: &str) -> FullAdderOut {
    let x = nl.xor2(a, b, format!("{tag}_x"));
    let sum = nl.xor2(x, c, format!("{tag}_s"));
    let d = nl.and2(a, b, format!("{tag}_d"));
    let t = nl.and2(x, c, format!("{tag}_t"));
    let carry = nl.or2(d, t, format!("{tag}_c"));
    FullAdderOut { sum, carry }
}

/// Instantiates a (4,2) compressor as two cascaded full adders.
///
/// The first full adder compresses `x1,x2,x3`; its carry is `cout` (the
/// carry that ripples to the next column's compressor input). The second full
/// adder compresses the intermediate sum with `x4` and `cin`.
pub fn compressor42(
    nl: &mut Netlist,
    x1: NetId,
    x2: NetId,
    x3: NetId,
    x4: NetId,
    cin: NetId,
    tag: &str,
) -> Compressor42Out {
    let fa1 = full_adder(nl, x1, x2, x3, &format!("{tag}_fa1"));
    let fa2 = full_adder(nl, fa1.sum, x4, cin, &format!("{tag}_fa2"));
    Compressor42Out {
        sum: fa2.sum,
        carry: fa2.carry,
        cout: fa1.carry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ha = half_adder(&mut nl, a, b, "ha0");
        nl.add_output("s", ha.sum);
        nl.add_output("c", ha.carry);
        for pattern in 0..4u32 {
            let av = pattern & 1 == 1;
            let bv = pattern & 2 != 0;
            let out = nl.evaluate(&[av, bv]);
            let total = av as u32 + bv as u32;
            assert_eq!(out[0], total & 1 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let fa = full_adder(&mut nl, a, b, c, "fa0");
        nl.add_output("s", fa.sum);
        nl.add_output("c", fa.carry);
        for pattern in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            let total: u32 = bits.iter().map(|&b| b as u32).sum();
            let out = nl.evaluate(&bits);
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:?}");
            assert_eq!(out[1], total >= 2, "carry for {bits:?}");
        }
    }

    #[test]
    fn compressor42_counts_ones() {
        let mut nl = Netlist::new("c42");
        let inputs: Vec<NetId> = (0..5).map(|i| nl.add_input(format!("x{i}"))).collect();
        let c = compressor42(
            &mut nl, inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], "c0",
        );
        nl.add_output("s", c.sum);
        nl.add_output("c", c.carry);
        nl.add_output("co", c.cout);
        for pattern in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
            let total: u32 = bits.iter().map(|&b| b as u32).sum();
            let out = nl.evaluate(&bits);
            let value = out[0] as u32 + 2 * (out[1] as u32 + out[2] as u32);
            assert_eq!(
                value, total,
                "compressor must preserve the count for {bits:?}"
            );
        }
    }

    #[test]
    fn compressor42_cout_independent_of_cin() {
        let mut nl = Netlist::new("c42");
        let inputs: Vec<NetId> = (0..5).map(|i| nl.add_input(format!("x{i}"))).collect();
        let c = compressor42(
            &mut nl, inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], "c0",
        );
        nl.add_output("co", c.cout);
        for pattern in 0..16u32 {
            let mut bits: Vec<bool> = (0..4).map(|i| (pattern >> i) & 1 == 1).collect();
            bits.push(false);
            let without = nl.evaluate(&bits)[0];
            bits[4] = true;
            let with = nl.evaluate(&bits)[0];
            assert_eq!(without, with, "cout must not depend on cin");
        }
    }
}
