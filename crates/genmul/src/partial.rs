//! Partial product generators: simple AND matrix and radix-4 Booth recoding.
//!
//! Both generators produce a [`PartialProducts`] structure: a list of rows,
//! each row being a list of `(column, bit)` pairs where `column` is the power
//! of two the bit is weighted with. Columns at weight `>= 2n` are discarded,
//! which is sound because the multiplier specification is taken modulo
//! `2^(2n)` (this is exactly why the paper adds the modulo to the
//! specification for Booth multipliers).

use gbmv_netlist::{NetId, Netlist};

/// The partial product matrix of a multiplier, organised by rows.
#[derive(Debug, Clone)]
pub struct PartialProducts {
    /// Operand width `n`.
    pub width: usize,
    /// Rows of `(column, bit)` pairs; column values are `< 2 * width`.
    pub rows: Vec<Vec<(usize, NetId)>>,
}

impl PartialProducts {
    /// Converts the row representation into per-column bit lists (length
    /// `2 * width`).
    pub fn to_columns(&self) -> Vec<Vec<NetId>> {
        let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * self.width];
        for row in &self.rows {
            for &(col, bit) in row {
                if col < columns.len() {
                    columns[col].push(bit);
                }
            }
        }
        columns
    }

    /// Total number of partial product bits.
    pub fn bit_count(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }
}

/// Generates the simple (AND matrix) partial products: row `i` contains
/// `a_j & b_i` at column `i + j`.
pub fn simple_partial_products(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> PartialProducts {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let n = a.len();
    let mut rows = Vec::with_capacity(n);
    for (i, &bi) in b.iter().enumerate() {
        let mut row = Vec::with_capacity(n);
        for (j, &aj) in a.iter().enumerate() {
            if i + j < 2 * n {
                let bit = nl.and2(aj, bi, format!("pp_{i}_{j}"));
                row.push((i + j, bit));
            }
        }
        rows.push(row);
    }
    PartialProducts { width: n, rows }
}

/// Generates radix-4 Booth-recoded partial products for the *unsigned*
/// product `a * b mod 2^(2n)`.
///
/// The multiplier `b` is recoded into `m = ceil((n+1)/2)` digits
/// `d_i ∈ {-2,-1,0,1,2}` from overlapping bit triplets
/// `(b_{2i+1}, b_{2i}, b_{2i-1})` (out-of-range bits are zero). Row `i`
/// contributes `d_i * a * 4^i`. Negative digits are realised as the bitwise
/// complement of `|d_i| * a` plus a `+1` correction bit at column `2i` and
/// sign-extension bits up to column `2n-1`; the result is therefore congruent
/// to the true product modulo `2^(2n)`, which is why the specification
/// polynomial must be taken modulo `2^(2n)` for Booth multipliers.
pub fn booth_partial_products(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> PartialProducts {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let n = a.len();
    let out_width = 2 * n;
    let groups = (n + 2) / 2; // ceil((n+1)/2)
    let mut rows: Vec<Vec<(usize, NetId)>> = Vec::new();

    // Booth encoder per group: one, two, neg.
    for i in 0..groups {
        // Triplet (b_{2i+1}, b_{2i}, b_{2i-1}); None means constant zero.
        let b_hi = b.get(2 * i + 1).copied();
        let b_mid = b.get(2 * i).copied();
        let b_lo = if i == 0 {
            None
        } else {
            b.get(2 * i - 1).copied()
        };

        // one = b_mid ^ b_lo
        let one = match (b_mid, b_lo) {
            (Some(m), Some(l)) => Some(nl.xor2(m, l, format!("bo_one{i}"))),
            (Some(m), None) => Some(m),
            (None, Some(l)) => Some(l),
            (None, None) => None,
        };
        // two = (b_hi ^ b_mid) & ~(b_mid ^ b_lo)
        // With out-of-range bits treated as zero this simplifies per case.
        let hi_xor_mid = match (b_hi, b_mid) {
            (Some(h), Some(m)) => Some(nl.xor2(h, m, format!("bo_hxm{i}"))),
            (Some(h), None) => Some(h),
            (None, Some(m)) => Some(m),
            (None, None) => None,
        };
        let two = match (hi_xor_mid, one) {
            (Some(hx), Some(o)) => {
                let no = nl.not1(o, format!("bo_none{i}"));
                Some(nl.and2(hx, no, format!("bo_two{i}")))
            }
            (Some(hx), None) => Some(hx),
            _ => None,
        };
        // neg = b_hi & ~(b_mid & b_lo)
        let neg = match b_hi {
            None => None,
            Some(h) => match (b_mid, b_lo) {
                (Some(m), Some(l)) => {
                    let ml = nl.and2(m, l, format!("bo_ml{i}"));
                    let nml = nl.not1(ml, format!("bo_nml{i}"));
                    Some(nl.and2(h, nml, format!("bo_neg{i}")))
                }
                _ => Some(h),
            },
        };

        // Row bits: pp_{i,j} = neg ^ ((a_j & one) | (a_{j-1} & two)) for
        // j = 0..=n, placed at column 2i + j. Sign extension replicates `neg`
        // from column 2i + n + 1 up to 2n - 1.
        let mut row: Vec<(usize, NetId)> = Vec::new();
        for j in 0..=n {
            let col = 2 * i + j;
            if col >= out_width {
                break;
            }
            let a_j = a.get(j).copied();
            let a_jm1 = if j == 0 { None } else { a.get(j - 1).copied() };
            let t_one = match (a_j, one) {
                (Some(x), Some(o)) => Some(nl.and2(x, o, format!("bs_one{i}_{j}"))),
                _ => None,
            };
            let t_two = match (a_jm1, two) {
                (Some(x), Some(t)) => Some(nl.and2(x, t, format!("bs_two{i}_{j}"))),
                _ => None,
            };
            let sel = match (t_one, t_two) {
                (Some(x), Some(y)) => Some(nl.or2(x, y, format!("bs_sel{i}_{j}"))),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
            };
            let bit = match (neg, sel) {
                (Some(ng), Some(s)) => Some(nl.xor2(ng, s, format!("bs_pp{i}_{j}"))),
                (Some(ng), None) => Some(ng),
                (None, Some(s)) => Some(s),
                (None, None) => None,
            };
            if let Some(bit) = bit {
                row.push((col, bit));
            }
        }
        // Sign extension: replicate `neg` in the remaining columns.
        if let Some(ng) = neg {
            for col in (2 * i + n + 1)..out_width {
                row.push((col, ng));
            }
            // Two's complement correction (+1 at the row's LSB column).
            row.push((2 * i, ng));
        }
        rows.push(row);
    }
    PartialProducts { width: n, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmv_netlist::Netlist;

    /// Sums the partial product matrix arithmetically by simulating every bit
    /// and adding the weighted values; compares against `a * b mod 2^(2n)`.
    fn check_partial_products(booth: bool, n: usize, a_val: u64, b_val: u64) {
        let mut nl = Netlist::new("pp_test");
        let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
        let pps = if booth {
            booth_partial_products(&mut nl, &a, &b)
        } else {
            simple_partial_products(&mut nl, &a, &b)
        };
        // Expose every partial product bit as an output.
        let mut weights = Vec::new();
        for (r, row) in pps.rows.iter().enumerate() {
            for (k, &(col, bit)) in row.iter().enumerate() {
                nl.add_output(format!("pp_{r}_{k}"), bit);
                weights.push(col);
            }
        }
        let mut inputs = Vec::new();
        for i in 0..n {
            inputs.push((a_val >> i) & 1 == 1);
        }
        for i in 0..n {
            inputs.push((b_val >> i) & 1 == 1);
        }
        let outs = nl.evaluate(&inputs);
        let mut total: u128 = 0;
        for (&w, &bit) in weights.iter().zip(&outs) {
            if bit {
                total += 1u128 << w;
            }
        }
        let modulus = 1u128 << (2 * n);
        assert_eq!(
            total % modulus,
            (a_val as u128 * b_val as u128) % modulus,
            "{}-bit {} PP sum for {a_val}*{b_val}",
            n,
            if booth { "Booth" } else { "simple" }
        );
    }

    #[test]
    fn simple_partial_products_exhaustive_4bit() {
        for a in 0..16 {
            for b in 0..16 {
                check_partial_products(false, 4, a, b);
            }
        }
    }

    #[test]
    fn booth_partial_products_exhaustive_4bit() {
        for a in 0..16 {
            for b in 0..16 {
                check_partial_products(true, 4, a, b);
            }
        }
    }

    #[test]
    fn booth_partial_products_exhaustive_3bit() {
        for a in 0..8 {
            for b in 0..8 {
                check_partial_products(true, 3, a, b);
            }
        }
    }

    #[test]
    fn booth_partial_products_random_8bit() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xb007);
        for _ in 0..200 {
            let a = rng.gen_range(0..256);
            let b = rng.gen_range(0..256);
            check_partial_products(true, 8, a, b);
        }
    }

    #[test]
    fn booth_has_fewer_rows_than_simple() {
        let n = 8;
        let mut nl = Netlist::new("rows");
        let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
        let simple = simple_partial_products(&mut nl, &a, &b);
        let mut nl2 = Netlist::new("rows2");
        let a2: Vec<NetId> = (0..n).map(|i| nl2.add_input(format!("a{i}"))).collect();
        let b2: Vec<NetId> = (0..n).map(|i| nl2.add_input(format!("b{i}"))).collect();
        let booth = booth_partial_products(&mut nl2, &a2, &b2);
        assert_eq!(simple.rows.len(), n);
        assert_eq!(booth.rows.len(), n / 2 + 1);
        assert!(booth.bit_count() > 0);
    }

    #[test]
    fn columns_view_is_consistent() {
        let n = 4;
        let mut nl = Netlist::new("cols");
        let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
        let pps = simple_partial_products(&mut nl, &a, &b);
        let cols = pps.to_columns();
        assert_eq!(cols.len(), 2 * n);
        assert_eq!(cols.iter().map(|c| c.len()).sum::<usize>(), pps.bit_count());
        // Column k of a simple PP matrix has min(k+1, n, 2n-1-k) bits.
        for (k, col) in cols.iter().enumerate() {
            let expected = (k + 1).min(n).min(2 * n - 1 - k);
            assert_eq!(col.len(), expected, "column {k}");
        }
    }
}
