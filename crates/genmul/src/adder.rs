//! Final-stage (carry-propagate) adders.
//!
//! The paper distinguishes multipliers by their *last stage adder*: ripple
//! carry (RC), carry-lookahead (CL) and the parallel-prefix families
//! Brent-Kung (BK), Kogge-Stone (KS) and Han-Carlson (HC). The parallel-prefix
//! adders are precisely the structures whose algebraic models accumulate
//! vanishing monomials (Example 3 of the paper), so faithful gate-level
//! generators for them are essential for the reproduction.

use gbmv_netlist::{NetId, Netlist};

use crate::cells::full_adder;

/// The supported carry-propagate adder architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdderKind {
    /// Ripple-carry adder (`RC`).
    RippleCarry,
    /// Block carry-lookahead adder with 4-bit blocks (`CL`).
    CarryLookAhead,
    /// Brent-Kung parallel-prefix adder (`BK`).
    BrentKung,
    /// Kogge-Stone parallel-prefix adder (`KS`).
    KoggeStone,
    /// Han-Carlson parallel-prefix adder (`HC`).
    HanCarlson,
}

impl AdderKind {
    /// The two-letter abbreviation used in the paper's benchmark names.
    pub fn abbrev(self) -> &'static str {
        match self {
            AdderKind::RippleCarry => "RC",
            AdderKind::CarryLookAhead => "CL",
            AdderKind::BrentKung => "BK",
            AdderKind::KoggeStone => "KS",
            AdderKind::HanCarlson => "HC",
        }
    }

    /// All supported adder kinds.
    pub fn all() -> [AdderKind; 5] {
        [
            AdderKind::RippleCarry,
            AdderKind::CarryLookAhead,
            AdderKind::BrentKung,
            AdderKind::KoggeStone,
            AdderKind::HanCarlson,
        ]
    }
}

impl std::fmt::Display for AdderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Adds two equal-width bit vectors inside an existing netlist.
///
/// Returns the `width` sum bits and the carry out.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths or are empty.
pub fn add_words(
    nl: &mut Netlist,
    kind: AdderKind,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
    tag: &str,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must not be empty");
    match kind {
        AdderKind::RippleCarry => ripple_carry(nl, a, b, cin, tag),
        AdderKind::CarryLookAhead => carry_lookahead(nl, a, b, cin, tag),
        AdderKind::BrentKung | AdderKind::KoggeStone | AdderKind::HanCarlson => {
            prefix_adder(nl, kind, a, b, cin, tag)
        }
    }
}

fn ripple_carry(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
    tag: &str,
) -> (Vec<NetId>, NetId) {
    let mut sums = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        match carry {
            None => {
                let s = nl.xor2(ai, bi, format!("{tag}_s{i}"));
                let c = nl.and2(ai, bi, format!("{tag}_c{i}"));
                sums.push(s);
                carry = Some(c);
            }
            Some(c_in) => {
                let fa = full_adder(nl, ai, bi, c_in, &format!("{tag}_fa{i}"));
                sums.push(fa.sum);
                carry = Some(fa.carry);
            }
        }
    }
    (sums, carry.expect("at least one bit position"))
}

/// Block carry-lookahead adder with 4-bit blocks.
///
/// Inside each block the carries are computed with two-level AND-OR lookahead
/// logic from the generate/propagate pairs; blocks are chained through their
/// block carry (ripple of the block carries). The propagate signals are XOR
/// gates so that the sum bits can reuse them, which matches the structure the
/// paper's Example 3 analyses (`X_i`/`D_i` pairs).
fn carry_lookahead(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
    tag: &str,
) -> (Vec<NetId>, NetId) {
    let width = a.len();
    let mut p = Vec::with_capacity(width);
    let mut g = Vec::with_capacity(width);
    for i in 0..width {
        p.push(nl.xor2(a[i], b[i], format!("{tag}_p{i}")));
        g.push(nl.and2(a[i], b[i], format!("{tag}_g{i}")));
    }
    let mut sums = Vec::with_capacity(width);
    // carry[i] = carry into bit i; carry into bit 0 is `cin` (may be absent).
    let mut block_cin = cin;
    let mut i = 0;
    while i < width {
        let block = (i..width.min(i + 4)).collect::<Vec<_>>();
        // Sum bits of the block: s_j = p_j ^ c_j.
        // Carries inside the block: c_{j+1} = g_j | p_j g_{j-1} | ... | p_j..p_i c_in.
        let mut carry_into = block_cin;
        for &j in &block {
            // Emit the sum bit for position j using the carry into j.
            let s = match carry_into {
                None => {
                    // No carry in: the sum is just p_j. Reuse the net directly
                    // to avoid a buffer gate.
                    p[j]
                }
                Some(c) => nl.xor2(p[j], c, format!("{tag}_s{j}")),
            };
            sums.push(s);
            // Compute the carry out of position j with flattened lookahead:
            // c_{j+1} = g_j | p_j*g_{j-1} | ... | p_j*...*p_i * c_in(block)
            // Build the product chains incrementally.
            let mut terms: Vec<NetId> = vec![g[j]];
            let mut prod = p[j];
            for k in (block[0]..j).rev() {
                terms.push(nl.and2(prod, g[k], format!("{tag}_la{j}_{k}")));
                if k > block[0] {
                    prod = nl.and2(prod, p[k], format!("{tag}_pp{j}_{k}"));
                }
            }
            if let Some(c0) = block_cin {
                let full_prod = if j == block[0] {
                    p[j]
                } else {
                    nl.and2(prod, p[block[0]], format!("{tag}_ppin{j}"))
                };
                terms.push(nl.and2(full_prod, c0, format!("{tag}_lcin{j}")));
            }
            // OR-reduce the lookahead terms.
            let mut acc = terms[0];
            for (t_idx, &t) in terms.iter().enumerate().skip(1) {
                acc = nl.or2(acc, t, format!("{tag}_or{j}_{t_idx}"));
            }
            carry_into = Some(acc);
        }
        block_cin = carry_into;
        i += 4;
    }
    (sums, block_cin.expect("at least one bit position"))
}

/// One node of a parallel prefix network: a `(generate, propagate)` pair.
#[derive(Debug, Clone, Copy)]
struct Gp {
    g: NetId,
    p: NetId,
}

/// Combines two (g, p) pairs: `(g_hi, p_hi) o (g_lo, p_lo)`.
fn prefix_combine(nl: &mut Netlist, hi: Gp, lo: Gp, tag: &str) -> Gp {
    let t = nl.and2(hi.p, lo.g, format!("{tag}_t"));
    let g = nl.or2(hi.g, t, format!("{tag}_g"));
    let p = nl.and2(hi.p, lo.p, format!("{tag}_p"));
    Gp { g, p }
}

/// Shared skeleton of the parallel-prefix adders. The `kind` selects the
/// prefix network schedule (Kogge-Stone, Brent-Kung or Han-Carlson); the
/// pre-processing (bitwise g/p), post-processing (sum = p ^ carry) and carry
/// insertion are identical.
fn prefix_adder(
    nl: &mut Netlist,
    kind: AdderKind,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
    tag: &str,
) -> (Vec<NetId>, NetId) {
    let width = a.len();
    let mut p = Vec::with_capacity(width);
    let mut g = Vec::with_capacity(width);
    for i in 0..width {
        p.push(nl.xor2(a[i], b[i], format!("{tag}_p{i}")));
        g.push(nl.and2(a[i], b[i], format!("{tag}_d{i}")));
    }
    // cur[i] holds the (G, P) of a bit range ending at i; after the network it
    // covers [i..0].
    let mut cur: Vec<Gp> = (0..width).map(|i| Gp { g: g[i], p: p[i] }).collect();
    match kind {
        AdderKind::KoggeStone => {
            let mut d = 1;
            let mut level = 0;
            while d < width {
                let snapshot = cur.clone();
                for i in d..width {
                    cur[i] = prefix_combine(
                        nl,
                        snapshot[i],
                        snapshot[i - d],
                        &format!("{tag}_ks{level}_{i}"),
                    );
                }
                d *= 2;
                level += 1;
            }
        }
        AdderKind::BrentKung => {
            // Up-sweep.
            let mut d = 1;
            let mut level = 0;
            while d < width {
                let mut i = 2 * d - 1;
                while i < width {
                    cur[i] =
                        prefix_combine(nl, cur[i], cur[i - d], &format!("{tag}_bku{level}_{i}"));
                    i += 2 * d;
                }
                d *= 2;
                level += 1;
            }
            // Down-sweep.
            d /= 2;
            while d >= 1 {
                let mut i = 3 * d - 1;
                while i < width {
                    cur[i] =
                        prefix_combine(nl, cur[i], cur[i - d], &format!("{tag}_bkd{level}_{i}"));
                    i += 2 * d;
                }
                if d == 1 {
                    break;
                }
                d /= 2;
                level += 1;
            }
        }
        AdderKind::HanCarlson => {
            // Stage 1: combine odd positions with their even neighbour.
            let snapshot = cur.clone();
            for i in (1..width).step_by(2) {
                cur[i] =
                    prefix_combine(nl, snapshot[i], snapshot[i - 1], &format!("{tag}_hc0_{i}"));
            }
            // Kogge-Stone over odd positions only.
            let mut d = 2;
            let mut level = 1;
            while d < width {
                let snapshot = cur.clone();
                for i in (1..width).step_by(2) {
                    if i >= d {
                        cur[i] = prefix_combine(
                            nl,
                            snapshot[i],
                            snapshot[i - d],
                            &format!("{tag}_hc{level}_{i}"),
                        );
                    }
                }
                d *= 2;
                level += 1;
            }
            // Final stage: even positions (>= 2) pick up the odd prefix below.
            let snapshot = cur.clone();
            for i in (2..width).step_by(2) {
                cur[i] =
                    prefix_combine(nl, snapshot[i], snapshot[i - 1], &format!("{tag}_hcf_{i}"));
            }
            let _ = level;
        }
        _ => unreachable!("prefix_adder only handles prefix architectures"),
    }
    // Carries: carry into bit 0 is cin; carry into bit i (i>=1) is
    // G[i-1..0] (combined with cin through P[i-1..0] when cin is present).
    let mut carries: Vec<Option<NetId>> = Vec::with_capacity(width + 1);
    carries.push(cin);
    for (i, node) in cur.iter().enumerate().take(width) {
        let c = match cin {
            None => node.g,
            Some(c0) => {
                let t = nl.and2(node.p, c0, format!("{tag}_cin_and{i}"));
                nl.or2(node.g, t, format!("{tag}_cin_or{i}"))
            }
        };
        carries.push(Some(c));
    }
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let s = match carries[i] {
            None => p[i],
            Some(c) => nl.xor2(p[i], c, format!("{tag}_s{i}")),
        };
        sums.push(s);
    }
    let cout = carries[width].expect("carry out always computed");
    (sums, cout)
}

/// Builds a standalone `width`-bit adder netlist with inputs `a0.., b0..`
/// (and optionally `cin`) and outputs `s0..s_width` where `s_width` is the
/// carry out.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn build_adder(width: usize, kind: AdderKind, with_carry_in: bool) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("adder_{}_{}", kind.abbrev(), width));
    let a: Vec<NetId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = if with_carry_in {
        Some(nl.add_input("cin"))
    } else {
        None
    };
    let (sums, cout) = add_words(&mut nl, kind, &a, &b, cin, "add");
    for (i, &s) in sums.iter().enumerate() {
        nl.add_output(format!("s{i}"), s);
    }
    nl.add_output(format!("s{width}"), cout);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_adder_exhaustive(kind: AdderKind, width: usize, with_cin: bool) {
        let nl = build_adder(width, kind, with_cin);
        nl.validate().unwrap();
        let limit = 1u64 << width;
        for a in 0..limit {
            for b in 0..limit {
                for c in 0..if with_cin { 2 } else { 1 } {
                    let expected = a + b + c;
                    let got = if with_cin {
                        nl.evaluate_words(&[a as u128, b as u128, c as u128], &[width, width, 1])
                    } else {
                        nl.evaluate_words(&[a as u128, b as u128], &[width, width])
                    };
                    assert_eq!(
                        got, expected as u128,
                        "{kind:?} width {width} cin {with_cin}: {a}+{b}+{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_adders_exhaustive_small_widths() {
        for kind in AdderKind::all() {
            for width in [1, 2, 3, 4, 5] {
                check_adder_exhaustive(kind, width, false);
            }
        }
    }

    #[test]
    fn all_adders_exhaustive_with_carry_in() {
        for kind in AdderKind::all() {
            for width in [2, 4] {
                check_adder_exhaustive(kind, width, true);
            }
        }
    }

    #[test]
    fn all_adders_random_wide() {
        let mut rng = StdRng::seed_from_u64(0xadd);
        for kind in AdderKind::all() {
            for width in [8, 16, 31, 32] {
                let nl = build_adder(width, kind, false);
                nl.validate().unwrap();
                for _ in 0..50 {
                    let mask = if width == 64 {
                        u64::MAX
                    } else {
                        (1u64 << width) - 1
                    };
                    let a = rng.gen::<u64>() & mask;
                    let b = rng.gen::<u64>() & mask;
                    let got = nl.evaluate_words(&[a as u128, b as u128], &[width, width]);
                    assert_eq!(got, a as u128 + b as u128, "{kind:?} width {width}");
                }
            }
        }
    }

    #[test]
    fn prefix_adders_are_shallower_than_ripple() {
        use gbmv_netlist::analysis::depth;
        let width = 32;
        let rc = build_adder(width, AdderKind::RippleCarry, false);
        for kind in [
            AdderKind::KoggeStone,
            AdderKind::BrentKung,
            AdderKind::HanCarlson,
        ] {
            let pa = build_adder(width, kind, false);
            assert!(
                depth(&pa) < depth(&rc),
                "{kind:?} must be shallower than ripple carry at width {width}"
            );
        }
    }

    #[test]
    fn kogge_stone_has_more_gates_than_brent_kung() {
        let ks = build_adder(32, AdderKind::KoggeStone, false);
        let bk = build_adder(32, AdderKind::BrentKung, false);
        assert!(ks.gate_count() > bk.gate_count());
    }

    #[test]
    fn abbreviations_are_distinct() {
        let mut abbrevs: Vec<&str> = AdderKind::all().iter().map(|k| k.abbrev()).collect();
        abbrevs.sort();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 5);
    }
}
