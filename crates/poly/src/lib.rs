//! Multivariate polynomial arithmetic for algebraic circuit verification.
//!
//! The membership-testing algorithm of the paper manipulates polynomials over
//! the Boolean domain: every variable `x` satisfies `x^2 = x`, so all
//! monomials are *multilinear* (a set of distinct variables). Coefficients are
//! arbitrary-precision signed integers because the specification polynomial of
//! an `n x n` multiplier contains coefficients up to `2^(2n-2)` and
//! intermediate coefficients can grow beyond that during reduction.
//!
//! The crate provides:
//!
//! * [`Int`] — a small hand-rolled signed arbitrary-precision integer
//!   (sign + base-2^64 magnitude). Only the operations needed by the verifier
//!   are implemented: add, sub, mul, powers of two, shifting, divisibility by
//!   powers of two and comparison.
//! * [`Var`], [`Monomial`] — variables and multilinear power products.
//! * [`Polynomial`] — a sparse sum of terms with [`Int`] coefficients,
//!   with the substitution operation that implements the S-polynomial step
//!   (division by a polynomial of the form `-v + tail`).
//! * [`spec`] — specification polynomials for adders and (modular) multipliers.
//!
//! # Example
//!
//! ```
//! use gbmv_poly::{Int, Monomial, Polynomial, Var};
//!
//! let a = Var(0);
//! let b = Var(1);
//! // p = a + b - 2ab  (the XOR gate polynomial tail)
//! let p = Polynomial::from_terms(vec![
//!     (Monomial::from_vars(vec![a]), Int::from(1)),
//!     (Monomial::from_vars(vec![b]), Int::from(1)),
//!     (Monomial::from_vars(vec![a, b]), Int::from(-2)),
//! ]);
//! // Evaluate at a=1, b=1: 1 + 1 - 2 = 0 (XOR of equal bits).
//! assert!(p.eval_bool(&|_| true).is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod monomial;
mod polynomial;
pub mod spec;

pub use int::Int;
pub use monomial::{Monomial, Var};
pub use polynomial::Polynomial;
