//! Multivariate polynomial arithmetic for algebraic circuit verification.
//!
//! The membership-testing algorithm of the paper manipulates polynomials over
//! the Boolean domain: every variable `x` satisfies `x^2 = x`, so all
//! monomials are *multilinear* (a set of distinct variables). Coefficients are
//! arbitrary-precision signed integers because the specification polynomial of
//! an `n x n` multiplier contains coefficients up to `2^(2n-2)` and
//! intermediate coefficients can grow beyond that during reduction.
//!
//! The crate provides:
//!
//! * [`Int`] — a signed arbitrary-precision integer with an inline `i64`
//!   fast path. The representation is canonical: values are stored inline
//!   whenever they fit an `i64` and spill to sign-magnitude base-2^64 limbs
//!   only beyond that, so the reduction inner loop does plain machine
//!   arithmetic with no allocation.
//! * [`Var`], [`Monomial`] — variables and multilinear power products.
//!   Monomials store up to [`INLINE_VARS`] variables inline (heap only for
//!   rare high-degree monomials) and cache their hash at construction.
//! * [`Polynomial`] — a sparse sum of terms with [`Int`] coefficients in an
//!   [`FastMap`], with the substitution operation that implements the
//!   S-polynomial step (division by a polynomial of the form `-v + tail`),
//!   including a scratch-reusing [`Polynomial::substitute_into`] for hot
//!   loops.
//! * [`IndexedPolynomial`] — the incrementally indexed term store behind
//!   the reduction hot loop: an inverted var→term-handle index so each
//!   substitution step touches only the terms containing the substituted
//!   net, canonical mod-`2^k` coefficients that cancel at insertion time,
//!   and a retirement accumulator for terms no substitution can reach.
//! * [`FastMap`] / [`FastSet`] — `ahash`-keyed hash containers used for every
//!   hot map in the engine (term tables, keep-sets, model indices).
//! * [`debug_timer!`] — opt-in wall-clock instrumentation for ad-hoc hot-spot
//!   hunting (enabled by setting `GBMV_TIMING`). The verification pipeline
//!   itself reports phase timings through the structured
//!   `gbmv_core::Session::observer` hook instead.
//! * [`spec`] — specification polynomials for adders and (modular) multipliers.
//!
//! # Representation invariants
//!
//! * `Int` is inline iff the value fits an `i64` (spill threshold
//!   `|v| > i64::MAX`, respectively `> 2^63` for negative values); limb
//!   vectors are trailing-zero-free. Structural equality/hashing rely on
//!   this.
//! * `Monomial` variable lists are sorted and duplicate-free; the inline
//!   capacity is [`INLINE_VARS`] and the cached hash always matches the
//!   list. Monomials that shrink below the capacity collapse back to the
//!   inline form.
//! * `Polynomial` never stores zero coefficients.
//!
//! # Example
//!
//! ```
//! use gbmv_poly::{Int, Monomial, Polynomial, Var};
//!
//! let a = Var(0);
//! let b = Var(1);
//! // p = a + b - 2ab  (the XOR gate polynomial tail)
//! let p = Polynomial::from_terms(vec![
//!     (Monomial::from_vars(vec![a]), Int::from(1)),
//!     (Monomial::from_vars(vec![b]), Int::from(1)),
//!     (Monomial::from_vars(vec![a, b]), Int::from(-2)),
//! ]);
//! // Evaluate at a=1, b=1: 1 + 1 - 2 = 0 (XOR of equal bits).
//! assert!(p.eval_bool(&|_| true).is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod indexed;
mod int;
mod monomial;
mod polynomial;
pub mod spec;

pub use indexed::IndexedPolynomial;
pub use int::Int;
pub use monomial::{Monomial, Var, INLINE_VARS};
pub use polynomial::{Polynomial, TermDelta};

/// A `HashMap` keyed by the fast `ahash` hasher; use for every map on a hot
/// path (term tables, model indices).
pub type FastMap<K, V> = std::collections::HashMap<K, V, ahash::RandomState>;

/// A `HashSet` keyed by the fast `ahash` hasher; use for keep-sets and other
/// hot-path sets.
pub type FastSet<T> = std::collections::HashSet<T, ahash::RandomState>;

/// Times an expression and reports it on stderr when the `GBMV_TIMING`
/// environment variable is set; otherwise evaluates the expression with no
/// timing overhead beyond one environment lookup.
///
/// ```
/// let total = gbmv_poly::debug_timer!("sum", (0..100).sum::<u64>());
/// assert_eq!(total, 4950);
/// ```
#[macro_export]
macro_rules! debug_timer {
    ($name:expr, $body:expr) => {{
        if ::std::env::var_os("GBMV_TIMING").is_some() {
            let __timer_start = ::std::time::Instant::now();
            let __timer_result = $body;
            eprintln!(
                "[gbmv-timing] {}: {} us",
                $name,
                __timer_start.elapsed().as_micros()
            );
            __timer_result
        } else {
            $body
        }
    }};
}
