//! Specification polynomials for arithmetic circuits.
//!
//! The verifier checks a circuit against a *word-level* specification written
//! as a polynomial over the input and output bit variables. Following the
//! paper, an `n x n` unsigned multiplier with outputs `s_0..s_{2n-1}` and
//! inputs `a_0..a_{n-1}`, `b_0..b_{n-1}` is specified by
//!
//! ```text
//! p_spec = sum_i -2^i s_i  +  (sum_i 2^i a_i) * (sum_i 2^i b_i)    (mod 2^(2n))
//! ```
//!
//! The `mod 2^(2n)` is applied by dropping remainder terms whose coefficient
//! is a multiple of `2^(2n)`; it is required for Booth partial products and
//! redundant-binary addition trees whose bit-level implementation is only
//! congruent (not equal) to the product before the modulo.

use crate::int::Int;
use crate::monomial::{Monomial, Var};
use crate::polynomial::Polynomial;

/// Builds the weighted sum `sign * sum_i 2^i bits[i]` as a polynomial.
pub fn weighted_sum(bits: &[Var], negative: bool) -> Polynomial {
    let mut p = Polynomial::with_capacity(bits.len());
    for (i, &v) in bits.iter().enumerate() {
        let mut c = Int::pow2(i as u32);
        if negative {
            c = -c;
        }
        p.add_term(Monomial::var(v), c);
    }
    p
}

/// Specification polynomial of an unsigned integer multiplier:
/// `sum -2^i s_i + (sum 2^i a_i)(sum 2^i b_i)`.
///
/// The caller decides whether to apply the modulo reduction (see
/// [`Polynomial::drop_multiples_of_pow2`] with `k = s.len()`), matching the
/// paper's `mod 2^(2n)` specification.
pub fn multiplier_spec(a: &[Var], b: &[Var], s: &[Var]) -> Polynomial {
    let outputs = weighted_sum(s, true);
    let pa = weighted_sum(a, false);
    let pb = weighted_sum(b, false);
    &outputs + &(&pa * &pb)
}

/// Specification polynomial of an unsigned adder:
/// `sum -2^i s_i + sum 2^i a_i + sum 2^i b_i (+ cin)`.
///
/// `s` may contain one more bit than `a`/`b` to cover the carry out.
pub fn adder_spec(a: &[Var], b: &[Var], s: &[Var], cin: Option<Var>) -> Polynomial {
    let mut p = weighted_sum(s, true);
    p = &p + &weighted_sum(a, false);
    p = &p + &weighted_sum(b, false);
    if let Some(c) = cin {
        p.add_term(Monomial::var(c), Int::one());
    }
    p
}

/// Specification polynomial of the full adder of Fig. 1 in the paper:
/// `-2c - s + a + b + cin`.
pub fn full_adder_spec(a: Var, b: Var, cin: Var, s: Var, c: Var) -> Polynomial {
    Polynomial::from_terms(vec![
        (Monomial::var(c), Int::from(-2)),
        (Monomial::var(s), Int::from(-1)),
        (Monomial::var(a), Int::from(1)),
        (Monomial::var(b), Int::from(1)),
        (Monomial::var(cin), Int::from(1)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_range(start: u32, len: usize) -> Vec<Var> {
        (0..len as u32).map(|i| Var(start + i)).collect()
    }

    /// Evaluates a spec polynomial over concrete integer values of the words.
    fn eval_words(
        p: &Polynomial,
        a_bits: &[Var],
        a: u64,
        b_bits: &[Var],
        b: u64,
        s_bits: &[Var],
        s: u64,
    ) -> Int {
        p.eval_bool(&|v: Var| {
            if let Some(i) = a_bits.iter().position(|&x| x == v) {
                (a >> i) & 1 == 1
            } else if let Some(i) = b_bits.iter().position(|&x| x == v) {
                (b >> i) & 1 == 1
            } else if let Some(i) = s_bits.iter().position(|&x| x == v) {
                (s >> i) & 1 == 1
            } else {
                false
            }
        })
    }

    #[test]
    fn weighted_sum_powers_of_two() {
        let bits = var_range(0, 4);
        let p = weighted_sum(&bits, false);
        assert_eq!(p.num_terms(), 4);
        assert_eq!(p.coeff(&Monomial::var(Var(3))), Int::from(8));
        let n = weighted_sum(&bits, true);
        assert_eq!(n.coeff(&Monomial::var(Var(2))), Int::from(-4));
    }

    #[test]
    fn multiplier_spec_vanishes_on_correct_products() {
        let n = 4;
        let a_bits = var_range(0, n);
        let b_bits = var_range(10, n);
        let s_bits = var_range(20, 2 * n);
        let spec = multiplier_spec(&a_bits, &b_bits, &s_bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let s = a * b;
                let val = eval_words(&spec, &a_bits, a, &b_bits, b, &s_bits, s);
                assert!(val.is_zero(), "spec must vanish for {a}*{b}={s}");
                let wrong = eval_words(&spec, &a_bits, a, &b_bits, b, &s_bits, (s + 1) % 256);
                assert!(!wrong.is_zero(), "spec must reject wrong product");
            }
        }
    }

    #[test]
    fn adder_spec_vanishes_on_correct_sums() {
        let n = 4;
        let a_bits = var_range(0, n);
        let b_bits = var_range(10, n);
        let s_bits = var_range(20, n + 1);
        let spec = adder_spec(&a_bits, &b_bits, &s_bits, None);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let val = eval_words(&spec, &a_bits, a, &b_bits, b, &s_bits, a + b);
                assert!(val.is_zero());
            }
        }
    }

    #[test]
    fn adder_spec_with_carry_in() {
        let a_bits = var_range(0, 2);
        let b_bits = var_range(4, 2);
        let s_bits = var_range(8, 3);
        let cin = Var(15);
        let spec = adder_spec(&a_bits, &b_bits, &s_bits, Some(cin));
        // 3 + 2 + 1 = 6
        let val = spec.eval_bool(&|v: Var| match v {
            Var(0) | Var(1) => true,  // a = 3
            Var(5) => true,           // b = 2
            Var(9) | Var(10) => true, // s = 6
            Var(15) => true,          // cin = 1
            _ => false,
        });
        assert!(val.is_zero());
    }

    #[test]
    fn full_adder_spec_matches_truth_table() {
        let (a, b, cin, s, c) = (Var(0), Var(1), Var(2), Var(3), Var(4));
        let spec = full_adder_spec(a, b, cin, s, c);
        for bits in 0..8u32 {
            let av = bits & 1 == 1;
            let bv = bits & 2 != 0;
            let cv = bits & 4 != 0;
            let sum = av as u32 + bv as u32 + cv as u32;
            let val = spec.eval_bool(&|v: Var| match v {
                Var(0) => av,
                Var(1) => bv,
                Var(2) => cv,
                Var(3) => sum & 1 == 1,
                Var(4) => sum >= 2,
                _ => false,
            });
            assert!(val.is_zero());
        }
    }

    #[test]
    fn modulo_reduction_drops_high_coefficients() {
        // With 2-bit inputs the product needs 4 output bits; a term with
        // coefficient 16 = 2^4 is congruent to zero mod 2^4.
        let a_bits = var_range(0, 2);
        let b_bits = var_range(4, 2);
        let s_bits = var_range(8, 4);
        let mut spec = multiplier_spec(&a_bits, &b_bits, &s_bits);
        spec.add_term(Monomial::var(Var(0)), Int::pow2(4));
        let reduced = spec.drop_multiples_of_pow2(4);
        // The added term disappears, the original spec terms survive.
        assert_eq!(
            reduced.num_terms(),
            multiplier_spec(&a_bits, &b_bits, &s_bits).num_terms()
        );
    }
}
