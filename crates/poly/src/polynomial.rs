use std::collections::hash_map::Entry;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::int::Int;
use crate::monomial::{Monomial, Var};
use crate::{FastMap, FastSet};

/// A sparse multivariate polynomial with [`Int`] coefficients over multilinear
/// (Boolean-domain) monomials.
///
/// Zero coefficients are never stored, so the zero polynomial has no terms and
/// two equal polynomials compare equal structurally. Terms live in a
/// [`FastMap`] keyed by the monomials' cached hashes; together with the
/// small-int coefficient representation this keeps the reduction inner loop
/// ([`Polynomial::add_term`] via [`Polynomial::add_scaled_shifted`]) free of
/// heap allocation for the common case.
///
/// # Example
///
/// ```
/// use gbmv_poly::{Int, Monomial, Polynomial, Var};
///
/// // g := -z + a + b - 2ab models z = a XOR b; substituting the AND gate
/// // polynomial for another variable works the same way.
/// let z = Var(2);
/// let tail = Polynomial::from_terms(vec![
///     (Monomial::var(Var(0)), Int::from(1)),
///     (Monomial::var(Var(1)), Int::from(1)),
///     (Monomial::from_vars(vec![Var(0), Var(1)]), Int::from(-2)),
/// ]);
/// // p = 3z; substituting z by the tail yields 3a + 3b - 6ab.
/// let p = Polynomial::from_terms(vec![(Monomial::var(z), Int::from(3))]);
/// let q = p.substitute(z, &tail);
/// assert_eq!(q.coeff(&Monomial::from_vars(vec![Var(0), Var(1)])), Int::from(-6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    terms: FastMap<Monomial, Int>,
}

/// A change to the set of monomials stored in a [`Polynomial`], reported by
/// [`Polynomial::add_term_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermDelta {
    /// A new `(monomial, coefficient)` entry was created.
    Inserted,
    /// An existing entry's coefficient summed to zero and was removed.
    Cancelled,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// A zero polynomial with room for `capacity` terms, for callers that
    /// know the size of what they are about to build.
    pub fn with_capacity(capacity: usize) -> Self {
        Polynomial {
            terms: FastMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Int) -> Self {
        let mut p = Polynomial::zero();
        p.add_term(Monomial::one(), c);
        p
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        let mut p = Polynomial::zero();
        p.add_term(Monomial::var(v), Int::one());
        p
    }

    /// Builds a polynomial from `(monomial, coefficient)` pairs, combining
    /// duplicates and dropping zero coefficients.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, Int)>) -> Self {
        let iter = terms.into_iter();
        let mut p = Polynomial::with_capacity(iter.size_hint().0);
        for (m, c) in iter {
            p.add_term(m, c);
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of terms (monomials with non-zero coefficient).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The maximum degree (number of variables) over all monomials; 0 for the
    /// zero polynomial.
    pub fn max_degree(&self) -> usize {
        self.terms.keys().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// The coefficient of `monomial` (zero if absent).
    pub fn coeff(&self, monomial: &Monomial) -> Int {
        self.terms.get(monomial).cloned().unwrap_or_else(Int::zero)
    }

    /// Iterates over `(monomial, coefficient)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Int)> {
        self.terms.iter()
    }

    /// Removes all terms, keeping the allocated table for reuse.
    pub fn clear(&mut self) {
        self.terms.clear();
    }

    /// The set of variables appearing in the polynomial (`Vars(p)` in the
    /// paper).
    pub fn vars(&self) -> FastSet<Var> {
        let mut set = FastSet::default();
        for m in self.terms.keys() {
            set.extend(m.vars());
        }
        set
    }

    /// Returns `true` if the variable appears in any term.
    pub fn contains_var(&self, v: Var) -> bool {
        self.terms.keys().any(|m| m.contains(v))
    }

    /// Adds `coeff * monomial` to the polynomial in place. Takes both by
    /// value: callers that own their term hand it over without cloning, and
    /// the map insert reuses the monomial's cached hash.
    pub fn add_term(&mut self, monomial: Monomial, coeff: Int) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(monomial) {
            Entry::Vacant(e) => {
                e.insert(coeff);
            }
            Entry::Occupied(mut e) => {
                let sum = e.get_mut();
                *sum += &coeff;
                if sum.is_zero() {
                    e.remove();
                }
            }
        }
    }

    /// Like [`Polynomial::add_term`], but reports changes to the set of
    /// stored monomials through `observe`, which receives the affected
    /// monomial *by reference* (no clone) together with what happened to it.
    /// Callers that maintain side indices over the terms (e.g. the
    /// per-variable occurrence counts of the parallel reduction engine) use
    /// the callback to update them incrementally instead of rescanning;
    /// `observe` is not called when only a coefficient changed.
    pub fn add_term_observed(
        &mut self,
        monomial: Monomial,
        coeff: Int,
        mut observe: impl FnMut(TermDelta, &Monomial),
    ) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(monomial) {
            Entry::Vacant(e) => {
                observe(TermDelta::Inserted, e.key());
                e.insert(coeff);
            }
            Entry::Occupied(mut e) => {
                let sum = e.get_mut();
                *sum += &coeff;
                if sum.is_zero() {
                    observe(TermDelta::Cancelled, e.key());
                    e.remove();
                }
            }
        }
    }

    /// Removes and returns every term whose monomial contains `v`, leaving
    /// the other terms (and the table's allocation) in place.
    ///
    /// This is the extraction half of in-place substitution: instead of
    /// rebuilding the whole term table (cloning terms that do not mention
    /// `v`), the caller extracts the affected terms and adds the expanded
    /// products back. The returned order is unspecified.
    pub fn extract_terms_containing(&mut self, v: Var) -> Vec<(Monomial, Int)> {
        let mut out = Vec::new();
        self.terms.retain(|m, c| {
            if m.contains(v) {
                out.push((m.clone(), std::mem::replace(c, Int::zero())));
                false
            } else {
                true
            }
        });
        out
    }

    /// Adds `other` scaled by `scale` and multiplied by `monomial` in place.
    /// This is the inner loop of substitution and of polynomial
    /// multiplication.
    pub fn add_scaled_shifted(&mut self, other: &Polynomial, monomial: &Monomial, scale: &Int) {
        if scale.is_zero() {
            return;
        }
        self.terms.reserve(other.num_terms());
        if scale.is_one() {
            for (m, c) in other.iter() {
                self.add_term(m.mul(monomial), c.clone());
            }
        } else {
            for (m, c) in other.iter() {
                self.add_term(m.mul(monomial), c * scale);
            }
        }
    }

    /// Multiplies the polynomial by a constant in place.
    pub fn scale(&mut self, factor: &Int) {
        if factor.is_zero() {
            self.terms.clear();
            return;
        }
        if factor.is_one() {
            return;
        }
        for c in self.terms.values_mut() {
            *c *= factor;
        }
    }

    /// Substitutes variable `v` by the polynomial `replacement`.
    ///
    /// Every term `c * v * m` becomes `c * m * replacement` (with Boolean
    /// reduction of repeated variables); terms not containing `v` are kept.
    /// This implements the S-polynomial division step of the membership
    /// testing algorithm for gate polynomials of the form `-v + tail`, where
    /// `replacement = tail`.
    pub fn substitute(&self, v: Var, replacement: &Polynomial) -> Polynomial {
        let mut result = Polynomial::zero();
        self.substitute_into(v, replacement, &mut result);
        result
    }

    /// [`Polynomial::substitute`] writing into a caller-provided scratch
    /// polynomial. The reduction and rewrite loops call this with a reused
    /// scratch so the term table is allocated once per loop instead of once
    /// per substitution step.
    pub fn substitute_into(&self, v: Var, replacement: &Polynomial, out: &mut Polynomial) {
        out.clear();
        out.terms.reserve(self.num_terms());
        for (m, c) in self.iter() {
            if m.contains(v) {
                let rest = m.without(v);
                out.add_scaled_shifted(replacement, &rest, c);
            } else {
                out.add_term(m.clone(), c.clone());
            }
        }
    }

    /// Evaluates the polynomial over a Boolean assignment of the variables.
    pub fn eval_bool(&self, assignment: &impl Fn(Var) -> bool) -> Int {
        let mut sum = Int::zero();
        for (m, c) in self.iter() {
            if m.eval_bool(assignment) {
                sum += c;
            }
        }
        sum
    }

    /// Reduces every coefficient modulo `2^k` (canonical range `[0, 2^k)`),
    /// dropping terms that become zero. Used for the `mod 2^(2n)` multiplier
    /// specification.
    pub fn mod_coeffs_pow2(&self, k: u32) -> Polynomial {
        let mut out = Polynomial::with_capacity(self.num_terms());
        for (m, c) in self.iter() {
            out.add_term(m.clone(), c.mod_pow2(k));
        }
        out
    }

    /// Removes terms whose coefficient is a multiple of `2^k` (the operation
    /// the paper applies to the remainder). Equivalent to [`Self::mod_coeffs_pow2`]
    /// for the purpose of a zero test, but keeps the original coefficients of
    /// surviving terms.
    pub fn drop_multiples_of_pow2(&self, k: u32) -> Polynomial {
        let mut out = Polynomial::with_capacity(self.num_terms());
        for (m, c) in self.iter() {
            if !c.is_multiple_of_pow2(k) {
                out.add_term(m.clone(), c.clone());
            }
        }
        out
    }

    /// In-place variant of [`Self::drop_multiples_of_pow2`]; returns the
    /// number of removed terms. The reduction loop applies this after every
    /// substitution when a modulus is configured.
    pub fn retain_non_multiples_of_pow2(&mut self, k: u32) -> usize {
        let before = self.terms.len();
        self.terms.retain(|_, c| !c.is_multiple_of_pow2(k));
        before - self.terms.len()
    }

    /// Retains only the terms for which `keep` returns `true`. Returns the
    /// number of removed terms. Used by the XOR-AND vanishing rule.
    pub fn retain_terms<F: FnMut(&Monomial) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.terms.len();
        self.terms.retain(|m, _| keep(m));
        before - self.terms.len()
    }

    /// Like [`Polynomial::retain_terms`] but deciding on the full
    /// `(monomial, coefficient)` pair and reporting every removed monomial
    /// through `on_remove`, so callers maintaining side indices (occurrence
    /// counts) can update them incrementally. Returns the number of removed
    /// terms.
    pub fn retain_terms_where(
        &mut self,
        mut keep: impl FnMut(&Monomial, &Int) -> bool,
        mut on_remove: impl FnMut(&Monomial),
    ) -> usize {
        let before = self.terms.len();
        self.terms.retain(|m, c| {
            if keep(m, c) {
                true
            } else {
                on_remove(m);
                false
            }
        });
        before - self.terms.len()
    }

    /// Renders the polynomial with a custom variable namer, terms sorted by
    /// descending degree then lexicographically, constants last.
    pub fn display_with<F: Fn(Var) -> String>(&self, namer: F) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut terms: Vec<(&Monomial, &Int)> = self.terms.iter().collect();
        terms.sort_by(|(ma, _), (mb, _)| mb.degree().cmp(&ma.degree()).then_with(|| ma.cmp(mb)));
        let mut out = String::new();
        for (i, (m, c)) in terms.iter().enumerate() {
            let neg = c.is_negative();
            let abs = c.abs();
            if i == 0 {
                if neg {
                    out.push('-');
                }
            } else if neg {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            if m.is_one() {
                out.push_str(&abs.to_string());
            } else if abs.is_one() {
                out.push_str(&m.display_with(&namer));
            } else {
                out.push_str(&format!("{}*{}", abs, m.display_with(&namer)));
            }
        }
        out
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        out.terms.reserve(rhs.num_terms());
        for (m, c) in rhs.iter() {
            out.add_term(m.clone(), c.clone());
        }
        out
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        out.terms.reserve(rhs.num_terms());
        for (m, c) in rhs.iter() {
            out.add_term(m.clone(), -c);
        }
        out
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        let mut out = Polynomial::with_capacity(self.num_terms());
        for (m, c) in self.iter() {
            out.add_term(m.clone(), -c);
        }
        out
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in self.iter() {
            out.add_scaled_shifted(rhs, m, c);
        }
        out
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(|v| v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn xor_tail(a: Var, b: Var) -> Polynomial {
        Polynomial::from_terms(vec![
            (Monomial::var(a), Int::from(1)),
            (Monomial::var(b), Int::from(1)),
            (Monomial::from_vars(vec![a, b]), Int::from(-2)),
        ])
    }

    fn and_tail(a: Var, b: Var) -> Polynomial {
        Polynomial::from_terms(vec![(Monomial::from_vars(vec![a, b]), Int::from(1))])
    }

    #[test]
    fn zero_and_constant() {
        assert!(Polynomial::zero().is_zero());
        assert!(Polynomial::constant(Int::zero()).is_zero());
        let c = Polynomial::constant(Int::from(5));
        assert_eq!(c.num_terms(), 1);
        assert_eq!(c.coeff(&Monomial::one()), Int::from(5));
    }

    #[test]
    fn add_combines_and_cancels() {
        let a = Var(0);
        let p = Polynomial::var(a);
        let q = &p + &p;
        assert_eq!(q.coeff(&Monomial::var(a)), Int::from(2));
        let z = &q - &q;
        assert!(z.is_zero());
        assert_eq!((-&p).coeff(&Monomial::var(a)), Int::from(-1));
    }

    #[test]
    fn mul_applies_boolean_reduction() {
        let a = Var(0);
        // (a) * (a) = a because a^2 = a in the Boolean domain.
        let p = Polynomial::var(a);
        let sq = &p * &p;
        assert_eq!(sq, p);
        // (a + b)^2 = a + b + 2ab
        let b = Var(1);
        let s = &Polynomial::var(a) + &Polynomial::var(b);
        let sq = &s * &s;
        assert_eq!(sq.coeff(&Monomial::var(a)), Int::from(1));
        assert_eq!(sq.coeff(&Monomial::from_vars(vec![a, b])), Int::from(2));
    }

    #[test]
    fn substitute_xor_and_cancels_to_zero() {
        // The vanishing monomial of the paper: X*D with X = a xor b,
        // D = a and b. Substituting both gives the zero polynomial.
        let a = Var(0);
        let b = Var(1);
        let x = Var(2);
        let d = Var(3);
        let p = Polynomial::from_terms(vec![(Monomial::from_vars(vec![x, d]), Int::from(1))]);
        let p = p.substitute(x, &xor_tail(a, b));
        let p = p.substitute(d, &and_tail(a, b));
        assert!(p.is_zero(), "(a xor b)(a and b) must reduce to 0, got {p}");
    }

    #[test]
    fn substitute_keeps_unrelated_terms() {
        let a = Var(0);
        let b = Var(1);
        let z = Var(2);
        let p = Polynomial::from_terms(vec![
            (Monomial::var(z), Int::from(4)),
            (Monomial::var(b), Int::from(7)),
        ]);
        let q = p.substitute(z, &and_tail(a, b));
        assert_eq!(q.coeff(&Monomial::var(b)), Int::from(7));
        assert_eq!(q.coeff(&Monomial::from_vars(vec![a, b])), Int::from(4));
    }

    #[test]
    fn substitute_into_reuses_scratch() {
        let a = Var(0);
        let b = Var(1);
        let z = Var(2);
        let p = Polynomial::from_terms(vec![
            (Monomial::var(z), Int::from(4)),
            (Monomial::var(b), Int::from(7)),
        ]);
        // Pre-populate the scratch with junk; substitute_into must clear it.
        let mut scratch = Polynomial::from_terms(vec![(Monomial::var(Var(9)), Int::from(3))]);
        p.substitute_into(z, &and_tail(a, b), &mut scratch);
        assert_eq!(scratch, p.substitute(z, &and_tail(a, b)));
        assert!(scratch.coeff(&Monomial::var(Var(9))).is_zero());
    }

    #[test]
    fn eval_bool_full_adder_spec() {
        // -2c - s + a + b + cin evaluates to zero for a correct full adder
        // assignment: a=1,b=1,cin=0 -> s=0,c=1.
        let (a, b, cin, s, c) = (Var(0), Var(1), Var(2), Var(3), Var(4));
        let spec = Polynomial::from_terms(vec![
            (Monomial::var(c), Int::from(-2)),
            (Monomial::var(s), Int::from(-1)),
            (Monomial::var(a), Int::from(1)),
            (Monomial::var(b), Int::from(1)),
            (Monomial::var(cin), Int::from(1)),
        ]);
        let assignment = |v: Var| matches!(v, Var(0) | Var(1) | Var(4));
        assert!(spec.eval_bool(&assignment).is_zero());
        let wrong = |v: Var| matches!(v, Var(0) | Var(1) | Var(3));
        assert!(!spec.eval_bool(&wrong).is_zero());
    }

    #[test]
    fn mod_and_drop_pow2() {
        let m = Monomial::var(Var(0));
        let p = Polynomial::from_terms(vec![
            (m.clone(), Int::pow2(8)),
            (Monomial::var(Var(1)), Int::from(3)),
        ]);
        let reduced = p.mod_coeffs_pow2(8);
        assert_eq!(reduced.num_terms(), 1);
        assert_eq!(reduced.coeff(&Monomial::var(Var(1))), Int::from(3));
        let dropped = p.drop_multiples_of_pow2(8);
        assert_eq!(dropped.num_terms(), 1);
        assert!(dropped.coeff(&m).is_zero());
        // In-place variant agrees and reports the removal count.
        let mut q = p.clone();
        let removed = q.retain_non_multiples_of_pow2(8);
        assert_eq!(removed, 1);
        assert_eq!(q, dropped);
    }

    #[test]
    fn retain_terms_counts_removed() {
        let mut p = Polynomial::from_terms(vec![
            (Monomial::var(Var(0)), Int::from(1)),
            (Monomial::from_vars(vec![Var(0), Var(1)]), Int::from(2)),
            (Monomial::one(), Int::from(3)),
        ]);
        let removed = p.retain_terms(|m| m.degree() < 2);
        assert_eq!(removed, 1);
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::from_terms(vec![
            (Monomial::from_vars(vec![Var(0), Var(1)]), Int::from(-2)),
            (Monomial::var(Var(0)), Int::from(1)),
            (Monomial::one(), Int::from(3)),
        ]);
        assert_eq!(p.to_string(), "-2*x0*x1 + x0 + 3");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    /// Generates a random small polynomial for property tests.
    fn arb_poly() -> impl Strategy<Value = Polynomial> {
        proptest::collection::vec((proptest::collection::vec(0u32..6, 0..4), -20i64..20), 0..8)
            .prop_map(|terms| {
                Polynomial::from_terms(terms.into_iter().map(|(vars, c)| {
                    (Monomial::from_vars(vars.into_iter().map(Var)), Int::from(c))
                }))
            })
    }

    fn eval(p: &Polynomial, bits: u32) -> Int {
        p.eval_bool(&|v: Var| (bits >> v.0) & 1 == 1)
    }

    proptest! {
        #[test]
        fn ring_axioms_under_evaluation(p in arb_poly(), q in arb_poly(), bits in 0u32..64) {
            let sum = &p + &q;
            let prod = &p * &q;
            prop_assert_eq!(eval(&sum, bits), &eval(&p, bits) + &eval(&q, bits));
            prop_assert_eq!(eval(&prod, bits), &eval(&p, bits) * &eval(&q, bits));
            prop_assert_eq!(eval(&(&p - &p), bits), Int::zero());
        }

        #[test]
        fn substitution_respects_evaluation(p in arb_poly(), r in arb_poly(), bits in 0u32..64) {
            // Substituting v by a 0/1-valued polynomial must agree with
            // evaluating v at that value. Use r restricted to a Boolean value
            // by evaluating it first.
            let v = Var(2);
            let r_val = !eval(&r, bits).is_zero();
            // Build the replacement as a constant 0/1 polynomial.
            let replacement = if r_val { Polynomial::constant(Int::one()) } else { Polynomial::zero() };
            let substituted = p.substitute(v, &replacement);
            // Evaluate p with v forced to r_val, everything else per `bits`.
            let forced = p.eval_bool(&|u: Var| if u == v { r_val } else { (bits >> u.0) & 1 == 1 });
            // In `substituted`, v no longer occurs, so evaluation ignores it.
            let masked_bits = bits;
            prop_assert_eq!(substituted.eval_bool(&|u: Var| if u == v { false } else { (masked_bits >> u.0) & 1 == 1 }), forced);
        }

        #[test]
        fn add_commutes_and_associates(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
            prop_assert_eq!(&p + &q, &q + &p);
            prop_assert_eq!(&(&p + &q) + &r, &p + &(&q + &r));
            prop_assert_eq!(&p * &q, &q * &p);
        }

        #[test]
        fn substitute_into_matches_substitute(p in arb_poly(), r in arb_poly()) {
            let v = Var(1);
            let mut scratch = Polynomial::zero();
            p.substitute_into(v, &r, &mut scratch);
            prop_assert_eq!(scratch, p.substitute(v, &r));
        }
    }
}
