//! An incrementally indexed term store for the backward-rewriting hot loop.
//!
//! [`IndexedPolynomial`] holds the same term multiset as a [`Polynomial`]
//! but adds the three structures the reduction engine needs to make each
//! substitution step proportional to the *affected* term set instead of the
//! whole polynomial:
//!
//! 1. **An inverted var→term-handle index.** For every *tracked* variable
//!    (a substitutable gate output), the store keeps a list of slot handles
//!    of terms whose monomial contains that variable, so
//!    [`IndexedPolynomial::extract_terms_containing`] drains exactly the
//!    affected terms with no full-table scan.
//! 2. **Canonical mod-`2^k` coefficients.** With a modulus configured,
//!    coefficients are stored in `[0, 2^k)` and terms whose coefficient is
//!    congruent to zero cancel *at insertion time*, replacing the old
//!    post-step "drop multiples of `2^k`" sweep over every term.
//! 3. **A retirement accumulator.** Terms whose monomial contains no
//!    tracked variable can never be extracted again; they are routed to a
//!    separate accumulator where they still merge and cancel against each
//!    other, but are never touched by the per-step index maintenance.
//!
//! # Index invariants
//!
//! * Every live term whose monomial contains a tracked variable `v` has at
//!   least one handle in `v`'s index list. Lists may additionally contain
//!   *stale* handles (the term was cancelled or extracted, and its slot may
//!   have been reused); staleness is detected at drain time by re-checking
//!   that the slot is live *and* its monomial still contains `v`.
//! * The lookup table addresses terms by their cached monomial hash, so the
//!   monomial bytes are stored exactly once (in the slot arena).
//! * With a modulus `2^k`, a term is present iff its exact coefficient is
//!   not a multiple of `2^k`; the stored coefficient is the canonical
//!   representative in `[0, 2^k)`. Without a modulus, arithmetic is exact.
//!
//! Under the engine's level-restricted substitution order every tracked
//! variable is drained at most once, so index maintenance is amortized
//! `O(1)` per inserted term per tracked variable it contains.

use crate::{FastMap, Int, Monomial, Polynomial, Var};

/// Bucket marker: no entry was ever stored here (probe chains stop).
const EMPTY: u32 = u32::MAX;
/// Bucket marker: an entry was removed here (probe chains continue).
const TOMB: u32 = u32::MAX - 1;

/// A term store with an inverted var→term index, optional canonical
/// mod-`2^k` coefficients, and an accumulator that retires terms no longer
/// reachable by any substitution. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct IndexedPolynomial {
    /// Slot arena: `None` slots are free (their ids are on `free`).
    slots: Vec<Option<(Monomial, Int)>>,
    /// Free list of reusable slot ids.
    free: Vec<u32>,
    /// Open-addressing lookup table of slot ids, probed linearly by the
    /// monomial's cached hash. Only live (indexed) terms appear here.
    buckets: Vec<u32>,
    /// Live entries in `buckets`.
    items: usize,
    /// Tombstones in `buckets`.
    tombs: usize,
    /// Per-variable handle lists; non-empty only for tracked variables.
    var_index: Vec<Vec<u32>>,
    /// Which variables are tracked (substitutable); indexed by `Var::index`.
    tracked: Vec<bool>,
    /// Live-term occurrence counts per variable (tracked variables only).
    counts: Vec<u32>,
    /// Terms with no tracked variable: they merge and cancel against each
    /// other but are exempt from all index maintenance.
    inert: FastMap<Monomial, Int>,
    /// When `Some(k)`, coefficients are canonical mod `2^k`.
    modulus_bits: Option<u32>,
    /// Terms retrieved through the inverted index by
    /// [`extract_terms_containing`](Self::extract_terms_containing).
    index_hits: u64,
}

impl IndexedPolynomial {
    /// Creates an empty store. `tracked[v.index()]` marks the substitutable
    /// variables; variables at or beyond `tracked.len()` are untracked.
    /// With `modulus_bits = Some(k)`, coefficients are kept canonical mod
    /// `2^k` and terms cancel as soon as their coefficient is a multiple of
    /// `2^k`.
    pub fn new(tracked: Vec<bool>, modulus_bits: Option<u32>) -> IndexedPolynomial {
        let n = tracked.len();
        IndexedPolynomial {
            slots: Vec::new(),
            free: Vec::new(),
            buckets: vec![EMPTY; 64],
            items: 0,
            tombs: 0,
            var_index: vec![Vec::new(); n],
            tracked,
            counts: vec![0; n],
            inert: FastMap::default(),
            modulus_bits,
            index_hits: 0,
        }
    }

    /// Builds the store from an existing polynomial (used once per
    /// reduction to ingest the rewritten specification).
    pub fn from_polynomial(
        p: &Polynomial,
        tracked: Vec<bool>,
        modulus_bits: Option<u32>,
    ) -> IndexedPolynomial {
        let mut ix = IndexedPolynomial::new(tracked, modulus_bits);
        for (m, c) in p.iter() {
            ix.add_term(m.clone(), c.clone());
        }
        ix
    }

    /// The modulus (in bits) coefficients are canonicalized to, if any.
    pub fn modulus_bits(&self) -> Option<u32> {
        self.modulus_bits
    }

    /// Number of present terms (live + retired accumulator).
    pub fn num_terms(&self) -> usize {
        self.live_terms() + self.inert.len()
    }

    /// Number of live (indexed) terms, i.e. terms still containing at
    /// least one tracked variable.
    pub fn live_terms(&self) -> usize {
        self.items
    }

    /// Number of retired terms (no tracked variable left).
    pub fn retired_terms(&self) -> usize {
        self.inert.len()
    }

    /// `true` when no term is present at all.
    pub fn is_zero(&self) -> bool {
        self.num_terms() == 0
    }

    /// Occurrence count of `v` across live terms (0 for untracked
    /// variables, whose occurrences are not maintained).
    pub fn occurrences(&self, v: Var) -> u32 {
        self.counts.get(v.index()).copied().unwrap_or(0)
    }

    /// Per-variable live occurrence counts, indexed by `Var::index`
    /// (meaningful for tracked variables only).
    pub fn occurrence_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Terms retrieved through the inverted index so far.
    pub fn index_hits(&self) -> u64 {
        self.index_hits
    }

    fn canon(&self, c: Int) -> Int {
        match self.modulus_bits {
            Some(k) => c.mod_pow2(k),
            None => c,
        }
    }

    fn is_tracked(&self, v: Var) -> bool {
        self.tracked.get(v.index()).copied().unwrap_or(false)
    }

    fn has_tracked(&self, m: &Monomial) -> bool {
        m.vars().any(|v| self.is_tracked(v))
    }

    /// Adds `coeff * monomial`, merging with an existing term and removing
    /// it when the (canonical) coefficient reaches zero.
    pub fn add_term(&mut self, monomial: Monomial, coeff: Int) {
        let coeff = self.canon(coeff);
        if coeff.is_zero() {
            return;
        }
        // Live terms (the only ones in the lookup table) are checked first;
        // a miss for a monomial with a tracked variable is a fresh insert.
        match self.find_bucket(&monomial) {
            FindResult::Found(bucket) => {
                let id = self.buckets[bucket] as usize;
                let modulus = self.modulus_bits;
                let slot = self.slots[id].as_mut().expect("bucket points at live slot");
                slot.1 += &coeff;
                if let Some(k) = modulus {
                    slot.1 = slot.1.mod_pow2(k);
                }
                let cancelled = slot.1.is_zero();
                if cancelled {
                    self.remove_bucket(bucket);
                }
            }
            FindResult::Absent(bucket) => {
                if self.has_tracked(&monomial) {
                    self.insert_live(bucket, monomial, coeff);
                } else {
                    self.add_inert(monomial, coeff);
                }
            }
        }
    }

    fn add_inert(&mut self, monomial: Monomial, coeff: Int) {
        use std::collections::hash_map::Entry;
        match self.inert.entry(monomial) {
            Entry::Occupied(mut e) => {
                let sum = match self.modulus_bits {
                    Some(k) => (e.get() + &coeff).mod_pow2(k),
                    None => e.get() + &coeff,
                };
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
            Entry::Vacant(e) => {
                e.insert(coeff);
            }
        }
    }

    /// Drains every term containing `v` through the inverted index,
    /// removing the terms from the store and returning them. Only tracked
    /// variables have an index; for untracked variables this returns an
    /// empty vector (such terms are never extracted by the engine).
    pub fn extract_terms_containing(&mut self, v: Var) -> Vec<(Monomial, Int)> {
        self.extract_terms_containing_any(std::slice::from_ref(&v))
    }

    /// Drains every term containing at least one of `vars` through the
    /// inverted index, removing the terms from the store and returning them
    /// (each term exactly once, even when it contains several of the
    /// variables). The rewrite engine uses this to pull all terms touched by
    /// a substitution front in one pass; untracked variables contribute
    /// nothing, exactly as in
    /// [`extract_terms_containing`](Self::extract_terms_containing).
    pub fn extract_terms_containing_any(&mut self, vars: &[Var]) -> Vec<(Monomial, Int)> {
        let mut out = Vec::new();
        for &v in vars {
            let Some(list) = self.var_index.get_mut(v.index()) else {
                continue;
            };
            let handles = std::mem::take(list);
            out.reserve(handles.len());
            for id in handles {
                // Stale handles: the slot died, or was reused by a monomial
                // that does not contain `v`. (A reused slot whose monomial
                // *does* contain `v` is a legitimate drain target — the reuse
                // also pushed a fresh handle, which will later be skipped as
                // stale.) A term containing two of `vars` is drained under
                // the first and skipped as stale under the second.
                let live_with_v = matches!(
                    self.slots.get(id as usize).and_then(Option::as_ref),
                    Some((m, _)) if m.contains(v)
                );
                if !live_with_v {
                    continue;
                }
                let (m, c) = self.remove_slot(id);
                self.index_hits += 1;
                out.push((m, c));
            }
        }
        out
    }

    /// Grows the tracked set: marks `v` as substitutable, indexes every
    /// live term containing it, and promotes retired terms containing it
    /// back to the live (indexed) side. The rewriting phase needs this
    /// because — unlike reduction, where the variable set only shrinks —
    /// internal nets can *appear* as substitution fronts after the store
    /// was built. Idempotent; `O(live + retired)` when it actually grows.
    pub fn track_var(&mut self, v: Var) {
        let i = v.index();
        if i >= self.tracked.len() {
            self.tracked.resize(i + 1, false);
            self.counts.resize(i + 1, 0);
            self.var_index.resize_with(i + 1, Vec::new);
        }
        if self.tracked[i] {
            return;
        }
        self.tracked[i] = true;
        // Index the live terms that already contain `v`.
        for id in 0..self.slots.len() {
            let hit = matches!(&self.slots[id], Some((m, _)) if m.contains(v));
            if hit {
                self.counts[i] += 1;
                self.var_index[i].push(id as u32);
            }
        }
        // Promote retired terms containing `v`: they are reachable by a
        // substitution again. (Live and retired term sets are disjoint, so
        // the lookup probe always lands on an absent bucket.)
        let mut promoted = Vec::new();
        self.inert.retain(|m, c| {
            if m.contains(v) {
                promoted.push((m.clone(), c.clone()));
                false
            } else {
                true
            }
        });
        for (m, c) in promoted {
            match self.find_bucket(&m) {
                FindResult::Absent(bucket) => self.insert_live(bucket, m, c),
                FindResult::Found(_) => unreachable!("live and retired terms are disjoint"),
            }
        }
    }

    /// Removes every term (live or retired) whose monomial fails `keep`,
    /// returning how many were removed. The rewrite engine sweeps a tail's
    /// pre-existing terms against the vanishing closure once, right before
    /// the first substitution touches it.
    pub fn retain_terms<F: FnMut(&Monomial) -> bool>(&mut self, mut keep: F) -> usize {
        let mut removed = 0usize;
        for id in 0..self.slots.len() {
            let dead = matches!(&self.slots[id], Some((m, _)) if !keep(m));
            if dead {
                self.remove_slot(id as u32);
                removed += 1;
            }
        }
        let before = self.inert.len();
        self.inert.retain(|m, _| keep(m));
        removed + (before - self.inert.len())
    }

    /// Consumes the store and reassembles a plain [`Polynomial`] (live
    /// terms plus the retirement accumulator; the two sets are disjoint by
    /// construction).
    pub fn into_polynomial(self) -> Polynomial {
        Polynomial::from_terms(self.slots.into_iter().flatten().chain(self.inert))
    }

    fn insert_live(&mut self, bucket: usize, monomial: Monomial, coeff: Int) {
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some((monomial, coeff));
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("term handle overflow");
                self.slots.push(Some((monomial, coeff)));
                id
            }
        };
        if self.buckets[bucket] == TOMB {
            self.tombs -= 1;
        }
        self.buckets[bucket] = id;
        self.items += 1;
        let (m, _) = self.slots[id as usize].as_ref().expect("just inserted");
        for v in m.vars() {
            if self.tracked.get(v.index()).copied().unwrap_or(false) {
                self.counts[v.index()] += 1;
                self.var_index[v.index()].push(id);
            }
        }
        self.maybe_grow();
    }

    /// Removes the entry at `bucket`, freeing its slot and updating counts.
    fn remove_bucket(&mut self, bucket: usize) -> (Monomial, Int) {
        let id = self.buckets[bucket];
        self.buckets[bucket] = TOMB;
        self.items -= 1;
        self.tombs += 1;
        let (m, c) = self.slots[id as usize].take().expect("live slot");
        self.free.push(id);
        for v in m.vars() {
            if self.tracked.get(v.index()).copied().unwrap_or(false) {
                self.counts[v.index()] -= 1;
            }
        }
        (m, c)
    }

    /// Removes a live slot by id (the bucket is located by re-probing the
    /// cached hash; live slots are always in the table).
    fn remove_slot(&mut self, id: u32) -> (Monomial, Int) {
        let hash = self.slots[id as usize]
            .as_ref()
            .expect("live slot")
            .0
            .cached_hash();
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            if self.buckets[i] == id {
                return self.remove_bucket(i);
            }
            debug_assert_ne!(self.buckets[i], EMPTY, "live slot missing from table");
            i = (i + 1) & mask;
        }
    }

    fn find_bucket(&self, m: &Monomial) -> FindResult {
        let mask = self.buckets.len() - 1;
        let mut i = (m.cached_hash() as usize) & mask;
        let mut first_tomb = None;
        loop {
            match self.buckets[i] {
                EMPTY => return FindResult::Absent(first_tomb.unwrap_or(i)),
                TOMB => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                }
                id => {
                    let (sm, _) = self.slots[id as usize]
                        .as_ref()
                        .expect("bucket points at live slot");
                    if sm.cached_hash() == m.cached_hash() && sm == m {
                        return FindResult::Found(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn maybe_grow(&mut self) {
        // Keep the table at most 7/8 full counting tombstones, so probe
        // chains stay short and always terminate at an `EMPTY`.
        if (self.items + self.tombs) * 8 <= self.buckets.len() * 7 {
            return;
        }
        let new_len = (self.items * 2).next_power_of_two().max(64);
        let mut buckets = vec![EMPTY; new_len];
        let mask = new_len - 1;
        for (id, slot) in self.slots.iter().enumerate() {
            let Some((m, _)) = slot else { continue };
            let mut i = (m.cached_hash() as usize) & mask;
            while buckets[i] != EMPTY {
                i = (i + 1) & mask;
            }
            buckets[i] = id as u32;
        }
        self.buckets = buckets;
        self.tombs = 0;
    }

    /// Checks every index invariant against a from-scratch reconstruction,
    /// panicking on any violation. Test support: quadratic in the number of
    /// terms, never call it from production code.
    pub fn assert_consistent(&self) {
        let mut live = 0usize;
        let mut counts = vec![0u32; self.counts.len()];
        for (id, slot) in self.slots.iter().enumerate() {
            let Some((m, c)) = slot else { continue };
            live += 1;
            assert!(!c.is_zero(), "stored zero coefficient");
            if let Some(k) = self.modulus_bits {
                assert_eq!(*c, c.mod_pow2(k), "non-canonical coefficient");
            }
            assert!(
                self.has_tracked(m),
                "live slot holds a term with no tracked variable"
            );
            let mut indexed = false;
            for v in m.vars() {
                if self.is_tracked(v) {
                    counts[v.index()] += 1;
                    assert!(
                        self.var_index[v.index()].contains(&(id as u32)),
                        "live term missing from the index of {v:?}"
                    );
                    indexed = true;
                }
            }
            assert!(indexed);
            match self.find_bucket(m) {
                FindResult::Found(b) => assert_eq!(self.buckets[b], id as u32),
                FindResult::Absent(_) => panic!("live term unreachable through the table"),
            }
        }
        assert_eq!(live, self.items, "live-term count drifted");
        assert_eq!(counts, self.counts, "occurrence counts drifted");
        for (m, c) in &self.inert {
            assert!(!c.is_zero(), "retired zero coefficient");
            if let Some(k) = self.modulus_bits {
                assert_eq!(*c, c.mod_pow2(k), "non-canonical retired coefficient");
            }
            assert!(
                !self.has_tracked(m),
                "retired term still contains a tracked variable"
            );
        }
    }
}

enum FindResult {
    /// The monomial is present; its bucket index.
    Found(usize),
    /// The monomial is absent; the bucket where it would be inserted.
    Absent(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mono(vars: &[u32]) -> Monomial {
        Monomial::from_vars(vars.iter().map(|&v| Var(v)))
    }

    fn tracked(n: usize, which: &[u32]) -> Vec<bool> {
        let mut t = vec![false; n];
        for &v in which {
            t[v as usize] = true;
        }
        t
    }

    #[test]
    fn insert_merge_cancel_roundtrip() {
        let mut ix = IndexedPolynomial::new(tracked(4, &[2, 3]), None);
        ix.add_term(mono(&[0, 2]), Int::from(3));
        ix.add_term(mono(&[0, 2]), Int::from(-1));
        ix.add_term(mono(&[0, 1]), Int::from(5)); // no tracked var → retired
        ix.add_term(mono(&[3]), Int::from(7));
        assert_eq!(ix.live_terms(), 2);
        assert_eq!(ix.retired_terms(), 1);
        assert_eq!(ix.occurrences(Var(2)), 1);
        ix.assert_consistent();
        ix.add_term(mono(&[0, 2]), Int::from(-2)); // cancels to zero
        assert_eq!(ix.num_terms(), 2);
        ix.assert_consistent();
        let p = ix.into_polynomial();
        assert_eq!(p.coeff(&mono(&[0, 1])), Int::from(5));
        assert_eq!(p.coeff(&mono(&[3])), Int::from(7));
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn extract_drains_exactly_the_affected_terms() {
        let mut ix = IndexedPolynomial::new(tracked(5, &[3, 4]), None);
        ix.add_term(mono(&[0, 3]), Int::from(1));
        ix.add_term(mono(&[1, 3, 4]), Int::from(2));
        ix.add_term(mono(&[4]), Int::from(3));
        let mut got = ix.extract_terms_containing(Var(3));
        got.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            got,
            vec![
                (mono(&[0, 3]), Int::from(1)),
                (mono(&[1, 3, 4]), Int::from(2)),
            ]
        );
        assert_eq!(ix.index_hits(), 2);
        assert_eq!(ix.occurrences(Var(4)), 1);
        assert_eq!(ix.num_terms(), 1);
        ix.assert_consistent();
        // The drained index stays empty until new terms arrive.
        assert!(ix.extract_terms_containing(Var(3)).is_empty());
    }

    #[test]
    fn stale_handles_from_slot_reuse_are_skipped() {
        let mut ix = IndexedPolynomial::new(tracked(4, &[1, 2]), None);
        ix.add_term(mono(&[1]), Int::from(1));
        ix.add_term(mono(&[1]), Int::from(-1)); // frees the slot
                                                // Reuses the freed slot: var 1's list still holds the stale handle,
                                                // now pointing at a live slot whose monomial does not contain var 1.
        ix.add_term(mono(&[2]), Int::from(1));
        assert!(ix.extract_terms_containing(Var(1)).is_empty());
        assert_eq!(ix.num_terms(), 1);
        ix.assert_consistent();
    }

    #[test]
    fn modulus_cancels_terms_at_insert() {
        let mut ix = IndexedPolynomial::new(tracked(3, &[0]), Some(3));
        ix.add_term(mono(&[0]), Int::from(5));
        ix.add_term(mono(&[0]), Int::from(3)); // 5 + 3 = 8 ≡ 0 (mod 8)
        assert!(ix.is_zero());
        ix.add_term(mono(&[0, 1]), Int::from(-1)); // canonicalized to 7
        ix.add_term(mono(&[1]), Int::from(16)); // retired path: ≡ 0, dropped
        assert_eq!(ix.num_terms(), 1);
        let p = ix.into_polynomial();
        assert_eq!(p.coeff(&mono(&[0, 1])), Int::from(7));
        // Retired-path merge to zero.
        let mut ix = IndexedPolynomial::new(tracked(3, &[0]), Some(3));
        ix.add_term(mono(&[1]), Int::from(3));
        ix.add_term(mono(&[1]), Int::from(5));
        assert!(ix.is_zero());
        ix.assert_consistent();
    }

    proptest! {
        /// The inverted index stays consistent with a from-scratch rebuild
        /// (a plain `Polynomial`) under arbitrary interleavings of
        /// `add_term`, `extract_terms_containing`, and coefficient
        /// cancellation to zero — with and without a coefficient modulus.
        #[test]
        fn index_matches_scratch_rebuild_under_interleavings(
            ops in proptest::collection::vec(
                (0u32..8, proptest::collection::vec(0u32..5, 0..4), -4i64..5),
                1..40,
            ),
            modulus_k in 0u32..4,
        ) {
            for modulus in [None, Some(modulus_k + 1)] {
                let mut ix = IndexedPolynomial::new(tracked(5, &[0, 1, 2]), modulus);
                let mut reference = Polynomial::zero();
                for (sel, vars, c) in &ops {
                    if *sel < 6 {
                        let m = Monomial::from_vars(vars.iter().map(|&v| Var(v)));
                        ix.add_term(m.clone(), Int::from(*c));
                        reference.add_term(m, Int::from(*c));
                    } else {
                        // Extraction is only defined for tracked variables.
                        let v = Var(vars.first().copied().unwrap_or(*sel - 6).min(2));
                        let mut got = ix.extract_terms_containing(v);
                        // The reference stores exact coefficients; terms
                        // whose coefficient is a multiple of the modulus
                        // are absent from the indexed store by invariant.
                        let mut want: Vec<(Monomial, Int)> = reference
                            .extract_terms_containing(v)
                            .into_iter()
                            .filter(|(_, c)| match modulus {
                                Some(k) => !c.is_multiple_of_pow2(k),
                                None => true,
                            })
                            .collect();
                        got.sort_by(|a, b| a.0.cmp(&b.0));
                        want.sort_by(|a, b| a.0.cmp(&b.0));
                        prop_assert_eq!(got.len(), want.len());
                        for ((gm, gc), (wm, wc)) in got.iter().zip(&want) {
                            prop_assert_eq!(gm, wm);
                            match modulus {
                                Some(k) => prop_assert_eq!(gc.clone(), wc.mod_pow2(k)),
                                None => prop_assert_eq!(gc, wc),
                            }
                        }
                    }
                    ix.assert_consistent();
                }
                let canonical = match modulus {
                    Some(k) => reference.mod_coeffs_pow2(k),
                    None => reference.clone(),
                };
                prop_assert_eq!(ix.into_polynomial(), canonical);
            }
        }
    }

    #[test]
    fn track_var_promotes_retired_terms_and_indexes_live_ones() {
        let mut ix = IndexedPolynomial::new(tracked(2, &[0]), None);
        ix.add_term(mono(&[1, 2]), Int::from(4)); // no tracked var → retired
        ix.add_term(mono(&[0, 2]), Int::from(2)); // live under var 0
        assert_eq!(ix.retired_terms(), 1);
        // Var 2 lies beyond the original tracked-array length: the arrays
        // must grow, the live term must be indexed, the retired one promoted.
        ix.track_var(Var(2));
        assert_eq!(ix.retired_terms(), 0);
        assert_eq!(ix.occurrences(Var(2)), 2);
        ix.assert_consistent();
        ix.track_var(Var(2)); // idempotent
        assert_eq!(ix.occurrences(Var(2)), 2);
        ix.assert_consistent();
        let mut got = ix.extract_terms_containing(Var(2));
        got.sort_by(|a, b| a.0.cmp(&b.0));
        let mut want = vec![(mono(&[0, 2]), Int::from(2)), (mono(&[1, 2]), Int::from(4))];
        want.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got, want);
        assert!(ix.is_zero());
    }

    #[test]
    fn untracked_variable_extracts_nothing() {
        let mut ix = IndexedPolynomial::new(tracked(2, &[0]), None);
        ix.add_term(mono(&[0, 1]), Int::from(1));
        assert!(ix.extract_terms_containing(Var(1)).is_empty());
        assert!(ix
            .extract_terms_containing_any(&[Var(1), Var(7)])
            .is_empty());
        assert_eq!(ix.num_terms(), 1);
        ix.assert_consistent();
    }

    #[test]
    fn multi_var_extraction_returns_each_term_once() {
        let mut ix = IndexedPolynomial::new(tracked(3, &[0, 1]), None);
        ix.add_term(mono(&[0, 1]), Int::from(1)); // contains both fronts
        ix.add_term(mono(&[0]), Int::from(2));
        ix.add_term(mono(&[1]), Int::from(3));
        ix.add_term(mono(&[2]), Int::from(4)); // retired, untouched
        let got = ix.extract_terms_containing_any(&[Var(0), Var(1)]);
        assert_eq!(got.len(), 3, "the shared term must be drained exactly once");
        assert_eq!(ix.index_hits(), 3);
        assert_eq!(ix.num_terms(), 1);
        ix.assert_consistent();
    }

    #[test]
    fn retain_terms_sweeps_live_and_retired_sides() {
        let mut ix = IndexedPolynomial::new(tracked(3, &[0]), None);
        ix.add_term(mono(&[0, 1]), Int::from(1));
        ix.add_term(mono(&[0, 2]), Int::from(2));
        ix.add_term(mono(&[1]), Int::from(3)); // retired
        ix.add_term(mono(&[2]), Int::from(4)); // retired
        let removed = ix.retain_terms(|m| !m.contains(Var(1)));
        assert_eq!(removed, 2, "one live and one retired term contain var 1");
        assert_eq!(ix.num_terms(), 2);
        assert_eq!(ix.occurrences(Var(0)), 1);
        ix.assert_consistent();
    }

    proptest! {
        /// The rewrite-oriented ops — tracked-set growth ([`IndexedPolynomial::track_var`]),
        /// multi-variable extraction, and the `retain_terms` sweep — stay
        /// consistent with a from-scratch rebuild (and with a naive scan of
        /// a plain `Polynomial`) under arbitrary interleavings, with and
        /// without a coefficient modulus.
        #[test]
        fn rewrite_ops_match_scratch_rebuild_under_interleavings(
            ops in proptest::collection::vec(
                (0u32..10, proptest::collection::vec(0u32..6, 0..4), -4i64..5),
                1..50,
            ),
            modulus_k in 0u32..4,
        ) {
            for modulus in [None, Some(modulus_k + 1)] {
                // Variables 0 and 1 start tracked; 2..6 appear later through
                // `track_var`, exercising array growth and inert promotion.
                let mut ix = IndexedPolynomial::new(tracked(2, &[0, 1]), modulus);
                let mut now_tracked: Vec<u32> = vec![0, 1];
                let mut reference = Polynomial::zero();
                for (sel, vars, c) in &ops {
                    match sel {
                        0..=5 => {
                            let m = Monomial::from_vars(vars.iter().map(|&v| Var(v)));
                            ix.add_term(m.clone(), Int::from(*c));
                            reference.add_term(m, Int::from(*c));
                        }
                        6 => {
                            let v = vars.first().copied().unwrap_or(2) % 6;
                            ix.track_var(Var(v));
                            if !now_tracked.contains(&v) {
                                now_tracked.push(v);
                            }
                        }
                        7 => {
                            // Vanishing-style sweep: drop every monomial
                            // containing a chosen variable, on both sides.
                            let r = Var(vars.first().copied().unwrap_or(0) % 6);
                            ix.retain_terms(|m| !m.contains(r));
                            reference.retain_terms(|m| !m.contains(r));
                        }
                        _ => {
                            // Multi-variable extraction over the currently
                            // tracked subset, against a naive per-var scan.
                            let sel_vars: Vec<Var> = vars
                                .iter()
                                .map(|&v| Var(v % 6))
                                .filter(|v| now_tracked.contains(&v.0))
                                .collect();
                            let mut got = ix.extract_terms_containing_any(&sel_vars);
                            let mut want: Vec<(Monomial, Int)> = sel_vars
                                .iter()
                                .flat_map(|&v| reference.extract_terms_containing(v))
                                .filter(|(_, c)| match modulus {
                                    Some(k) => !c.is_multiple_of_pow2(k),
                                    None => true,
                                })
                                .collect();
                            got.sort_by(|a, b| a.0.cmp(&b.0));
                            want.sort_by(|a, b| a.0.cmp(&b.0));
                            prop_assert_eq!(got.len(), want.len());
                            for ((gm, gc), (wm, wc)) in got.iter().zip(&want) {
                                prop_assert_eq!(gm, wm);
                                match modulus {
                                    Some(k) => prop_assert_eq!(gc.clone(), wc.mod_pow2(k)),
                                    None => prop_assert_eq!(gc, wc),
                                }
                            }
                        }
                    }
                    ix.assert_consistent();
                }
                let canonical = match modulus {
                    Some(k) => reference.mod_coeffs_pow2(k),
                    None => reference.clone(),
                };
                prop_assert_eq!(ix.into_polynomial(), canonical);
            }
        }
    }

    #[test]
    fn growth_rehashes_all_live_terms() {
        let mut ix = IndexedPolynomial::new(tracked(512, &[0]), None);
        for v in 1..400u32 {
            ix.add_term(mono(&[0, v]), Int::from(v as i64));
        }
        assert_eq!(ix.live_terms(), 399);
        ix.assert_consistent();
        let got = ix.extract_terms_containing(Var(0));
        assert_eq!(got.len(), 399);
        assert!(ix.is_zero());
    }
}
