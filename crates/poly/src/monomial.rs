use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A polynomial variable, identified by a dense index.
///
/// The verifier assigns one variable per circuit net; the index has no
/// intrinsic meaning beyond identity. Ordering of variables (for leading
/// terms and substitution) is defined externally by the circuit's reverse
/// topological order, not by the numeric value of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Returns the variable index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Number of variables a [`Monomial`] stores inline before spilling to the
/// heap. Reduction intermediates of the width-8 benchmarks reach degree
/// ~2·width, so the capacity covers them: the expansion inner loop of the
/// (parallel) reduction engines creates tens of millions of product
/// monomials per run, and spilling them would cost a heap allocation and a
/// pointer chase per hash-map equality check each.
pub const INLINE_VARS: usize = 16;

/// The variable storage of a monomial: inline up to [`INLINE_VARS`]
/// variables, heap vector beyond.
#[derive(Debug, Clone)]
enum VarsRepr {
    Inline { len: u8, vars: [u32; INLINE_VARS] },
    Spilled(Vec<u32>),
}

/// A multilinear monomial: a product of distinct variables.
///
/// Because every circuit variable is Boolean (`x^2 = x`), exponents never
/// exceed one and a monomial is simply a set of variables. The empty monomial
/// is the constant `1`. Variables are stored sorted by index so that equal
/// monomials have equal representations.
///
/// Two representation-level optimizations make monomials cheap in the
/// reduction inner loop:
///
/// * **Inline capacity** — up to [`INLINE_VARS`] variables are stored inline
///   (no heap allocation); only rare high-degree monomials spill to a `Vec`.
/// * **Cached hash** — the hash of the variable list is computed once at
///   construction, so hash-map probes during [`crate::Polynomial`] term
///   insertion cost a single `u64` mix instead of rehashing the list.
///
/// # Example
///
/// ```
/// use gbmv_poly::{Monomial, Var};
///
/// let ab = Monomial::from_vars(vec![Var(1), Var(0), Var(1)]);
/// assert_eq!(ab.degree(), 2);                       // x^2 reduced to x
/// let abc = ab.mul(&Monomial::from_vars(vec![Var(2)]));
/// assert!(abc.contains(Var(0)) && abc.contains(Var(2)));
/// assert_eq!(ab.without(Var(1)).degree(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Monomial {
    /// Cached hash of the sorted variable list (see [`hash_vars`]).
    hash: u64,
    vars: VarsRepr,
}

/// Multiply-rotate mix of the sorted variable list, cached per monomial.
#[inline]
fn hash_vars(vars: &[u32]) -> u64 {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = vars.len() as u64 ^ SEED;
    for &v in vars {
        h = (h.rotate_left(5) ^ v as u64).wrapping_mul(SEED);
    }
    h
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial::from_sorted_slice(&[])
    }

    /// A monomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Monomial::from_sorted_slice(&[v.0])
    }

    /// Builds a monomial from a list of variables. Duplicates are collapsed
    /// (Boolean domain: `x^2 = x`).
    pub fn from_vars(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut vs: Vec<u32> = vars.into_iter().map(|v| v.0).collect();
        vs.sort_unstable();
        vs.dedup();
        Monomial::from_sorted_vec(vs)
    }

    /// Builds a monomial from an already sorted, duplicate-free slice.
    #[inline]
    fn from_sorted_slice(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let vars = if sorted.len() <= INLINE_VARS {
            let mut inline = [0u32; INLINE_VARS];
            inline[..sorted.len()].copy_from_slice(sorted);
            VarsRepr::Inline {
                len: sorted.len() as u8,
                vars: inline,
            }
        } else {
            VarsRepr::Spilled(sorted.to_vec())
        };
        Monomial {
            hash: hash_vars(sorted),
            vars,
        }
    }

    /// Like [`Monomial::from_sorted_slice`] but reuses an existing vector for
    /// the spilled case.
    #[inline]
    fn from_sorted_vec(sorted: Vec<u32>) -> Self {
        if sorted.len() <= INLINE_VARS {
            Monomial::from_sorted_slice(&sorted)
        } else {
            Monomial {
                hash: hash_vars(&sorted),
                vars: VarsRepr::Spilled(sorted),
            }
        }
    }

    /// The sorted variable indices.
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match &self.vars {
            VarsRepr::Inline { len, vars } => &vars[..*len as usize],
            VarsRepr::Spilled(vec) => vec,
        }
    }

    /// Returns `true` if this is the constant monomial `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.degree() == 0
    }

    /// The number of distinct variables (total degree in the Boolean domain).
    #[inline]
    pub fn degree(&self) -> usize {
        match &self.vars {
            VarsRepr::Inline { len, .. } => *len as usize,
            VarsRepr::Spilled(vec) => vec.len(),
        }
    }

    /// Returns `true` if the monomial spilled to the heap (degree above
    /// [`INLINE_VARS`]); exposed for tests and statistics.
    pub fn is_spilled(&self) -> bool {
        matches!(self.vars, VarsRepr::Spilled(_))
    }

    /// The cached hash of the variable list.
    #[inline]
    pub fn cached_hash(&self) -> u64 {
        self.hash
    }

    /// Iterates over the variables in ascending index order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.as_slice().iter().map(|&v| Var(v))
    }

    /// Returns `true` if the monomial contains `v`.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.as_slice().binary_search(&v.0).is_ok()
    }

    /// Multiplies two monomials (set union, Boolean reduction applied).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        if self.is_one() {
            return other.clone();
        }
        if other.is_one() {
            return self.clone();
        }
        let a = self.as_slice();
        let b = other.as_slice();
        // Merge into a stack buffer when the union can possibly stay small;
        // this covers almost all reduction-time products without allocating.
        if a.len() + b.len() <= MERGE_BUF {
            let mut buf = [0u32; MERGE_BUF];
            let n = merge_sorted(a, b, &mut buf);
            Monomial::from_sorted_slice(&buf[..n])
        } else {
            let mut out = Vec::with_capacity(a.len() + b.len());
            merge_sorted_into_vec(a, b, &mut out);
            Monomial::from_sorted_vec(out)
        }
    }

    /// Returns the monomial with `v` removed (identity if `v` is absent).
    pub fn without(&self, v: Var) -> Monomial {
        let s = self.as_slice();
        match s.binary_search(&v.0) {
            Ok(pos) => {
                if s.len() - 1 <= INLINE_VARS {
                    let mut buf = [0u32; INLINE_VARS];
                    buf[..pos].copy_from_slice(&s[..pos]);
                    buf[pos..s.len() - 1].copy_from_slice(&s[pos + 1..]);
                    Monomial::from_sorted_slice(&buf[..s.len() - 1])
                } else {
                    let mut vars = Vec::with_capacity(s.len() - 1);
                    vars.extend_from_slice(&s[..pos]);
                    vars.extend_from_slice(&s[pos + 1..]);
                    Monomial::from_sorted_vec(vars)
                }
            }
            Err(_) => self.clone(),
        }
    }

    /// Returns `true` if `self` divides `other` (subset of variables).
    pub fn divides(&self, other: &Monomial) -> bool {
        let a = self.as_slice();
        let b = other.as_slice();
        if a.len() > b.len() {
            return false;
        }
        let mut j = 0;
        for &v in a {
            loop {
                if j >= b.len() {
                    return false;
                }
                match b[j].cmp(&v) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// Evaluates the monomial over a Boolean assignment.
    pub fn eval_bool(&self, assignment: &impl Fn(Var) -> bool) -> bool {
        self.as_slice().iter().all(|&v| assignment(Var(v)))
    }

    /// Renders the monomial with a custom variable naming function.
    pub fn display_with<F: Fn(Var) -> String>(&self, namer: F) -> String {
        if self.is_one() {
            "1".to_string()
        } else {
            self.as_slice()
                .iter()
                .map(|&v| namer(Var(v)))
                .collect::<Vec<_>>()
                .join("*")
        }
    }
}

/// Stack-buffer size for [`Monomial::mul`] merges; covers two inline-capacity
/// factors so in-cache products never allocate.
const MERGE_BUF: usize = 2 * INLINE_VARS;

/// Merges two sorted duplicate-free slices into `out`, dropping duplicates
/// across the inputs; returns the merged length. `out` must have room for
/// `a.len() + b.len()` entries.
#[inline]
fn merge_sorted(a: &[u32], b: &[u32], out: &mut [u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        out[n] = x.min(y);
        n += 1;
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    out[n..n + a.len() - i].copy_from_slice(&a[i..]);
    n += a.len() - i;
    out[n..n + b.len() - j].copy_from_slice(&b[j..]);
    n += b.len() - j;
    n
}

/// [`merge_sorted`] into a vector, for unions past the stack buffer.
fn merge_sorted_into_vec(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        out.push(x.min(y));
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

impl PartialEq for Monomial {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.as_slice() == other.as_slice()
    }
}

impl Eq for Monomial {}

impl Hash for Monomial {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// Lexicographic on the sorted variable list, matching the ordering of
    /// the previous `Vec<u32>`-based representation (display rendering relies
    /// on it).
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Default for Monomial {
    fn default() -> Self {
        Monomial::one()
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(|v| v.to_string()))
    }
}

impl FromIterator<Var> for Monomial {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        Monomial::from_vars(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_dedup() {
        let m = Monomial::from_vars(vec![Var(3), Var(1), Var(3)]);
        assert_eq!(m.degree(), 2);
        assert!(m.contains(Var(1)));
        assert!(m.contains(Var(3)));
        assert!(!m.contains(Var(2)));
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::var(Var(7)).degree(), 1);
    }

    #[test]
    fn inline_and_spilled_representations_agree() {
        let inline = Monomial::from_vars((0..INLINE_VARS as u32).map(Var));
        assert!(!inline.is_spilled());
        let spilled = Monomial::from_vars((0..INLINE_VARS as u32 + 1).map(Var));
        assert!(spilled.is_spilled());
        // Shrinking a spilled monomial below the inline capacity collapses it
        // back, and the two construction paths agree on hash and equality.
        let back = spilled.without(Var(0));
        assert!(!back.is_spilled());
        let direct = Monomial::from_vars((1..INLINE_VARS as u32 + 1).map(Var));
        assert_eq!(back, direct);
        assert_eq!(back.cached_hash(), direct.cached_hash());
    }

    #[test]
    fn cached_hash_is_stable_across_paths() {
        let a = Monomial::from_vars(vec![Var(0), Var(2)]);
        let b = Monomial::var(Var(2)).mul(&Monomial::var(Var(0)));
        assert_eq!(a, b);
        assert_eq!(a.cached_hash(), b.cached_hash());
        // Degree is mixed in, so a prefix does not collide with the whole.
        let prefix = Monomial::var(Var(0));
        assert_ne!(a.cached_hash(), prefix.cached_hash());
    }

    #[test]
    fn mul_is_union() {
        let a = Monomial::from_vars(vec![Var(0), Var(2)]);
        let b = Monomial::from_vars(vec![Var(1), Var(2)]);
        let ab = a.mul(&b);
        assert_eq!(ab, Monomial::from_vars(vec![Var(0), Var(1), Var(2)]));
        assert_eq!(a.mul(&Monomial::one()), a);
        assert_eq!(Monomial::one().mul(&b), b);
    }

    #[test]
    fn mul_across_the_inline_boundary() {
        let n = INLINE_VARS as u32;
        let lo = Monomial::from_vars((0..n / 2).map(Var));
        let hi = Monomial::from_vars((n / 2 - 1..n + 1).map(Var));
        let u = lo.mul(&hi);
        assert_eq!(u, Monomial::from_vars((0..n + 1).map(Var)));
        assert!(u.is_spilled());
        // Large unions (past the merge stack buffer) still work.
        let big_a = Monomial::from_vars((0..3 * n).map(|i| Var(2 * i)));
        let big_b = Monomial::from_vars((0..3 * n).map(|i| Var(2 * i + 1)));
        let big = big_a.mul(&big_b);
        assert_eq!(big.degree(), 6 * INLINE_VARS);
        assert_eq!(big, Monomial::from_vars((0..6 * n).map(Var)));
    }

    #[test]
    fn without_and_divides() {
        let abc = Monomial::from_vars(vec![Var(0), Var(1), Var(2)]);
        let ac = abc.without(Var(1));
        assert_eq!(ac, Monomial::from_vars(vec![Var(0), Var(2)]));
        assert!(ac.divides(&abc));
        assert!(!abc.divides(&ac));
        assert!(Monomial::one().divides(&abc));
        assert_eq!(abc.without(Var(9)), abc);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::one().to_string(), "1");
        let m = Monomial::from_vars(vec![Var(2), Var(0)]);
        assert_eq!(m.to_string(), "x0*x2");
        assert_eq!(m.display_with(|v| format!("s{}", v.0)), "s0*s2");
    }

    #[test]
    fn eval_bool() {
        let m = Monomial::from_vars(vec![Var(0), Var(1)]);
        assert!(m.eval_bool(&|_| true));
        assert!(!m.eval_bool(&|v| v == Var(0)));
        assert!(Monomial::one().eval_bool(&|_| false));
    }

    proptest! {
        #[test]
        fn mul_commutative_idempotent(a in proptest::collection::vec(0u32..16, 0..6),
                                      b in proptest::collection::vec(0u32..16, 0..6)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            prop_assert_eq!(ma.mul(&mb), mb.mul(&ma));
            prop_assert_eq!(ma.mul(&ma), ma.clone());
            prop_assert!(ma.divides(&ma.mul(&mb)));
        }

        #[test]
        fn divides_iff_subset(a in proptest::collection::vec(0u32..10, 0..5),
                              b in proptest::collection::vec(0u32..10, 0..5)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            let subset = ma.vars().all(|v| mb.contains(v));
            prop_assert_eq!(ma.divides(&mb), subset);
        }

        #[test]
        fn equal_monomials_have_equal_hashes(a in proptest::collection::vec(0u32..12, 0..8),
                                             b in proptest::collection::vec(0u32..12, 0..8)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            if ma == mb {
                prop_assert_eq!(ma.cached_hash(), mb.cached_hash());
            }
            // Products recompute the cache consistently.
            let prod = ma.mul(&mb);
            let direct = Monomial::from_vars(a.iter().chain(b.iter()).map(|&v| Var(v)));
            prop_assert_eq!(prod.cached_hash(), direct.cached_hash());
            prop_assert_eq!(prod, direct);
        }

        #[test]
        fn ordering_matches_slice_ordering(a in proptest::collection::vec(0u32..10, 0..6),
                                           b in proptest::collection::vec(0u32..10, 0..6)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            let mut sa: Vec<u32> = a.clone(); sa.sort_unstable(); sa.dedup();
            let mut sb: Vec<u32> = b.clone(); sb.sort_unstable(); sb.dedup();
            prop_assert_eq!(ma.cmp(&mb), sa.cmp(&sb));
        }
    }
}
