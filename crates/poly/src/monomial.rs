use std::fmt;

/// A polynomial variable, identified by a dense index.
///
/// The verifier assigns one variable per circuit net; the index has no
/// intrinsic meaning beyond identity. Ordering of variables (for leading
/// terms and substitution) is defined externally by the circuit's reverse
/// topological order, not by the numeric value of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Returns the variable index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A multilinear monomial: a product of distinct variables.
///
/// Because every circuit variable is Boolean (`x^2 = x`), exponents never
/// exceed one and a monomial is simply a set of variables. The empty monomial
/// is the constant `1`. Variables are stored sorted by index so that equal
/// monomials have equal representations (required for hashing).
///
/// # Example
///
/// ```
/// use gbmv_poly::{Monomial, Var};
///
/// let ab = Monomial::from_vars(vec![Var(1), Var(0), Var(1)]);
/// assert_eq!(ab.degree(), 2);                       // x^2 reduced to x
/// let abc = ab.mul(&Monomial::from_vars(vec![Var(2)]));
/// assert!(abc.contains(Var(0)) && abc.contains(Var(2)));
/// assert_eq!(ab.without(Var(1)).degree(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial {
    vars: Vec<u32>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial::default()
    }

    /// A monomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Monomial { vars: vec![v.0] }
    }

    /// Builds a monomial from a list of variables. Duplicates are collapsed
    /// (Boolean domain: `x^2 = x`).
    pub fn from_vars(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut vs: Vec<u32> = vars.into_iter().map(|v| v.0).collect();
        vs.sort_unstable();
        vs.dedup();
        Monomial { vars: vs }
    }

    /// Returns `true` if this is the constant monomial `1`.
    pub fn is_one(&self) -> bool {
        self.vars.is_empty()
    }

    /// The number of distinct variables (total degree in the Boolean domain).
    pub fn degree(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over the variables in ascending index order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().map(|&v| Var(v))
    }

    /// Returns `true` if the monomial contains `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v.0).is_ok()
    }

    /// Multiplies two monomials (set union, Boolean reduction applied).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        if self.is_one() {
            return other.clone();
        }
        if other.is_one() {
            return self.clone();
        }
        let mut vars = Vec::with_capacity(self.vars.len() + other.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    vars.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    vars.push(other.vars[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    vars.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        vars.extend_from_slice(&self.vars[i..]);
        vars.extend_from_slice(&other.vars[j..]);
        Monomial { vars }
    }

    /// Returns the monomial with `v` removed (identity if `v` is absent).
    pub fn without(&self, v: Var) -> Monomial {
        match self.vars.binary_search(&v.0) {
            Ok(pos) => {
                let mut vars = self.vars.clone();
                vars.remove(pos);
                Monomial { vars }
            }
            Err(_) => self.clone(),
        }
    }

    /// Returns `true` if `self` divides `other` (subset of variables).
    pub fn divides(&self, other: &Monomial) -> bool {
        if self.vars.len() > other.vars.len() {
            return false;
        }
        let mut j = 0;
        for &v in &self.vars {
            loop {
                if j >= other.vars.len() {
                    return false;
                }
                match other.vars[j].cmp(&v) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// Evaluates the monomial over a Boolean assignment.
    pub fn eval_bool(&self, assignment: &impl Fn(Var) -> bool) -> bool {
        self.vars.iter().all(|&v| assignment(Var(v)))
    }

    /// Renders the monomial with a custom variable naming function.
    pub fn display_with<F: Fn(Var) -> String>(&self, namer: F) -> String {
        if self.is_one() {
            "1".to_string()
        } else {
            self.vars
                .iter()
                .map(|&v| namer(Var(v)))
                .collect::<Vec<_>>()
                .join("*")
        }
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(|v| v.to_string()))
    }
}

impl FromIterator<Var> for Monomial {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        Monomial::from_vars(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_dedup() {
        let m = Monomial::from_vars(vec![Var(3), Var(1), Var(3)]);
        assert_eq!(m.degree(), 2);
        assert!(m.contains(Var(1)));
        assert!(m.contains(Var(3)));
        assert!(!m.contains(Var(2)));
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::var(Var(7)).degree(), 1);
    }

    #[test]
    fn mul_is_union() {
        let a = Monomial::from_vars(vec![Var(0), Var(2)]);
        let b = Monomial::from_vars(vec![Var(1), Var(2)]);
        let ab = a.mul(&b);
        assert_eq!(ab, Monomial::from_vars(vec![Var(0), Var(1), Var(2)]));
        assert_eq!(a.mul(&Monomial::one()), a);
        assert_eq!(Monomial::one().mul(&b), b);
    }

    #[test]
    fn without_and_divides() {
        let abc = Monomial::from_vars(vec![Var(0), Var(1), Var(2)]);
        let ac = abc.without(Var(1));
        assert_eq!(ac, Monomial::from_vars(vec![Var(0), Var(2)]));
        assert!(ac.divides(&abc));
        assert!(!abc.divides(&ac));
        assert!(Monomial::one().divides(&abc));
        assert_eq!(abc.without(Var(9)), abc);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::one().to_string(), "1");
        let m = Monomial::from_vars(vec![Var(2), Var(0)]);
        assert_eq!(m.to_string(), "x0*x2");
        assert_eq!(m.display_with(|v| format!("s{}", v.0)), "s0*s2");
    }

    #[test]
    fn eval_bool() {
        let m = Monomial::from_vars(vec![Var(0), Var(1)]);
        assert!(m.eval_bool(&|_| true));
        assert!(!m.eval_bool(&|v| v == Var(0)));
        assert!(Monomial::one().eval_bool(&|_| false));
    }

    proptest! {
        #[test]
        fn mul_commutative_idempotent(a in proptest::collection::vec(0u32..16, 0..6),
                                      b in proptest::collection::vec(0u32..16, 0..6)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            prop_assert_eq!(ma.mul(&mb), mb.mul(&ma));
            prop_assert_eq!(ma.mul(&ma), ma.clone());
            prop_assert!(ma.divides(&ma.mul(&mb)));
        }

        #[test]
        fn divides_iff_subset(a in proptest::collection::vec(0u32..10, 0..5),
                              b in proptest::collection::vec(0u32..10, 0..5)) {
            let ma = Monomial::from_vars(a.iter().map(|&v| Var(v)));
            let mb = Monomial::from_vars(b.iter().map(|&v| Var(v)));
            let subset = ma.vars().all(|v| mb.contains(v));
            prop_assert_eq!(ma.divides(&mb), subset);
        }
    }
}
