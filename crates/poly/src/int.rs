use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A signed arbitrary-precision integer.
///
/// The representation is sign-magnitude with base-2^64 limbs stored least
/// significant first. Zero is represented by an empty limb vector and a
/// non-negative sign, so every value has exactly one representation.
///
/// Only the operations required by the verifier are provided; this is not a
/// general purpose bignum library. All operations are exact.
///
/// # Example
///
/// ```
/// use gbmv_poly::Int;
///
/// let a = Int::pow2(130);            // 2^130 does not fit in u128
/// let b = &a * &Int::from(-3);
/// assert_eq!(&a + &b, -(&a + &a));   // a - 3a = -2a
/// assert!(b.is_negative());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    negative: bool,
    /// Base-2^64 magnitude, least significant limb first, no trailing zeros.
    limbs: Vec<u64>,
}

impl Int {
    /// The value zero.
    pub fn zero() -> Self {
        Int::default()
    }

    /// The value one.
    pub fn one() -> Self {
        Int::from(1)
    }

    /// `2^k`.
    pub fn pow2(k: u32) -> Self {
        let limb = (k / 64) as usize;
        let bit = k % 64;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << bit;
        Int {
            negative: false,
            limbs,
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        !self.negative && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is divisible by `2^k` (zero counts as
    /// divisible). This implements the `mod 2^(2n)` reduction of the
    /// multiplier specification: terms whose coefficient is a multiple of
    /// `2^(2n)` are dropped.
    pub fn is_multiple_of_pow2(&self, k: u32) -> bool {
        if self.is_zero() {
            return true;
        }
        let whole = (k / 64) as usize;
        let rest = k % 64;
        if self.limbs.len() < whole + usize::from(rest > 0) {
            // Fewer significant bits than k and non-zero -> not divisible,
            // unless all low limbs are zero and rest == 0 handled below.
            if self.limbs.len() <= whole {
                // |x| < 2^(64*whole) <= 2^k, and x != 0.
                return false;
            }
        }
        for i in 0..whole.min(self.limbs.len()) {
            if self.limbs[i] != 0 {
                return false;
            }
        }
        if rest > 0 {
            let limb = self.limbs.get(whole).copied().unwrap_or(0);
            if limb & ((1u64 << rest) - 1) != 0 {
                return false;
            }
        }
        true
    }

    /// Reduces the value modulo `2^k` into the canonical range `[0, 2^k)`.
    pub fn mod_pow2(&self, k: u32) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        // magnitude mod 2^k
        let whole = (k / 64) as usize;
        let rest = k % 64;
        let mut limbs: Vec<u64> = self.limbs.iter().copied().take(whole + 1).collect();
        while limbs.len() < whole + 1 {
            limbs.push(0);
        }
        if rest == 0 {
            limbs.truncate(whole);
        } else {
            limbs.truncate(whole + 1);
            limbs[whole] &= (1u64 << rest) - 1;
        }
        let mag = Int {
            negative: false,
            limbs,
        }
        .normalized();
        if !self.negative || mag.is_zero() {
            mag
        } else {
            // (-m) mod 2^k = 2^k - (m mod 2^k)
            &Int::pow2(k) - &mag
        }
    }

    /// The number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 2 {
            return None;
        }
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        let mag = (hi << 64) | lo;
        if self.negative {
            if mag > (1u128 << 127) {
                None
            } else if mag == 1u128 << 127 {
                Some(i128::MIN)
            } else {
                Some(-(mag as i128))
            }
        } else if mag > i128::MAX as u128 {
            None
        } else {
            Some(mag as i128)
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> Int {
        Int {
            negative: false,
            limbs: self.limbs.clone(),
        }
    }

    fn normalized(mut self) -> Self {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        if self.limbs.is_empty() {
            self.negative = false;
        }
        self
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let x = a.get(i).copied().unwrap_or(0) as u128;
            let y = b.get(i).copied().unwrap_or(0) as u128;
            let sum = x + y + carry as u128;
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Computes `a - b` assuming `|a| >= |b|`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let x = a[i] as u128;
            let y = b.get(i).copied().unwrap_or(0) as u128 + borrow as u128;
            if x >= y {
                out.push((x - y) as u64);
                borrow = 0;
            } else {
                out.push(((1u128 << 64) + x - y) as u64);
                borrow = 1;
            }
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn add_signed(&self, other: &Int) -> Int {
        if self.negative == other.negative {
            Int {
                negative: self.negative,
                limbs: Int::add_mag(&self.limbs, &other.limbs),
            }
            .normalized()
        } else {
            match Int::cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int {
                    negative: self.negative,
                    limbs: Int::sub_mag(&self.limbs, &other.limbs),
                }
                .normalized(),
                Ordering::Less => Int {
                    negative: other.negative,
                    limbs: Int::sub_mag(&other.limbs, &self.limbs),
                }
                .normalized(),
            }
        }
    }

    fn mul_signed(&self, other: &Int) -> Int {
        Int {
            negative: self.negative != other.negative,
            limbs: Int::mul_mag(&self.limbs, &other.limbs),
        }
        .normalized()
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v == 0 {
            Int::zero()
        } else {
            Int {
                negative: v < 0,
                limbs: vec![v.unsigned_abs()],
            }
        }
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        if v == 0 {
            return Int::zero();
        }
        let mag = v.unsigned_abs();
        let lo = mag as u64;
        let hi = (mag >> 64) as u64;
        let limbs = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        Int {
            negative: v < 0,
            limbs,
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        if v == 0 {
            Int::zero()
        } else {
            Int {
                negative: false,
                limbs: vec![v],
            }
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Int::cmp_mag(&self.limbs, &other.limbs),
            (true, true) => Int::cmp_mag(&other.limbs, &self.limbs),
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        if self.is_zero() {
            Int::zero()
        } else {
            Int {
                negative: !self.negative,
                limbs: self.limbs.clone(),
            }
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        -&self
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        self.add_signed(rhs)
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self.add_signed(&-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        self.mul_signed(rhs)
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten below 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut limbs = self.limbs.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !limbs.is_empty() {
            let mut rem: u128 = 0;
            for limb in limbs.iter_mut().rev() {
                let cur = (rem << 64) | *limb as u128;
                *limb = (cur / CHUNK as u128) as u64;
                rem = cur % CHUNK as u128;
            }
            while limbs.last() == Some(&0) {
                limbs.pop();
            }
            chunks.push(rem as u64);
        }
        let mut s = String::new();
        if self.negative {
            s.push('-');
        }
        s.push_str(&chunks.last().unwrap().to_string());
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:019}"));
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_constructors() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::from(-5i64).to_i128(), Some(-5));
        assert_eq!(Int::from(0i64), Int::zero());
        assert_eq!(Int::pow2(0), Int::one());
        assert_eq!(Int::pow2(64).to_i128(), Some(1i128 << 64));
        assert_eq!(Int::pow2(126).to_i128(), Some(1i128 << 126));
        assert_eq!(Int::pow2(127).to_i128(), None, "2^127 overflows i128");
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!(Int::from(-42i64).to_string(), "-42");
        assert_eq!(Int::pow2(64).to_string(), "18446744073709551616");
        assert_eq!(
            Int::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn pow2_is_multiple_checks() {
        assert!(Int::pow2(130).is_multiple_of_pow2(130));
        assert!(Int::pow2(130).is_multiple_of_pow2(64));
        assert!(!Int::pow2(63).is_multiple_of_pow2(64));
        assert!(Int::zero().is_multiple_of_pow2(256));
        let three_times = &Int::pow2(70) * &Int::from(3);
        assert!(three_times.is_multiple_of_pow2(70));
        assert!(!three_times.is_multiple_of_pow2(71));
    }

    #[test]
    fn mod_pow2_matches_definition() {
        assert_eq!(Int::from(5).mod_pow2(2), Int::from(1));
        assert_eq!(Int::from(-5).mod_pow2(3), Int::from(3));
        assert_eq!(Int::from(-8).mod_pow2(3), Int::zero());
        assert_eq!(Int::pow2(130).mod_pow2(130), Int::zero());
        let x = &Int::pow2(130) + &Int::from(7);
        assert_eq!(x.mod_pow2(130), Int::from(7));
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(Int::zero().bits(), 0);
        assert_eq!(Int::one().bits(), 1);
        assert_eq!(Int::from(255).bits(), 8);
        assert_eq!(Int::pow2(200).bits(), 201);
    }

    #[test]
    fn large_arithmetic_identities() {
        let a = Int::pow2(200);
        let b = Int::pow2(131);
        assert_eq!(&(&a + &b) - &b, a);
        assert_eq!(&a * &Int::zero(), Int::zero());
        assert_eq!(&(&a * &b), &Int::pow2(331));
        assert_eq!((&a - &a), Int::zero());
        assert!((&b - &a).is_negative());
    }

    fn to_int(v: i128) -> Int {
        Int::from(v)
    }

    proptest! {
        #[test]
        fn add_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&to_int(a) + &to_int(b)).to_i128(), Some(a + b));
        }

        #[test]
        fn sub_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&to_int(a) - &to_int(b)).to_i128(), Some(a - b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<60)..(1i128<<60), b in -(1i128<<60)..(1i128<<60)) {
            prop_assert_eq!((&to_int(a) * &to_int(b)).to_i128(), Some(a * b));
        }

        #[test]
        fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(to_int(a as i128).cmp(&to_int(b as i128)), a.cmp(&b));
        }

        #[test]
        fn neg_round_trip(a in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((-&to_int(a)).to_i128(), Some(-a));
            prop_assert_eq!(-(-&to_int(a)), to_int(a));
        }

        #[test]
        fn mod_pow2_matches_i128(a in -(1i128<<90)..(1i128<<90), k in 0u32..90) {
            let m = 1i128 << k;
            let expected = a.rem_euclid(m);
            prop_assert_eq!(to_int(a).mod_pow2(k).to_i128(), Some(expected));
        }

        #[test]
        fn divisibility_matches_i128(a in -(1i128<<90)..(1i128<<90), k in 0u32..90) {
            let m = 1i128 << k;
            prop_assert_eq!(to_int(a).is_multiple_of_pow2(k), a % m == 0);
        }

        #[test]
        fn display_matches_i128(a in any::<i128>()) {
            prop_assert_eq!(to_int(a).to_string(), a.to_string());
        }
    }
}
