use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A signed arbitrary-precision integer with an inline small-value fast path.
///
/// The representation is a tagged union: values that fit an `i64` are stored
/// inline ([`Repr::Small`], no heap allocation), everything else spills to a
/// sign-magnitude base-2^64 limb vector ([`Repr::Big`], least significant limb
/// first, no trailing zeros). The representation is **canonical**: a value is
/// `Big` if and only if it does not fit an `i64`, so structural equality and
/// hashing are well defined.
///
/// During Gröbner basis reduction coefficients are overwhelmingly small
/// (gate-polynomial tails have coefficients in `{-2, -1, 1, 2}` and products
/// grow slowly), so the small×small specializations of `+`, `-`, `*` — plain
/// checked 64-bit machine arithmetic — carry almost the entire workload
/// without touching the allocator.
///
/// Only the operations required by the verifier are provided; this is not a
/// general purpose bignum library. All operations are exact.
///
/// # Example
///
/// ```
/// use gbmv_poly::Int;
///
/// let a = Int::pow2(130);            // 2^130 does not fit in u128
/// let b = &a * &Int::from(-3);
/// assert_eq!(&a + &b, -(&a + &a));   // a - 3a = -2a
/// assert!(b.is_negative());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline value, used whenever the value fits an `i64`.
    Small(i64),
    /// Spilled sign-magnitude value; `|value| > i64::MAX` for positive
    /// values, `|value| > 2^63` for negative ones.
    Big { negative: bool, limbs: Vec<u64> },
}

/// See the type-level documentation; constructed via `From`, [`Int::zero`],
/// [`Int::one`] or [`Int::pow2`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Int {
    repr: Repr,
}

impl Default for Int {
    fn default() -> Self {
        Int {
            repr: Repr::Small(0),
        }
    }
}

impl Int {
    /// The value zero.
    pub fn zero() -> Self {
        Int::default()
    }

    /// The value one.
    pub fn one() -> Self {
        Int {
            repr: Repr::Small(1),
        }
    }

    /// `2^k`.
    pub fn pow2(k: u32) -> Self {
        if k <= 62 {
            return Int {
                repr: Repr::Small(1i64 << k),
            };
        }
        let limb = (k / 64) as usize;
        let bit = k % 64;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << bit;
        Int {
            repr: Repr::Big {
                negative: false,
                limbs,
            },
        }
    }

    /// Builds the canonical representation from a sign and magnitude limbs
    /// (possibly with trailing zeros), collapsing to the inline form when the
    /// value fits an `i64`.
    fn from_sign_limbs(negative: bool, mut limbs: Vec<u64>) -> Int {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Int::zero(),
            1 => {
                let mag = limbs[0];
                if !negative && mag <= i64::MAX as u64 {
                    Int {
                        repr: Repr::Small(mag as i64),
                    }
                } else if negative && mag <= 1u64 << 63 {
                    Int {
                        repr: Repr::Small((mag as i128).wrapping_neg() as i64),
                    }
                } else {
                    Int {
                        repr: Repr::Big { negative, limbs },
                    }
                }
            }
            _ => Int {
                repr: Repr::Big { negative, limbs },
            },
        }
    }

    /// Runs `f` over the sign and magnitude limbs of the value, without
    /// materializing a limb vector for inline values.
    #[inline]
    fn with_parts<R>(&self, f: impl FnOnce(bool, &[u64]) -> R) -> R {
        match &self.repr {
            Repr::Small(0) => f(false, &[]),
            Repr::Small(v) => f(*v < 0, &[v.unsigned_abs()]),
            Repr::Big { negative, limbs } => f(*negative, limbs),
        }
    }

    /// The inline value, if the integer fits an `i64`. Because the
    /// representation is canonical this is `Some` exactly for in-range
    /// values.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::Small(v) => Some(v),
            Repr::Big { .. } => None,
        }
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` if the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v < 0,
            Repr::Big { negative, .. } => *negative,
        }
    }

    /// Returns `true` if the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Returns `true` if the value is divisible by `2^k` (zero counts as
    /// divisible). This implements the `mod 2^(2n)` reduction of the
    /// multiplier specification: terms whose coefficient is a multiple of
    /// `2^(2n)` are dropped.
    #[inline]
    pub fn is_multiple_of_pow2(&self, k: u32) -> bool {
        match &self.repr {
            Repr::Small(0) => true,
            Repr::Small(v) => v.unsigned_abs().trailing_zeros() >= k,
            Repr::Big { limbs, .. } => {
                // The magnitude is non-zero and normalized, so if every limb
                // below bit k is zero (and the partial limb has no bits below
                // k % 64) there must be a set bit at position >= k.
                let whole = (k / 64) as usize;
                let rest = k % 64;
                if limbs.iter().take(whole).any(|&limb| limb != 0) {
                    return false;
                }
                if rest > 0 {
                    let limb = limbs.get(whole).copied().unwrap_or(0);
                    if limb & ((1u64 << rest) - 1) != 0 {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Reduces the value modulo `2^k` into the canonical range `[0, 2^k)`.
    pub fn mod_pow2(&self, k: u32) -> Int {
        if let Repr::Small(v) = self.repr {
            if v == 0 {
                return Int::zero();
            }
            if v > 0 {
                // v < 2^63, so for k >= 63 the value is already reduced.
                return if k >= 63 {
                    self.clone()
                } else {
                    Int::from(v & ((1i64 << k) - 1))
                };
            }
            // Negative: (-m) mod 2^k = 2^k - (m mod 2^k) unless that is 2^k.
            let mag = v.unsigned_abs();
            let m = if k >= 64 {
                mag
            } else {
                mag & ((1u64 << k) - 1)
            };
            if m == 0 {
                return Int::zero();
            }
            return if k <= 63 {
                Int::from(((1u128 << k) - m as u128) as i64)
            } else {
                &Int::pow2(k) - &Int::from(m)
            };
        }
        // Spilled path: truncate the magnitude to k bits, then complement for
        // negative values.
        self.with_parts(|negative, limbs| {
            let whole = (k / 64) as usize;
            let rest = k % 64;
            let mut kept: Vec<u64> = limbs.iter().copied().take(whole + 1).collect();
            while kept.len() < whole + 1 {
                kept.push(0);
            }
            if rest == 0 {
                kept.truncate(whole);
            } else {
                kept.truncate(whole + 1);
                kept[whole] &= (1u64 << rest) - 1;
            }
            let mag = Int::from_sign_limbs(false, kept);
            if !negative || mag.is_zero() {
                mag
            } else {
                &Int::pow2(k) - &mag
            }
        })
    }

    /// The number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u32 {
        match &self.repr {
            Repr::Small(0) => 0,
            Repr::Small(v) => 64 - v.unsigned_abs().leading_zeros(),
            Repr::Big { limbs, .. } => {
                let top = *limbs.last().expect("Big is never empty");
                (limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros())
            }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as i128),
            Repr::Big { negative, limbs } => {
                if limbs.len() > 2 {
                    return None;
                }
                let lo = limbs.first().copied().unwrap_or(0) as u128;
                let hi = limbs.get(1).copied().unwrap_or(0) as u128;
                let mag = (hi << 64) | lo;
                if *negative {
                    if mag > (1u128 << 127) {
                        None
                    } else if mag == 1u128 << 127 {
                        Some(i128::MIN)
                    } else {
                        Some(-(mag as i128))
                    }
                } else if mag > i128::MAX as u128 {
                    None
                } else {
                    Some(mag as i128)
                }
            }
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> Int {
        match &self.repr {
            Repr::Small(v) => {
                if let Some(a) = v.checked_abs() {
                    Int {
                        repr: Repr::Small(a),
                    }
                } else {
                    // |i64::MIN| = 2^63 does not fit an i64.
                    Int {
                        repr: Repr::Big {
                            negative: false,
                            limbs: vec![1u64 << 63],
                        },
                    }
                }
            }
            // A spilled magnitude never fits an i64, so it stays spilled.
            Repr::Big { limbs, .. } => Int {
                repr: Repr::Big {
                    negative: false,
                    limbs: limbs.clone(),
                },
            },
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let x = a.get(i).copied().unwrap_or(0) as u128;
            let y = b.get(i).copied().unwrap_or(0) as u128;
            let sum = x + y + carry as u128;
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Computes `a - b` assuming `|a| >= |b|`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &limb) in a.iter().enumerate() {
            let x = limb as u128;
            let y = b.get(i).copied().unwrap_or(0) as u128 + borrow as u128;
            if x >= y {
                out.push((x - y) as u64);
                borrow = 0;
            } else {
                out.push(((1u128 << 64) + x - y) as u64);
                borrow = 1;
            }
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn add_signed(&self, other: &Int) -> Int {
        // The dominant case during reduction: both operands inline.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return match a.checked_add(*b) {
                Some(sum) => Int {
                    repr: Repr::Small(sum),
                },
                None => Int::from(*a as i128 + *b as i128),
            };
        }
        self.with_parts(|sa, la| {
            other.with_parts(|sb, lb| {
                if sa == sb {
                    Int::from_sign_limbs(sa, Int::add_mag(la, lb))
                } else {
                    match Int::cmp_mag(la, lb) {
                        Ordering::Equal => Int::zero(),
                        Ordering::Greater => Int::from_sign_limbs(sa, Int::sub_mag(la, lb)),
                        Ordering::Less => Int::from_sign_limbs(sb, Int::sub_mag(lb, la)),
                    }
                }
            })
        })
    }

    fn mul_signed(&self, other: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return match a.checked_mul(*b) {
                Some(prod) => Int {
                    repr: Repr::Small(prod),
                },
                // i64 × i64 always fits an i128.
                None => Int::from(*a as i128 * *b as i128),
            };
        }
        self.with_parts(|sa, la| {
            other.with_parts(|sb, lb| Int::from_sign_limbs(sa != sb, Int::mul_mag(la, lb)))
        })
    }
}

impl From<i64> for Int {
    #[inline]
    fn from(v: i64) -> Self {
        Int {
            repr: Repr::Small(v),
        }
    }
}

impl From<i32> for Int {
    #[inline]
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        if let Ok(small) = i64::try_from(v) {
            return Int::from(small);
        }
        let mag = v.unsigned_abs();
        let lo = mag as u64;
        let hi = (mag >> 64) as u64;
        let limbs = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        Int::from_sign_limbs(v < 0, limbs)
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            Int::from(v as i64)
        } else {
            Int {
                repr: Repr::Big {
                    negative: false,
                    limbs: vec![v],
                },
            }
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return a.cmp(b);
        }
        self.with_parts(|sa, la| {
            other.with_parts(|sb, lb| match (sa, sb) {
                (false, true) => Ordering::Greater,
                (true, false) => Ordering::Less,
                (false, false) => Int::cmp_mag(la, lb),
                (true, true) => Int::cmp_mag(lb, la),
            })
        })
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        match &self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => Int {
                    repr: Repr::Small(n),
                },
                // -i64::MIN = 2^63 spills.
                None => Int {
                    repr: Repr::Big {
                        negative: false,
                        limbs: vec![1u64 << 63],
                    },
                },
            },
            Repr::Big { negative, limbs } => Int::from_sign_limbs(!negative, limbs.clone()),
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        -&self
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        self.add_signed(rhs)
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        // In-place small += small without rebuilding the enum.
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(sum) = a.checked_add(*b) {
                *a = sum;
                return;
            }
        }
        *self = &*self + rhs;
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_sub(*b) {
                Some(diff) => Int {
                    repr: Repr::Small(diff),
                },
                None => Int::from(*a as i128 - *b as i128),
            };
        }
        self.add_signed(&-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(diff) = a.checked_sub(*b) {
                *a = diff;
                return;
            }
        }
        *self = &*self - rhs;
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        self.mul_signed(rhs)
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(prod) = a.checked_mul(*b) {
                *a = prod;
                return;
            }
        }
        *self = &*self * rhs;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Big { negative, limbs } => {
                // Repeated division by 10^19 (largest power of ten below 2^64).
                const CHUNK: u64 = 10_000_000_000_000_000_000;
                let mut limbs = limbs.clone();
                let mut chunks: Vec<u64> = Vec::new();
                while !limbs.is_empty() {
                    let mut rem: u128 = 0;
                    for limb in limbs.iter_mut().rev() {
                        let cur = (rem << 64) | *limb as u128;
                        *limb = (cur / CHUNK as u128) as u64;
                        rem = cur % CHUNK as u128;
                    }
                    while limbs.last() == Some(&0) {
                        limbs.pop();
                    }
                    chunks.push(rem as u64);
                }
                let mut s = String::new();
                if *negative {
                    s.push('-');
                }
                s.push_str(&chunks.last().unwrap().to_string());
                for chunk in chunks.iter().rev().skip(1) {
                    s.push_str(&format!("{chunk:019}"));
                }
                f.write_str(&s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_constructors() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::from(-5i64).to_i128(), Some(-5));
        assert_eq!(Int::from(0i64), Int::zero());
        assert_eq!(Int::pow2(0), Int::one());
        assert_eq!(Int::pow2(64).to_i128(), Some(1i128 << 64));
        assert_eq!(Int::pow2(126).to_i128(), Some(1i128 << 126));
        assert_eq!(Int::pow2(127).to_i128(), None, "2^127 overflows i128");
    }

    #[test]
    fn representation_is_canonical_at_the_i64_boundary() {
        // Everything in i64 range stays inline.
        assert_eq!(Int::from(i64::MAX).as_i64(), Some(i64::MAX));
        assert_eq!(Int::from(i64::MIN).as_i64(), Some(i64::MIN));
        assert_eq!(Int::from(i64::MIN as i128).as_i64(), Some(i64::MIN));
        assert_eq!(Int::pow2(62).as_i64(), Some(1i64 << 62));
        // First values past the boundary spill...
        assert_eq!(Int::from(i64::MAX as i128 + 1).as_i64(), None);
        assert_eq!(Int::from(i64::MIN as i128 - 1).as_i64(), None);
        assert_eq!(Int::pow2(63).as_i64(), None);
        // ...and arithmetic that comes back in range collapses to inline
        // again, so equality stays structural.
        let back = &(&Int::pow2(64) + &Int::from(5)) - &Int::pow2(64);
        assert_eq!(back.as_i64(), Some(5));
        assert_eq!(back, Int::from(5));
        let min = &(-&Int::pow2(63)) + &Int::zero();
        assert_eq!(min.as_i64(), Some(i64::MIN));
        assert_eq!(-&Int::from(i64::MIN), Int::pow2(63));
        assert_eq!(Int::from(i64::MIN).abs(), Int::pow2(63));
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!(Int::from(-42i64).to_string(), "-42");
        assert_eq!(Int::pow2(64).to_string(), "18446744073709551616");
        assert_eq!(
            Int::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn pow2_is_multiple_checks() {
        assert!(Int::pow2(130).is_multiple_of_pow2(130));
        assert!(Int::pow2(130).is_multiple_of_pow2(64));
        assert!(!Int::pow2(63).is_multiple_of_pow2(64));
        assert!(Int::zero().is_multiple_of_pow2(256));
        let three_times = &Int::pow2(70) * &Int::from(3);
        assert!(three_times.is_multiple_of_pow2(70));
        assert!(!three_times.is_multiple_of_pow2(71));
    }

    #[test]
    fn is_multiple_of_pow2_limb_boundaries() {
        // k exactly on limb boundaries for spilled values.
        for k in [63, 64, 65, 127, 128, 129, 191, 192] {
            assert!(Int::pow2(k).is_multiple_of_pow2(k), "2^{k} | 2^{k}");
            assert!(Int::pow2(k).is_multiple_of_pow2(k - 1));
            assert!(!Int::pow2(k - 1).is_multiple_of_pow2(k));
        }
        // Inline values against k past the i64 range.
        assert!(!Int::from(1).is_multiple_of_pow2(64));
        assert!(!Int::from(i64::MAX).is_multiple_of_pow2(64));
        assert!(Int::from(i64::MIN).is_multiple_of_pow2(63));
        assert!(!Int::from(i64::MIN).is_multiple_of_pow2(64));
        // Negative values divide like their magnitudes.
        assert!(Int::from(-8).is_multiple_of_pow2(3));
        assert!(!Int::from(-8).is_multiple_of_pow2(4));
        assert!((-&Int::pow2(128)).is_multiple_of_pow2(128));
        assert!(!(-&Int::pow2(128)).is_multiple_of_pow2(129));
        // A spilled value with a zero low limb but bits in the partial limb.
        let x = &Int::pow2(70) + &Int::pow2(66);
        assert!(x.is_multiple_of_pow2(64));
        assert!(x.is_multiple_of_pow2(66));
        assert!(!x.is_multiple_of_pow2(67));
        // Zero divides every power of two, including k = 0.
        assert!(Int::zero().is_multiple_of_pow2(0));
        assert!(Int::from(7).is_multiple_of_pow2(0));
    }

    #[test]
    fn mod_pow2_matches_definition() {
        assert_eq!(Int::from(5).mod_pow2(2), Int::from(1));
        assert_eq!(Int::from(-5).mod_pow2(3), Int::from(3));
        assert_eq!(Int::from(-8).mod_pow2(3), Int::zero());
        assert_eq!(Int::pow2(130).mod_pow2(130), Int::zero());
        let x = &Int::pow2(130) + &Int::from(7);
        assert_eq!(x.mod_pow2(130), Int::from(7));
    }

    #[test]
    fn mod_pow2_at_the_inline_boundary() {
        // k >= 63 on positive inline values is the identity.
        assert_eq!(Int::from(i64::MAX).mod_pow2(63), Int::from(i64::MAX));
        assert_eq!(Int::from(i64::MAX).mod_pow2(200), Int::from(i64::MAX));
        // Negative inline values with k past 64 spill: (-1) mod 2^64 = 2^64-1.
        assert_eq!(Int::from(-1).mod_pow2(64), &Int::pow2(64) - &Int::one());
        assert_eq!(Int::from(-1).mod_pow2(128), &Int::pow2(128) - &Int::one());
        assert_eq!(Int::from(i64::MIN).mod_pow2(63), Int::zero());
        assert_eq!(
            Int::from(i64::MIN).mod_pow2(64),
            Int::pow2(63),
            "(-2^63) mod 2^64 = 2^63"
        );
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(Int::zero().bits(), 0);
        assert_eq!(Int::one().bits(), 1);
        assert_eq!(Int::from(255).bits(), 8);
        assert_eq!(Int::pow2(200).bits(), 201);
        assert_eq!(Int::from(i64::MIN).bits(), 64);
    }

    #[test]
    fn large_arithmetic_identities() {
        let a = Int::pow2(200);
        let b = Int::pow2(131);
        assert_eq!(&(&a + &b) - &b, a);
        assert_eq!(&a * &Int::zero(), Int::zero());
        assert_eq!(&(&a * &b), &Int::pow2(331));
        assert_eq!((&a - &a), Int::zero());
        assert!((&b - &a).is_negative());
    }

    #[test]
    fn assign_ops_cover_overflow() {
        let mut x = Int::from(i64::MAX);
        x += &Int::one();
        assert_eq!(x.to_i128(), Some(i64::MAX as i128 + 1));
        let mut y = Int::from(i64::MIN);
        y -= &Int::one();
        assert_eq!(y.to_i128(), Some(i64::MIN as i128 - 1));
        let mut z = Int::from(1i64 << 62);
        z *= &Int::from(4);
        assert_eq!(z, Int::pow2(64));
    }

    fn to_int(v: i128) -> Int {
        Int::from(v)
    }

    proptest! {
        #[test]
        fn add_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&to_int(a) + &to_int(b)).to_i128(), Some(a + b));
        }

        #[test]
        fn sub_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&to_int(a) - &to_int(b)).to_i128(), Some(a - b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<60)..(1i128<<60), b in -(1i128<<60)..(1i128<<60)) {
            prop_assert_eq!((&to_int(a) * &to_int(b)).to_i128(), Some(a * b));
        }

        #[test]
        fn assign_ops_match_i128(a in -(1i128<<90)..(1i128<<90), b in -(1i128<<90)..(1i128<<90)) {
            let mut x = to_int(a);
            x += &to_int(b);
            prop_assert_eq!(x.to_i128(), Some(a + b));
            let mut y = to_int(a);
            y -= &to_int(b);
            prop_assert_eq!(y.to_i128(), Some(a - b));
        }

        #[test]
        fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(to_int(a as i128).cmp(&to_int(b as i128)), a.cmp(&b));
        }

        #[test]
        fn neg_round_trip(a in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((-&to_int(a)).to_i128(), Some(-a));
            prop_assert_eq!(-(-&to_int(a)), to_int(a));
        }

        #[test]
        fn mod_pow2_matches_i128(a in -(1i128<<90)..(1i128<<90), k in 0u32..90) {
            let m = 1i128 << k;
            let expected = a.rem_euclid(m);
            prop_assert_eq!(to_int(a).mod_pow2(k).to_i128(), Some(expected));
        }

        #[test]
        fn divisibility_matches_i128(a in -(1i128<<90)..(1i128<<90), k in 0u32..90) {
            let m = 1i128 << k;
            prop_assert_eq!(to_int(a).is_multiple_of_pow2(k), a % m == 0);
        }

        #[test]
        fn display_matches_i128(a in any::<i128>()) {
            prop_assert_eq!(to_int(a).to_string(), a.to_string());
        }
    }
}
