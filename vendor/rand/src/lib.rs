//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! shim provides the small subset of the `rand` 0.8 API the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] over integer ranges, [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is SplitMix64 — deterministic, fast and
//! statistically fine for randomized testing (it is not cryptographic, which
//! `rand`'s `StdRng` would be; none of our uses need that).

#![forbid(unsafe_code)]

/// A source of uniformly distributed random data plus convenience samplers.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of an [`Standard`]-samplable type (integers, bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] from raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    // Modulo reduction has negligible bias for the spans used in tests
    // (span << 2^128).
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                (start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard test RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=5u8);
            assert!((1..=5).contains(&w));
            let x = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let first: u64 = rng.gen();
        let second: u64 = rng.gen();
        assert_ne!(first, second);
    }
}
