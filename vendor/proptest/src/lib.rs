//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored shim provides
//! the subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! * strategies for integer ranges (exclusive and inclusive), tuples,
//!   [`Just`], [`any`] and [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Inputs are drawn from a deterministic SplitMix64 stream (seeded per test
//! case index), so failures are reproducible. Unlike real proptest there is
//! **no shrinking**: a failing case reports the assertion as-is.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 uniformly random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, span)` (`span > 0`; modulo bias is negligible
    /// for test-sized spans).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        self.next_u128() % span
    }
}

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }

    /// Keeps only values for which `f` returns `true`; gives up (panics)
    /// after 1000 consecutive rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy {
            base: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct FilterStrategy<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive inputs",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one option");
        let idx = rng.below(self.0.len() as u128) as usize;
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 ranges cannot go through the i128 midpoint arithmetic above without
// overflow, so they get a dedicated implementation (spans up to 2^127).
impl Strategy for core::ops::Range<i128> {
    type Value = i128;
    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` with uniform bits.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min).max(1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..) {..}`
/// runs `config.cases` times over deterministically drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    0x6a09_e667_f3bc_c909u64 ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => { $crate::OneOf(vec![$($s),+]) };
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = super::TestRng::new(3);
        for _ in 0..200 {
            let v = (0u32..6).sample(&mut rng);
            assert!(v < 6);
            let w = (2..=4usize).sample(&mut rng);
            assert!((2..=4).contains(&w));
            let xs = collection::vec(0u32..10, 0..5).sample(&mut rng);
            assert!(xs.len() < 5);
            assert!(xs.iter().all(|&x| x < 10));
            let big = (-(1i128 << 100)..(1i128 << 100)).sample(&mut rng);
            assert!(big.abs() < (1i128 << 100) + 1);
        }
    }

    #[test]
    fn map_filter_oneof() {
        let mut rng = super::TestRng::new(9);
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.sample(&mut rng) % 2, 0);
        }
        let evens = (0u32..100).prop_filter("odd", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.sample(&mut rng) % 2, 0);
        }
        let choice = prop_oneof![Just(1u8), Just(2), Just(3)];
        for _ in 0..50 {
            assert!((1..=3).contains(&choice.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }
}
