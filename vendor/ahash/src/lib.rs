//! Offline stand-in for the `ahash` crate.
//!
//! Implements the aHash *fallback* algorithm shape — folded 128-bit
//! multiplies over 64-bit lanes — with fixed keys. The build container cannot
//! reach crates.io, and none of this workspace's hash maps are exposed to
//! untrusted input, so deterministic keys (which also make benchmark runs
//! reproducible) are the right trade-off instead of runtime key generation.
//!
//! The important property for the polynomial engine is speed on *short* keys:
//! monomials hash as a single pre-computed `u64` (see `gbmv_poly`), and a
//! folded multiply finalizer mixes that one word well enough for hashbrown's
//! 7-bit control tags.

#![forbid(unsafe_code)]

use std::hash::{BuildHasher, Hasher};

const MULTIPLE: u64 = 6364136223846793005;
const KEY0: u64 = 0x243F_6A88_85A3_08D3; // pi digits
const KEY1: u64 = 0x1319_8A2E_0370_7344;

#[inline]
fn folded_multiply(s: u64, by: u64) -> u64 {
    let result = (s as u128).wrapping_mul(by as u128);
    ((result & 0xFFFF_FFFF_FFFF_FFFF) as u64) ^ ((result >> 64) as u64)
}

/// The aHash-style hasher state.
#[derive(Debug, Clone)]
pub struct AHasher {
    buffer: u64,
    pad: u64,
}

impl Default for AHasher {
    fn default() -> Self {
        AHasher {
            buffer: KEY0,
            pad: KEY1,
        }
    }
}

impl AHasher {
    #[inline]
    fn update(&mut self, word: u64) {
        self.buffer = folded_multiply(word ^ self.buffer, MULTIPLE);
    }
}

impl Hasher for AHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let rot = (self.buffer & 63) as u32;
        folded_multiply(self.buffer, self.pad).rotate_left(rot)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.buffer = self.buffer.wrapping_add(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.update(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.update(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.update(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.update(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.update(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.update(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.update(i as u64);
        self.update((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.update(i as u64);
    }
}

/// Fixed-key [`BuildHasher`] for `HashMap`/`HashSet`.
#[derive(Debug, Clone, Default)]
pub struct RandomState {
    _private: (),
}

impl RandomState {
    /// A new (fixed-key, deterministic) state.
    pub fn new() -> Self {
        RandomState::default()
    }
}

impl BuildHasher for RandomState {
    type Hasher = AHasher;

    #[inline]
    fn build_hasher(&self) -> AHasher {
        AHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn hash_of(write: impl Fn(&mut AHasher)) -> u64 {
        let mut h = AHasher::default();
        write(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(42)));
        assert_ne!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(43)));
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"ba")));
        // Length is mixed in: a prefix must not collide with the whole.
        assert_ne!(
            hash_of(|h| h.write(b"abcdefgh")),
            hash_of(|h| h.write(b"abcdefg"))
        );
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: HashMap<u64, u64, RandomState> = HashMap::default();
        for i in 0..1000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&999], 1998);
    }

    #[test]
    fn low_bits_spread() {
        // hashbrown uses the top 7 bits for control tags and the low bits for
        // bucket selection; make sure sequential keys don't collapse.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..64u64 {
            buckets.insert(hash_of(|h| h.write_u64(i)) & 63);
        }
        assert!(
            buckets.len() > 32,
            "only {} distinct low-6-bit values",
            buckets.len()
        );
    }
}
