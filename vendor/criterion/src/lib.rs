//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-group API subset the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]) backed by a
//! simple wall-clock harness: every benchmark runs one warm-up iteration and
//! `sample_size` measured iterations, then reports min/mean/max.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {}/{}: no samples collected", self.name, id.id);
            return self;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "  {}/{}: [{:?} {:?} {:?}] ({} samples)",
            self.name,
            id.id,
            min,
            mean,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group (no-op beyond matching the criterion API).
    pub fn finish(self) {}
}

/// Measures closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over one warm-up plus `sample_size` measured runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &(), |b, _| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }
}
